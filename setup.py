"""Setuptools shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only exists
so ``pip install -e . --no-use-pep517`` works offline.
"""

from setuptools import setup

setup()
