"""Kosaraju-Sharir SCC algorithm (iterative, two DFS passes).

This is the in-memory algorithm the paper's DFS-SCC baseline
semi-externalizes, and the one Algorithm 8 (1PB-SCC) runs on each
in-memory batch.  Implemented from scratch with explicit stacks.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.digraph import Digraph


def _finish_order(graph: Digraph) -> np.ndarray:
    """Nodes in increasing DFS finish time (the first pass)."""
    n = graph.num_nodes
    indptr = graph.indptr
    indices = graph.indices
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    filled = 0
    for root in range(n):
        if visited[root]:
            continue
        visited[root] = True
        work: list[list[int]] = [[root, 0]]
        while work:
            frame = work[-1]
            v = frame[0]
            start = indptr[v]
            end = indptr[v + 1]
            descended = False
            offset = frame[1]
            while start + offset < end:
                w = int(indices[start + offset])
                offset += 1
                if not visited[w]:
                    visited[w] = True
                    frame[1] = offset
                    work.append([w, 0])
                    descended = True
                    break
            if not descended:
                work.pop()
                order[filled] = v
                filled += 1
    return order


def kosaraju_scc(graph: Digraph) -> Tuple[np.ndarray, int]:
    """Compute SCC labels via Kosaraju-Sharir.

    Returns ``(labels, num_sccs)`` with labels in ``0 .. num_sccs - 1``.
    Labels are assigned in decreasing finish order of the first DFS,
    which is a *topological* order of the condensation (the reverse of
    Tarjan's labelling convention).
    """
    n = graph.num_nodes
    labels = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return labels, 0

    order = _finish_order(graph)
    reverse = graph.reverse()
    indptr = reverse.indptr
    indices = reverse.indices

    scc_count = 0
    for v in order[::-1]:
        v = int(v)
        if labels[v] != -1:
            continue
        labels[v] = scc_count
        stack = [v]
        while stack:
            u = stack.pop()
            for w in indices[indptr[u] : indptr[u + 1]]:
                w = int(w)
                if labels[w] == -1:
                    labels[w] = scc_count
                    stack.append(w)
        scc_count += 1
    return labels, scc_count
