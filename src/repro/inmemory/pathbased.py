"""Gabow's path-based SCC algorithm (iterative).

A third independent in-memory implementation, used in tests to
cross-check Tarjan and Kosaraju: three algorithms built on different
invariants agreeing on random graphs is strong evidence all are correct.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.digraph import Digraph


def gabow_scc(graph: Digraph) -> Tuple[np.ndarray, int]:
    """Compute SCC labels via Gabow's two-stack path-based algorithm.

    Returns ``(labels, num_sccs)`` with labels in ``0 .. num_sccs - 1``
    assigned in SCC completion order (reverse topological, like Tarjan).
    """
    n = graph.num_nodes
    labels = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return labels, 0

    indptr = graph.indptr
    indices = graph.indices
    preorder = np.full(n, -1, dtype=np.int64)

    counter = 0
    scc_count = 0
    path_stack: list[int] = []  # S: nodes whose SCC is undecided
    boundary_stack: list[int] = []  # P: possible SCC boundaries (preorders)

    for root in range(n):
        if preorder[root] != -1:
            continue
        work: list[list[int]] = [[root, 0]]
        while work:
            frame = work[-1]
            v = frame[0]
            if frame[1] == 0:
                preorder[v] = counter
                counter += 1
                path_stack.append(v)
                boundary_stack.append(int(preorder[v]))

            start = indptr[v]
            end = indptr[v + 1]
            descended = False
            offset = frame[1]
            while start + offset < end:
                w = int(indices[start + offset])
                offset += 1
                if preorder[w] == -1:
                    frame[1] = offset
                    work.append([w, 0])
                    descended = True
                    break
                if labels[w] == -1:
                    # w is on the current path: collapse boundaries above it.
                    while boundary_stack and boundary_stack[-1] > preorder[w]:
                        boundary_stack.pop()
            if descended:
                continue

            work.pop()
            if boundary_stack and boundary_stack[-1] == preorder[v]:
                boundary_stack.pop()
                while True:
                    w = path_stack.pop()
                    labels[w] = scc_count
                    if w == v:
                        break
                scc_count += 1

    return labels, scc_count
