"""DAG condensation: contract every SCC of a digraph into one node.

The condensation is the output representation most of the paper's
motivating applications (reachability indexing, topological sort,
pattern matching) actually consume, and EM-SCC uses per-partition
condensations as its contraction step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.graph.digraph import Digraph
from repro.inmemory.tarjan import tarjan_scc


@dataclass
class CondensedGraph:
    """The condensation of a digraph.

    Attributes
    ----------
    dag:
        The condensed DAG (self-loops removed, parallel edges collapsed).
        Node ``c`` of ``dag`` represents all original nodes ``v`` with
        ``labels[v] == c``.
    labels:
        ``(n,)`` SCC label of every original node.
    sizes:
        ``(num_sccs,)`` member count of every SCC.
    """

    dag: Digraph
    labels: np.ndarray
    sizes: np.ndarray

    @property
    def num_sccs(self) -> int:
        """Number of SCCs (= nodes of the condensation)."""
        return self.dag.num_nodes

    def members(self, scc: int) -> np.ndarray:
        """Original node ids belonging to SCC ``scc``."""
        return np.flatnonzero(self.labels == scc)

    def largest_sccs(self, k: int = 1) -> np.ndarray:
        """Labels of the ``k`` largest SCCs, largest first."""
        return np.argsort(self.sizes)[::-1][:k]

    def nontrivial_sccs(self) -> np.ndarray:
        """Labels of SCCs with at least 2 members (the paper's "SCCs")."""
        return np.flatnonzero(self.sizes >= 2)


def condense(
    graph: Digraph,
    labels: Optional[np.ndarray] = None,
    num_sccs: Optional[int] = None,
) -> CondensedGraph:
    """Condense ``graph``; compute labels with Tarjan when not supplied."""
    if labels is None or num_sccs is None:
        labels, num_sccs = tarjan_scc(graph)
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape[0] != graph.num_nodes:
        raise ValueError("labels must cover every node")

    sizes = np.bincount(labels, minlength=num_sccs)
    if graph.num_edges:
        mapped = labels[graph.edges.astype(np.int64)]
        keep = mapped[:, 0] != mapped[:, 1]
        dag_edges = (
            np.unique(mapped[keep], axis=0)
            if keep.any()
            else np.empty((0, 2), dtype=np.int64)
        )
    else:
        dag_edges = np.empty((0, 2), dtype=np.int64)
    return CondensedGraph(Digraph(num_sccs, dag_edges), labels, sizes)


def scc_size_histogram(sizes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(unique_sizes, counts)`` — the profile Table 1's dataset notes quote."""
    return np.unique(np.asarray(sizes), return_counts=True)
