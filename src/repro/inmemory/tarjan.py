"""Tarjan's SCC algorithm (iterative, linear time).

The primary in-memory ground truth for the whole repository.  Labels
are assigned in the order SCCs are *completed*, which for Tarjan is a
reverse topological order of the condensation — a property
:mod:`repro.inmemory.condensation` exploits.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.digraph import Digraph


def tarjan_scc(graph: Digraph) -> Tuple[np.ndarray, int]:
    """Compute SCC labels for ``graph``.

    Returns
    -------
    labels:
        ``(n,)`` int64 array; ``labels[v]`` identifies ``v``'s SCC.
        Labels are contiguous in ``0 .. num_sccs - 1`` and appear in
        reverse topological order of the condensation.
    num_sccs:
        Number of strongly connected components.
    """
    n = graph.num_nodes
    labels = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return labels, 0

    indptr = graph.indptr
    indices = graph.indices
    index = np.full(n, -1, dtype=np.int64)
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)

    counter = 0
    scc_count = 0
    scc_stack: list[int] = []
    # Each work frame is [node, next_child_offset]; offsets index into
    # the CSR slice of the node.
    work: list[list[int]] = []

    for root in range(n):
        if index[root] != -1:
            continue
        work.append([root, 0])
        while work:
            frame = work[-1]
            v = frame[0]
            if frame[1] == 0:
                index[v] = counter
                lowlink[v] = counter
                counter += 1
                scc_stack.append(v)
                on_stack[v] = True

            start = indptr[v]
            end = indptr[v + 1]
            descended = False
            child_offset = frame[1]
            while start + child_offset < end:
                w = int(indices[start + child_offset])
                child_offset += 1
                if index[w] == -1:
                    frame[1] = child_offset
                    work.append([w, 0])
                    descended = True
                    break
                if on_stack[w] and index[w] < lowlink[v]:
                    lowlink[v] = index[w]
            if descended:
                continue

            # v is fully explored.
            work.pop()
            if lowlink[v] == index[v]:
                while True:
                    w = scc_stack.pop()
                    on_stack[w] = False
                    labels[w] = scc_count
                    if w == v:
                        break
                scc_count += 1
            if work:
                parent = work[-1][0]
                if lowlink[v] < lowlink[parent]:
                    lowlink[parent] = lowlink[v]

    return labels, scc_count
