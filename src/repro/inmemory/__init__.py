"""In-memory SCC algorithms and DAG utilities, implemented from scratch.

These serve three roles in the reproduction:

* ground truth for testing the semi-external algorithms,
* the in-memory Kosaraju-Sharir step inside 1PB-SCC's batch processing
  (paper Algorithm 8, line 7),
* the "internal memory algorithm" EM-SCC falls back to once the graph
  fits in memory.
"""

from repro.inmemory.condensation import CondensedGraph, condense
from repro.inmemory.kosaraju import kosaraju_scc
from repro.inmemory.pathbased import gabow_scc
from repro.inmemory.tarjan import tarjan_scc
from repro.inmemory.toposort import longest_path_depths, topological_sort

__all__ = [
    "tarjan_scc",
    "kosaraju_scc",
    "gabow_scc",
    "condense",
    "CondensedGraph",
    "topological_sort",
    "longest_path_depths",
]
