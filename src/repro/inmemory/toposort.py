"""Topological ordering and longest-path depths over DAGs.

1PB-SCC (paper Algorithm 8) rebuilds its BR-Tree by processing the
batch DAG in topological order and computing
``drank(v) = max over (u, v) of drank(u) + 1`` by dynamic programming;
these are the primitives it uses.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.exceptions import GraphFormatError
from repro.graph.digraph import Digraph


def topological_sort(graph: Digraph) -> np.ndarray:
    """Kahn's algorithm; returns node ids in topological order.

    Raises :class:`GraphFormatError` if the graph contains a cycle.
    """
    n = graph.num_nodes
    indptr = graph.indptr
    indices = graph.indices
    in_degree = graph.in_degree().astype(np.int64)

    queue = deque(int(v) for v in np.flatnonzero(in_degree == 0))
    order = np.empty(n, dtype=np.int64)
    filled = 0
    while queue:
        v = queue.popleft()
        order[filled] = v
        filled += 1
        for w in indices[indptr[v] : indptr[v + 1]]:
            w = int(w)
            in_degree[w] -= 1
            if in_degree[w] == 0:
                queue.append(w)
    if filled != n:
        raise GraphFormatError("graph has a cycle; topological sort impossible")
    return order


def longest_path_depths(
    graph: Digraph,
    order: Optional[np.ndarray] = None,
    base_depth: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Longest-path depth of every node in a DAG.

    ``depth[v] = max(base_depth[v], max over (u, v) of depth[u] + 1)``,
    computed in one pass over a topological ``order`` (recomputed when
    omitted).  ``base_depth`` defaults to 1 for every node — the paper
    hangs all roots off a virtual root ``v0`` at depth 0, so real nodes
    start at depth 1.
    """
    n = graph.num_nodes
    if order is None:
        order = topological_sort(graph)
    if base_depth is None:
        depth = np.ones(n, dtype=np.int64)
    else:
        depth = np.asarray(base_depth, dtype=np.int64).copy()
        if depth.shape[0] != n:
            raise ValueError("base_depth must cover every node")

    indptr = graph.indptr
    indices = graph.indices
    for v in order:
        v = int(v)
        dv1 = depth[v] + 1
        for w in indices[indptr[v] : indptr[v + 1]]:
            w = int(w)
            if depth[w] < dv1:
                depth[w] = dv1
    return depth


def dag_depth(graph: Digraph) -> int:
    """Length (in edges) of the longest path in a DAG."""
    if graph.num_nodes == 0:
        return 0
    depths = longest_path_depths(graph, base_depth=np.zeros(graph.num_nodes, np.int64))
    return int(depths.max())
