"""Declarative cell specs: what one reproduction run consists of.

A :class:`CaseSpec` is pure data — experiment, case name, algorithm,
a :class:`WorkloadSpec` graph recipe, and the knobs the benches apply
(time-limit factor, memory factor, algorithm constructor kwargs).
Everything is hashable and JSON-round-trippable, so the same spec can
parametrize a pytest benchmark, drive the artifact runner, and be
recorded verbatim in ``plan.json`` for resume validation.

Graphs are *recipes*, not objects: a spec never holds a
:class:`~repro.graph.digraph.Digraph`, only the seeded generator
arguments, so two processes that resolve the same spec at the same
scale build byte-identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: The two sweep tiers: ``smoke`` is the CI gate (small scale, every
#: cell deterministically finishes), ``paper`` is the EXPERIMENTS.md
#: sweep (default reproduction scale; INF cells are reported, as the
#: paper reports them).
TIER_SMOKE = "smoke"
TIER_PAPER = "paper"

KV = Tuple[Tuple[str, object], ...]


def _freeze(mapping: Optional[Dict[str, object]]) -> KV:
    """Dict -> sorted, hashable key/value tuple."""
    if not mapping:
        return ()
    return tuple(sorted(mapping.items()))


@dataclass(frozen=True)
class WorkloadSpec:
    """A seeded graph recipe, resolvable at any reproduction scale.

    ``kind`` is one of:

    * ``"webspam"`` — the WEBSPAM-UK2007 stand-in (args: ``seed``,
      ``avg_degree``, ``scale_factor`` multiplying the tier scale);
    * ``"webspam-subgraph"`` — a Fig. 12 induced subgraph of the
      webspam graph (extra arg: ``fraction``);
    * ``"synthetic"`` — a planted Massive/Large/Small-SCC graph
      (args: the final ``params_for_class`` kwargs);
    * ``"real"`` — a citation-style stand-in (arg: ``name``).
    """

    kind: str
    args: KV = ()

    @classmethod
    def make(cls, kind: str, **args: object) -> "WorkloadSpec":
        return cls(kind=kind, args=_freeze(args))

    @property
    def arg_dict(self) -> Dict[str, object]:
        return dict(self.args)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form, round-tripped by :meth:`from_dict`."""
        return {"kind": self.kind, "args": self.arg_dict}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WorkloadSpec":
        return cls.make(str(data["kind"]), **dict(data.get("args", {})))  # type: ignore[call-overload]


@dataclass(frozen=True)
class CaseSpec:
    """One (experiment, case, algorithm) cell of the evaluation."""

    #: Experiment key: ``table1``, ``table3``, ``fig12`` … ``fig17``,
    #: ``ablation`` — one per benchmark module.
    experiment: str
    #: Case name within the experiment (``webspam-20pct``, ``massive-30M`` …).
    case: str
    #: Algorithm registry name (``1PB-SCC`` …); constructor kwargs for
    #: non-default variants (ablations) ride in ``algo_kwargs``.
    algorithm: str
    workload: WorkloadSpec
    algo_kwargs: KV = ()
    #: Multiple of the paper's default memory ``M`` (Fig. 13), or None.
    memory_factor: Optional[float] = None
    #: Multiple of the tier's base per-run time limit.
    time_limit_factor: float = 1.0
    #: Which sweep tiers include this cell.
    tiers: Tuple[str, ...] = (TIER_SMOKE, TIER_PAPER)
    #: Presentation metadata (x-axis param etc.), echoed into results.
    params: KV = ()

    @property
    def cell_id(self) -> str:
        """Stable id: ``experiment/case/algorithm``."""
        return f"{self.experiment}/{self.case}/{self.algorithm}"

    @property
    def fs_id(self) -> str:
        """Filesystem-safe form of :attr:`cell_id`."""
        return self.cell_id.replace("/", "__")

    def in_tier(self, tier: str) -> bool:
        """Whether this cell belongs to ``tier``'s sweep."""
        return tier in self.tiers

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form, round-tripped by :meth:`from_dict`."""
        return {
            "experiment": self.experiment,
            "case": self.case,
            "algorithm": self.algorithm,
            "workload": self.workload.to_dict(),
            "algo_kwargs": dict(self.algo_kwargs),
            "memory_factor": self.memory_factor,
            "time_limit_factor": self.time_limit_factor,
            "tiers": list(self.tiers),
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CaseSpec":
        return cls(
            experiment=str(data["experiment"]),
            case=str(data["case"]),
            algorithm=str(data["algorithm"]),
            workload=WorkloadSpec.from_dict(data["workload"]),  # type: ignore[arg-type]
            algo_kwargs=_freeze(dict(data.get("algo_kwargs", {}))),  # type: ignore[arg-type]
            memory_factor=data.get("memory_factor"),  # type: ignore[arg-type]
            time_limit_factor=float(data.get("time_limit_factor", 1.0)),  # type: ignore[arg-type]
            tiers=tuple(data.get("tiers", (TIER_SMOKE, TIER_PAPER))),  # type: ignore[arg-type]
            params=_freeze(dict(data.get("params", {}))),  # type: ignore[arg-type]
        )


# Re-exported convenience for case-list constructors.
freeze = _freeze


@dataclass(frozen=True)
class TierConfig:
    """Scale and budget of one sweep tier."""

    name: str
    #: Fraction of the paper's dataset sizes.
    scale: float
    #: Base per-cell wall-clock limit (seconds); cells multiply it by
    #: their ``time_limit_factor``.  Smoke graphs are tiny, so the
    #: generous smoke budget still finishes deterministically.
    time_limit: float
    description: str = ""
    extra: KV = field(default=())
