"""The resumable sweep executor behind ``repro-scc reproduce``.

Execution model: every (benchmark, case) cell is a unit of work with
durable state under the output directory —

* ``plan.json`` — the enumerated sweep, written at start and
  re-validated on ``--resume`` so a resumed sweep provably continues
  the same sweep;
* ``cells/<cell>.json`` — one atomically-written result per completed
  cell (stage → fsync → rename via :mod:`repro.io.atomic`), so a crash
  or ``SIGINT`` between cells loses nothing;
* ``work/<cell>/`` and ``checkpoints/<cell>/`` — the in-flight cell's
  materialised edge file, reduction scratch and PR 5 scan-boundary
  checkpoint.  A crash *mid-algorithm* (including a planted
  ``crash@scan`` fault) resumes mid-algorithm: counted I/O and the
  partition are identical to an uninterrupted run, which is what keeps
  the manifest byte-identical across kill/resume;
* ``traces/<cell>.jsonl`` — a JSONL run trace per cell;
* ``artifact/`` — the final ``summary.json`` + ``report.md`` +
  ``MANIFEST.json``, written when the last cell completes.

Exit codes mirror ``repro-scc compute``: 0 success, 1 manifest drift /
validation failure, 2 configuration error, 4 simulated crash (resume
with ``--resume``), 130 interrupted.
"""

from __future__ import annotations

import os
import shutil
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.artifact.manifest import (
    build_manifest,
    diff_manifests,
    load_manifest,
    manifest_json,
    partition_fingerprint,
)
from repro.artifact.plan import Plan, build_graph, build_plan
from repro.artifact.spec import CaseSpec
from repro.artifact.summary import (
    IO_FIELDS,
    build_summary,
    summary_json,
    validate_summary,
)
from repro.bench.harness import run_one
from repro.constants import DEFAULT_BLOCK_SIZE
from repro.core import ALGORITHMS
from repro.io.atomic import abort_replace, replace_file
from repro.io.faults import SimulatedCrash
from repro.io.memory import MemoryModel

EXIT_OK = 0
EXIT_DRIFT = 1
EXIT_CONFIG = 2
EXIT_CRASH = 4
EXIT_INTERRUPT = 130


@dataclass
class ReproduceConfig:
    """Everything ``repro-scc reproduce`` parses from its command line."""

    tier: str = "smoke"
    out_dir: Optional[str] = None
    resume: bool = False
    fresh: bool = False
    #: Cell-id glob patterns restricting the sweep (tests, spot checks).
    only: Tuple[str, ...] = ()
    #: Golden manifest to diff the computed manifest against.
    verify: Optional[str] = None
    #: Planted per-cell fault plans: cell id -> FaultPlan spec string.
    fault_cells: Dict[str, str] = field(default_factory=dict)
    #: Interval (s) for the background progress heartbeat; 0 disables.
    heartbeat: float = 0.0
    scale: Optional[float] = None
    time_limit: Optional[float] = None
    block_size: int = DEFAULT_BLOCK_SIZE
    #: Keep per-cell work/checkpoint dirs after success (debugging).
    keep_work: bool = False
    #: Only recompute + verify artifacts from existing cell results.
    verify_only: bool = False
    #: Scan worker processes per cell (0 = serial).  Results and the
    #: manifest are byte-identical either way (see repro.parallel).
    workers: int = 0


class _Progress:
    """Shared sweep progress for the heartbeat thread."""

    def __init__(self, total: int) -> None:
        self.total = total
        self.done = 0
        self.current = ""
        self.started = time.monotonic()
        self._lock = threading.Lock()

    def start_cell(self, cell_id: str) -> None:
        with self._lock:
            self.current = cell_id

    def finish_cell(self) -> None:
        with self._lock:
            self.done += 1
            self.current = ""

    def line(self) -> str:
        with self._lock:
            done, total, current = self.done, self.total, self.current
        elapsed = time.monotonic() - self.started
        eta = "?"
        if done:
            remaining = (elapsed / done) * (total - done)
            eta = f"{remaining:.0f}s"
        suffix = f" (running {current})" if current else ""
        return (
            f"reproduce: {done}/{total} cells, elapsed {elapsed:.0f}s, "
            f"eta {eta}{suffix}"
        )


class _Heartbeat:
    """Background stderr progress line every ``interval`` seconds."""

    def __init__(self, progress: _Progress, interval: float) -> None:
        self._progress = progress
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(  # repro: allow[SCAN001, THR004]
            target=self._run, name="reproduce-heartbeat", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            print(self._progress.line(), file=sys.stderr, flush=True)

    def close(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


def _write_text_atomic(path: str, text: str) -> None:
    """Stage-and-rename write so partial files are never observable."""
    staging = path + ".staging"
    try:
        with open(  # repro: allow[IO001]
            staging, "w", encoding="utf-8"
        ) as handle:
            handle.write(text)
    except BaseException:
        # A torn staging file must not outlive the failed write.
        abort_replace(staging, path)
        raise
    replace_file(staging, path)


def _json_dumps(data: object) -> str:
    import json

    return json.dumps(data, indent=2, sort_keys=True) + "\n"


def _json_load(path: str) -> object:
    import json

    with open(path, "r", encoding="utf-8") as handle:  # repro: allow[IO001]
        return json.load(handle)


def _layout(out_dir: str) -> Dict[str, str]:
    return {
        "plan": os.path.join(out_dir, "plan.json"),
        "cells": os.path.join(out_dir, "cells"),
        "work": os.path.join(out_dir, "work"),
        "checkpoints": os.path.join(out_dir, "checkpoints"),
        "traces": os.path.join(out_dir, "traces"),
        "artifact": os.path.join(out_dir, "artifact"),
    }


def _load_completed(cells_dir: str) -> Dict[str, Dict[str, object]]:
    """Cell results already durable from a previous (partial) sweep."""
    completed: Dict[str, Dict[str, object]] = {}
    if not os.path.isdir(cells_dir):
        return completed
    for name in sorted(os.listdir(cells_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(cells_dir, name)
        try:
            data = _json_load(path)
        except ValueError:
            continue  # half-written pre-atomic leftovers: re-run the cell
        if isinstance(data, dict) and "cell_id" in data:
            completed[str(data["cell_id"])] = data
    return completed


def _cell_memory(
    case: CaseSpec, num_nodes: int
) -> Optional[MemoryModel]:
    if case.memory_factor is None:
        return None
    base = MemoryModel.default_capacity(num_nodes)
    return MemoryModel(
        num_nodes=num_nodes, capacity=int(base * case.memory_factor)
    )


def _run_cell(
    case: CaseSpec,
    plan: Plan,
    config: ReproduceConfig,
    paths: Dict[str, str],
) -> Dict[str, object]:
    """Execute one cell; returns its durable result record."""
    graph = build_graph(case.workload, plan.scale)
    algorithm = ALGORITHMS[case.algorithm](**dict(case.algo_kwargs))
    workdir = os.path.join(paths["work"], case.fs_id)
    checkpoint_dir = os.path.join(paths["checkpoints"], case.fs_id)
    os.makedirs(workdir, exist_ok=True)
    os.makedirs(checkpoint_dir, exist_ok=True)
    trace_rel = os.path.join("traces", case.fs_id + ".jsonl")
    record = run_one(
        graph,
        algorithm,
        workload=case.cell_id,
        memory=_cell_memory(case, graph.num_nodes),
        time_limit=plan.time_limit * case.time_limit_factor,
        block_size=config.block_size,
        workdir=workdir,
        keep_result=True,
        trace_path=os.path.join(paths["out"], trace_rel),
        fault_plan=config.fault_cells.get(case.cell_id),
        checkpoint_dir=checkpoint_dir,
        resume=True,  # a fresh cell has no checkpoint; a crashed one does
        workers=config.workers,
    )
    cell: Dict[str, object] = {
        "cell_id": case.cell_id,
        "experiment": case.experiment,
        "case": case.case,
        "algorithm": case.algorithm,
        "status": record.status,
        "params": dict(case.params),
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "trace": trace_rel,
    }
    if record.ok:
        assert record.result is not None
        io = record.result.stats.io
        cell["seconds"] = round(float(record.seconds or 0.0), 6)
        cell["io"] = {fld: int(getattr(io, fld)) for fld in IO_FIELDS}
        cell["ios_total"] = int(record.ios or 0)
        cell["iterations"] = int(record.iterations or 0)
        cell["num_sccs"] = int(record.num_sccs or 0)
        cell["partition_sha256"] = partition_fingerprint(record.result.labels)
        extras = record.result.stats.extras
        if "resumed_from_boundary" in extras:
            cell["resumed_from_boundary"] = extras["resumed_from_boundary"]
    if not config.keep_work:
        shutil.rmtree(workdir, ignore_errors=True)
        shutil.rmtree(checkpoint_dir, ignore_errors=True)
    return cell


def _emit_artifacts(
    plan: Plan,
    config: ReproduceConfig,
    cells: Dict[str, Dict[str, object]],
    paths: Dict[str, str],
) -> Tuple[int, Dict[str, object]]:
    """Write summary.json / report.md / MANIFEST.json; validate."""
    from repro.artifact.render import render_summary_markdown

    summary = build_summary(
        tier=plan.tier,
        scale=plan.scale,
        config={
            "block_size": config.block_size,
            "time_limit": plan.time_limit,
            "cell_filter": sorted(config.only),
        },
        cells={
            cell_id: {k: v for k, v in cell.items() if k != "cell_id"}
            for cell_id, cell in cells.items()
        },
    )
    problems = validate_summary(summary)
    os.makedirs(paths["artifact"], exist_ok=True)
    _write_text_atomic(
        os.path.join(paths["artifact"], "summary.json"), summary_json(summary)
    )
    _write_text_atomic(
        os.path.join(paths["artifact"], "report.md"),
        render_summary_markdown(summary),
    )
    manifest = build_manifest(summary)
    _write_text_atomic(
        os.path.join(paths["artifact"], "MANIFEST.json"),
        manifest_json(manifest),
    )
    if problems:
        print(f"{len(problems)} summary validation problem(s):",
              file=sys.stderr)
        for problem in problems:
            print(f"  invalid: {problem}", file=sys.stderr)
        return EXIT_DRIFT, manifest
    return EXIT_OK, manifest


def _verify(manifest: Dict[str, object], golden_path: str) -> int:
    try:
        golden = load_manifest(golden_path)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load golden manifest: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    drift = diff_manifests(golden, manifest)
    if drift:
        print(f"manifest drift vs {golden_path} "
              f"({len(drift)} problem(s)):", file=sys.stderr)
        for problem in drift:
            print(f"  {problem}", file=sys.stderr)
        print(
            "If the drift is an *intentional* I/O-model change, "
            "regenerate the golden with `make artifact-golden`.",
            file=sys.stderr,
        )
        return EXIT_DRIFT
    print(f"manifest verified: matches {golden_path} "
          f"({len(manifest.get('cells', {}))} cells)")  # type: ignore[arg-type]
    return EXIT_OK


def reproduce(config: ReproduceConfig) -> int:
    """Run (or resume) a sweep; returns the process exit code."""
    try:
        plan = build_plan(
            config.tier, only=config.only or None,
            scale=config.scale, time_limit=config.time_limit,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CONFIG

    out_dir = os.path.abspath(
        config.out_dir or os.path.join(
            "bench_results", f"artifact-{config.tier}"
        )
    )
    paths = _layout(out_dir)
    paths["out"] = out_dir
    os.makedirs(out_dir, exist_ok=True)

    plan_dict = plan.to_dict()
    if os.path.exists(paths["plan"]):
        if config.fresh:
            for key in ("cells", "work", "checkpoints", "traces", "artifact"):
                shutil.rmtree(paths[key], ignore_errors=True)
            os.unlink(paths["plan"])
        else:
            try:
                existing = _json_load(paths["plan"])
            except ValueError:
                print(f"error: corrupt plan at {paths['plan']}; "
                      f"use --fresh to restart", file=sys.stderr)
                return EXIT_CONFIG
            if existing != plan_dict:
                print(
                    f"error: {out_dir} holds a different sweep "
                    f"(tier/scale/cells changed); use --fresh to restart "
                    f"or point --out elsewhere",
                    file=sys.stderr,
                )
                return EXIT_CONFIG
            if not config.resume and not config.verify_only:
                completed = _load_completed(paths["cells"])
                if completed:
                    print(
                        f"error: {out_dir} already holds "
                        f"{len(completed)} completed cell(s); pass "
                        f"--resume to continue or --fresh to restart",
                        file=sys.stderr,
                    )
                    return EXIT_CONFIG
    for key in ("cells", "work", "checkpoints", "traces"):
        os.makedirs(paths[key], exist_ok=True)
    if not os.path.exists(paths["plan"]):
        _write_text_atomic(paths["plan"], _json_dumps(plan_dict))

    completed = _load_completed(paths["cells"])
    # Drop stale results that are not part of this plan (e.g. the plan
    # shrank via --cells between runs — impossible past the plan check
    # above, but cheap to be safe about).
    completed = {
        cell_id: cell for cell_id, cell in completed.items()
        if cell_id in set(plan.cell_ids())
    }

    todo = [case for case in plan.cells if case.cell_id not in completed]
    if config.verify_only:
        if todo:
            print(
                f"error: cannot --verify-only with {len(todo)} cell(s) "
                f"incomplete; run the sweep first",
                file=sys.stderr,
            )
            return EXIT_CONFIG
    print(
        f"reproduce[{plan.tier}]: {len(plan.cells)} cells at scale "
        f"{plan.scale:g} ({len(completed)} already done, "
        f"{len(todo)} to run) -> {out_dir}",
        file=sys.stderr,
    )

    progress = _Progress(total=len(plan.cells))
    progress.done = len(completed)
    heartbeat = (
        _Heartbeat(progress, config.heartbeat) if config.heartbeat > 0
        else None
    )
    try:
        for case in todo:
            progress.start_cell(case.cell_id)
            started = time.monotonic()
            try:
                cell = _run_cell(case, plan, config, paths)
            except SimulatedCrash as exc:
                print(f"CRASH: {case.cell_id}: {exc}", file=sys.stderr)
                # The hint must restate the full plan (including any
                # --cells filter): --resume refuses a changed plan.
                cells = ""
                if config.only:
                    quoted = " ".join(f"'{p}'" for p in config.only)
                    cells = f" --cells {quoted}"
                print(f"resume with: repro-scc reproduce --scale "
                      f"{plan.tier} --out {out_dir}{cells} --resume",
                      file=sys.stderr)
                return EXIT_CRASH
            except KeyboardInterrupt:
                print(f"\ninterrupted in {case.cell_id}; completed cells "
                      f"are durable — resume with --resume",
                      file=sys.stderr)
                return EXIT_INTERRUPT
            _write_text_atomic(
                os.path.join(paths["cells"], case.fs_id + ".json"),
                _json_dumps(cell),
            )
            completed[case.cell_id] = cell
            progress.finish_cell()
            took = time.monotonic() - started
            detail = (
                f"ios={cell.get('ios_total')}" if cell["status"] == "ok"
                else f"status={cell['status']}"
            )
            print(
                f"  [{progress.done}/{progress.total}] {case.cell_id} "
                f"{cell['status']} {took:.2f}s {detail} | "
                f"{progress.line().split(': ', 1)[1]}",
                file=sys.stderr,
            )
    finally:
        if heartbeat is not None:
            heartbeat.close()

    code, manifest = _emit_artifacts(plan, config, completed, paths)
    print(
        f"artifact: {os.path.join(paths['artifact'], 'summary.json')} "
        f"+ report.md + MANIFEST.json "
        f"({len(manifest.get('cells', {}))} fingerprinted cells)",  # type: ignore[arg-type]
    )
    if code != EXIT_OK:
        return code
    if config.verify:
        return _verify(manifest, config.verify)
    return EXIT_OK
