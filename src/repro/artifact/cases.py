"""Case lists for every table/figure benchmark — the single source.

Each ``<experiment>_cases()`` function enumerates the cells of one
benchmark module exactly as its pytest sweep measures them (same
graphs, same algorithms, same skip rules and time-limit headroom); the
benchmark modules under ``benchmarks/`` parametrize over these lists,
and :func:`repro.artifact.plan.build_plan` executes them, so the pytest
suite and the one-command reproduction can never drift apart.

Tier membership encodes the paper-vs-CI split:

* ``paper`` cells mirror the full published sweeps, including the
  designated-slow baselines that the paper (and EXPERIMENTS.md) report
  as ``INF``;
* ``smoke`` cells are the subset whose outcome is deterministic at the
  small smoke scale — the slow baselines whose INF/ok status would
  depend on the machine are excluded, following the same reasoning as
  the ``benchmarks.regression`` gate.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.artifact.spec import TIER_PAPER, TIER_SMOKE, CaseSpec, WorkloadSpec, freeze

BOTH = (TIER_SMOKE, TIER_PAPER)
PAPER_ONLY = (TIER_PAPER,)

#: The four algorithms of the paper's evaluation.
FAST = ("1PB-SCC", "1P-SCC")
BASELINES = ("2P-SCC", "DFS-SCC")

#: WEBSPAM-UK2007 stand-in exactly as ``benchmarks/conftest.py`` builds
#: it: 0.4x the tier scale, average degree 12, seed 0.
WEBSPAM = WorkloadSpec.make("webspam", scale_factor=0.4, seed=0, avg_degree=12.0)


def _webspam_subgraph(fraction: float) -> WorkloadSpec:
    return WorkloadSpec.make(
        "webspam-subgraph",
        scale_factor=0.4, seed=0, avg_degree=12.0, fraction=fraction,
    )


def _synthetic(
    scc_class: str,
    paper_nodes: int = 30_000_000,
    degree: float = 5,
    scc_size: Optional[int] = None,
    num_sccs: Optional[int] = None,
    seed: int = 0,
) -> WorkloadSpec:
    """Mirror ``benchmarks.conftest.synthetic_workload``'s kwarg mapping."""
    kwargs: Dict[str, object] = {
        "scc_class": scc_class, "paper_nodes": paper_nodes,
        "degree": degree, "seed": seed,
    }
    if scc_class == "massive" and scc_size is not None:
        kwargs["paper_scc_size"] = scc_size
    if scc_class == "large":
        if scc_size is not None:
            kwargs["paper_scc_size"] = scc_size
        if num_sccs is not None:
            kwargs["num_sccs"] = num_sccs
    if scc_class == "small":
        if scc_size is not None:
            kwargs["scc_size"] = scc_size
        if num_sccs is not None:
            kwargs["paper_num_sccs"] = num_sccs
    return WorkloadSpec.make("synthetic", **kwargs)


def table1_cases() -> List[CaseSpec]:
    """Table 1: 1PB-SCC reduction, optimizations on and off."""
    cases = []
    for acceptance, rejection in [(True, True), (False, False)]:
        cases.append(CaseSpec(
            experiment="table1",
            case=f"webspam-acc={acceptance},rej={rejection}",
            algorithm="1PB-SCC",
            workload=WEBSPAM,
            algo_kwargs=freeze({
                "enable_acceptance": acceptance, "enable_rejection": rejection,
            }),
            time_limit_factor=10.0,
            tiers=BOTH,
            params=freeze({"acceptance": acceptance, "rejection": rejection}),
        ))
    return cases


def table3_cases() -> List[CaseSpec]:
    """Table 3: three citation datasets x all four algorithms.

    DFS-SCC gets the paper's 5-hour-budget headroom (4x); at smoke
    scale it is measured only on the two datasets where it finishes in
    seconds (go-uniprot's DFS run is the one Table 3 cell whose
    INF-vs-ok status is machine-dependent at small scale).
    """
    cases = []
    for name in ("cit-patents", "go-uniprot", "citeseerx"):
        workload = WorkloadSpec.make("real", name=name, seed=0)
        for algorithm in FAST + BASELINES:
            slow_dfs = algorithm == "DFS-SCC"
            tiers = BOTH
            if slow_dfs and name == "go-uniprot":
                tiers = PAPER_ONLY
            cases.append(CaseSpec(
                experiment="table3", case=name, algorithm=algorithm,
                workload=workload,
                time_limit_factor=4.0 if slow_dfs else 1.0,
                tiers=tiers,
                params=freeze({"dataset": name}),
            ))
    return cases


def fig12_cases() -> List[CaseSpec]:
    """Fig. 12: webspam induced-subgraph size sweep (20-100 %).

    The bench's skip rule — 2P-SCC and DFS-SCC only survive the small
    subgraphs — is part of the case list; the smoke tier additionally
    drops DFS-SCC at 40 % (it straddles the time limit there, exactly
    the regression gate's reasoning).
    """
    cases = []
    for fraction in (0.2, 0.4, 0.6, 0.8, 1.0):
        case = f"webspam-{int(fraction * 100)}pct"
        workload = (
            WEBSPAM if fraction >= 1.0 else _webspam_subgraph(fraction)
        )
        params = freeze({"fraction": fraction, "x_param": "fraction"})
        for algorithm in FAST:
            cases.append(CaseSpec(
                experiment="fig12", case=case, algorithm=algorithm,
                workload=workload, tiers=BOTH, params=params,
            ))
        for algorithm in BASELINES:
            if fraction > 0.4:
                continue  # paper: cannot complete the larger subgraphs
            tiers = BOTH
            if algorithm == "DFS-SCC" and fraction > 0.2:
                tiers = PAPER_ONLY
            cases.append(CaseSpec(
                experiment="fig12", case=case, algorithm=algorithm,
                workload=workload, tiers=tiers, params=params,
            ))
    return cases


def fig13_cases() -> List[CaseSpec]:
    """Fig. 13: memory sweep; 1PB everywhere, baselines at base M."""
    cases = []
    for factor in (1.0, 1.5, 2.0, 2.5, 3.0):
        cases.append(CaseSpec(
            experiment="fig13", case=f"webspam-M{factor:g}x",
            algorithm="1PB-SCC", workload=WEBSPAM,
            memory_factor=factor, time_limit_factor=10.0,
            tiers=BOTH if factor in (1.0, 2.0, 3.0) else PAPER_ONLY,
            params=freeze({"memory_factor": factor,
                           "x_param": "memory_factor"}),
        ))
    for algorithm in ("1P-SCC",) + BASELINES:
        # 2P/DFS cannot finish the webspam graph at paper scale within
        # the budget (the paper's point); their status is not
        # deterministic at smoke scale, so only 1P joins the smoke tier.
        cases.append(CaseSpec(
            experiment="fig13", case="webspam-M1x", algorithm=algorithm,
            workload=WEBSPAM, memory_factor=1.0,
            tiers=BOTH if algorithm == "1P-SCC" else PAPER_ONLY,
            params=freeze({"memory_factor": 1.0,
                           "x_param": "memory_factor"}),
        ))
    return cases


def fig14_cases() -> List[CaseSpec]:
    """Fig. 14: node-count sweep per SCC class."""
    sweep = (30, 40, 50, 60, 70)  # millions
    cases = []
    for scc_class in ("massive", "large", "small"):
        for millions in sweep:
            workload = _synthetic(scc_class, paper_nodes=millions * 1_000_000)
            case = f"{scc_class}-{millions}M"
            smoke_point = millions in (30, 70)
            params = freeze({
                "scc_class": scc_class, "paper_nodes_millions": millions,
                "x_param": "paper_nodes_millions",
            })
            for algorithm in FAST:
                cases.append(CaseSpec(
                    experiment="fig14", case=case, algorithm=algorithm,
                    workload=workload,
                    tiers=BOTH if smoke_point else PAPER_ONLY,
                    params=params,
                ))
            # 2P-SCC sweeps the sizes with 2x headroom; DFS-SCC
            # "increases sharply" and is measured at the smallest size
            # only (both per the bench module).  Neither outcome is
            # deterministic at smoke scale.
            cases.append(CaseSpec(
                experiment="fig14", case=case, algorithm="2P-SCC",
                workload=workload, time_limit_factor=2.0,
                tiers=PAPER_ONLY, params=params,
            ))
            if millions == sweep[0]:
                cases.append(CaseSpec(
                    experiment="fig14", case=case, algorithm="DFS-SCC",
                    workload=workload, tiers=PAPER_ONLY, params=params,
                ))
    return cases


def fig15_cases() -> List[CaseSpec]:
    """Fig. 15: degree sweep per SCC class; baselines at degree 3."""
    cases = []
    for scc_class in ("massive", "large", "small"):
        for degree in (3, 4, 5, 6, 7):
            workload = _synthetic(scc_class, degree=degree)
            case = f"{scc_class}-d{degree}"
            smoke_point = degree in (3, 7)
            params = freeze({
                "scc_class": scc_class, "degree": degree, "x_param": "degree",
            })
            for algorithm in FAST:
                cases.append(CaseSpec(
                    experiment="fig15", case=case, algorithm=algorithm,
                    workload=workload,
                    tiers=BOTH if smoke_point else PAPER_ONLY,
                    params=params,
                ))
            if degree == 3:
                for algorithm in BASELINES:
                    cases.append(CaseSpec(
                        experiment="fig15", case=case, algorithm=algorithm,
                        workload=workload, tiers=PAPER_ONLY, params=params,
                    ))
    return cases


def fig16_cases() -> List[CaseSpec]:
    """Fig. 16: SCC-size sweep; 2P only on the small-SCC low end."""
    sweeps = {
        "massive": (200_000, 300_000, 400_000, 500_000, 600_000),
        "large": (4_000, 6_000, 8_000, 10_000, 12_000),
        "small": (20, 30, 40, 50, 60),
    }
    cases = []
    for scc_class, sizes in sweeps.items():
        for size in sizes:
            workload = _synthetic(scc_class, scc_size=size)
            case = f"{scc_class}-s{size}"
            smoke_point = size in (sizes[0], sizes[-1])
            params = freeze({
                "scc_class": scc_class, "scc_size": size,
                "x_param": "scc_size",
            })
            for algorithm in FAST:
                cases.append(CaseSpec(
                    experiment="fig16", case=case, algorithm=algorithm,
                    workload=workload,
                    tiers=BOTH if smoke_point else PAPER_ONLY,
                    params=params,
                ))
            if scc_class == "small" and size in sizes[:2]:
                cases.append(CaseSpec(
                    experiment="fig16", case=case, algorithm="2P-SCC",
                    workload=workload,
                    tiers=BOTH if size == sizes[0] else PAPER_ONLY,
                    params=params,
                ))
    return cases


def fig17_cases() -> List[CaseSpec]:
    """Fig. 17: SCC-count sweep (Large and Small classes)."""
    sweeps = {
        "large": (30, 40, 50, 60, 70),
        "small": (6_000, 8_000, 10_000, 12_000, 14_000),
    }
    cases = []
    for scc_class, counts in sweeps.items():
        for count in counts:
            workload = _synthetic(scc_class, num_sccs=count)
            smoke_point = count in (counts[0], counts[-1])
            params = freeze({
                "scc_class": scc_class, "num_sccs": count,
                "x_param": "num_sccs",
            })
            for algorithm in FAST:
                cases.append(CaseSpec(
                    experiment="fig17", case=f"{scc_class}-x{count}",
                    algorithm=algorithm, workload=workload,
                    tiers=BOTH if smoke_point else PAPER_ONLY,
                    params=params,
                ))
    return cases


def ablation_cases() -> List[CaseSpec]:
    """Sections 7.1-7.4 design-choice ablations on the webspam graph."""
    cases = []
    for acceptance in (True, False):
        for rejection in (True, False):
            cases.append(CaseSpec(
                experiment="ablation",
                case=f"acc={acceptance},rej={rejection}",
                algorithm="1PB-SCC", workload=WEBSPAM,
                algo_kwargs=freeze({
                    "enable_acceptance": acceptance,
                    "enable_rejection": rejection,
                }),
                time_limit_factor=10.0,
                # The 2x2 corners already ride in table1's smoke cells.
                tiers=PAPER_ONLY,
                params=freeze({"acceptance": acceptance,
                               "rejection": rejection}),
            ))
    for tau in (0.001, 0.005, 0.02, 0.1):
        cases.append(CaseSpec(
            experiment="ablation", case=f"tau={tau}",
            algorithm="1PB-SCC", workload=WEBSPAM,
            algo_kwargs=freeze({"tau_fraction": tau}),
            time_limit_factor=10.0,
            tiers=BOTH if tau in (0.001, 0.1) else PAPER_ONLY,
            params=freeze({"tau_fraction": tau}),
        ))
    for period in (1, 5, 10):
        cases.append(CaseSpec(
            experiment="ablation", case=f"period={period}",
            algorithm="1P-SCC", workload=WEBSPAM,
            algo_kwargs=freeze({"rejection_period": period}),
            time_limit_factor=10.0,
            tiers=BOTH if period in (1, 10) else PAPER_ONLY,
            params=freeze({"rejection_period": period}),
        ))
    for batch_blocks in (1, 4, 16, 64):
        cases.append(CaseSpec(
            experiment="ablation", case=f"batch={batch_blocks}",
            algorithm="1PB-SCC", workload=WEBSPAM,
            algo_kwargs=freeze({"batch_blocks": batch_blocks}),
            time_limit_factor=10.0,
            tiers=BOTH if batch_blocks in (1, 16) else PAPER_ONLY,
            params=freeze({"batch_blocks": batch_blocks}),
        ))
    return cases


#: Experiment key -> case-list constructor, in sweep order.
EXPERIMENT_CASES = {
    "table1": table1_cases,
    "table3": table3_cases,
    "fig12": fig12_cases,
    "fig13": fig13_cases,
    "fig14": fig14_cases,
    "fig15": fig15_cases,
    "fig16": fig16_cases,
    "fig17": fig17_cases,
    "ablation": ablation_cases,
}


def cases_for(experiment: str, tier: Optional[str] = None) -> List[CaseSpec]:
    """Case list of one experiment, optionally filtered to a tier."""
    if experiment not in EXPERIMENT_CASES:
        raise ValueError(
            f"unknown experiment {experiment!r}; "
            f"choose from {sorted(EXPERIMENT_CASES)}"
        )
    cases = EXPERIMENT_CASES[experiment]()
    if tier is not None:
        cases = [case for case in cases if case.in_tier(tier)]
    return cases


def all_cases(tier: Optional[str] = None) -> List[CaseSpec]:
    """Every cell of every experiment, in deterministic sweep order."""
    cases: List[CaseSpec] = []
    for experiment in EXPERIMENT_CASES:
        cases.extend(cases_for(experiment, tier))
    ids = [case.cell_id for case in cases]
    if len(set(ids)) != len(ids):
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        raise ValueError(f"duplicate cell ids in case lists: {dupes}")
    return cases
