"""Sweep plans: tier configuration and workload resolution.

A :class:`Plan` is the ordered list of cells the runner will execute
plus the tier parameters (scale, base time limit) they run under.  The
plan is written to ``plan.json`` at sweep start and re-validated on
``--resume``, so a resumed sweep provably continues the *same* sweep.

Workload resolution turns a :class:`~repro.artifact.spec.WorkloadSpec`
recipe into a concrete :class:`~repro.graph.digraph.Digraph` at the
plan's scale.  Resolution is cached per (spec, scale) — the webspam
graph backs a dozen cells and is built once per process — and every
generator is seeded, so resolution is deterministic across processes
and machines.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.artifact.cases import all_cases
from repro.artifact.spec import (
    TIER_PAPER,
    TIER_SMOKE,
    CaseSpec,
    TierConfig,
    WorkloadSpec,
)
from repro.graph.builders import induced_subgraph
from repro.graph.digraph import Digraph
from repro.workloads.params import params_for_class
from repro.workloads.realworld import (
    cit_patents_like,
    citeseerx_like,
    go_uniprot_like,
    webspam_like,
)

#: The sweep tiers.  ``smoke`` runs every table/figure at 1e-4 of the
#: paper's sizes with a generous per-cell budget — small enough for CI,
#: big enough that every algorithm touches multiple blocks per scan —
#: and its manifest is committed as a golden.  ``paper`` is the
#: EXPERIMENTS.md configuration (2.5e-4 scale, 30 s budget, the
#: designated-slow baselines included and allowed to go INF).
TIERS: Dict[str, TierConfig] = {
    TIER_SMOKE: TierConfig(
        name=TIER_SMOKE, scale=1e-4, time_limit=120.0,
        description="CI gate: deterministic subset, golden manifest",
    ),
    TIER_PAPER: TierConfig(
        name=TIER_PAPER, scale=2.5e-4, time_limit=30.0,
        description="EXPERIMENTS.md sweep: full case lists, INF reported",
    ),
}

#: plan.json layout version.
PLAN_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Plan:
    """An ordered, tier-bound list of cells to execute."""

    tier: str
    scale: float
    time_limit: float
    cells: tuple

    def cell_ids(self) -> List[str]:
        """The plan's cell ids, in execution order."""
        return [case.cell_id for case in self.cells]

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form, round-tripped by :meth:`from_dict`."""
        return {
            "schema": PLAN_SCHEMA_VERSION,
            "kind": "repro-artifact-plan",
            "tier": self.tier,
            "scale": self.scale,
            "time_limit": self.time_limit,
            "cells": [case.to_dict() for case in self.cells],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Plan":
        if data.get("schema") != PLAN_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported plan schema {data.get('schema')!r} "
                f"(expected {PLAN_SCHEMA_VERSION})"
            )
        return cls(
            tier=str(data["tier"]),
            scale=float(data["scale"]),  # type: ignore[arg-type]
            time_limit=float(data["time_limit"]),  # type: ignore[arg-type]
            cells=tuple(
                CaseSpec.from_dict(cell)  # type: ignore[arg-type]
                for cell in data["cells"]  # type: ignore[union-attr]
            ),
        )


def build_plan(
    tier: str,
    only: Optional[Sequence[str]] = None,
    scale: Optional[float] = None,
    time_limit: Optional[float] = None,
) -> Plan:
    """Enumerate the tier's cells (optionally filtered by glob patterns).

    ``only`` patterns match cell ids (``fig12/*``, ``*/1PB-SCC``, or a
    full ``table3/citeseerx/1P-SCC``); an unknown pattern that matches
    nothing raises, so a typo cannot silently produce an empty sweep.
    """
    if tier not in TIERS:
        raise ValueError(f"unknown tier {tier!r}; choose from {sorted(TIERS)}")
    config = TIERS[tier]
    cells = all_cases(tier)
    if only:
        selected: List[CaseSpec] = []
        for pattern in only:
            matched = [
                case for case in cells
                if fnmatch.fnmatchcase(case.cell_id, pattern)
            ]
            if not matched:
                raise ValueError(
                    f"--cells pattern {pattern!r} matches no "
                    f"{tier}-tier cell"
                )
            for case in matched:
                if case not in selected:
                    selected.append(case)
        cells = selected
    return Plan(
        tier=tier,
        scale=config.scale if scale is None else scale,
        time_limit=config.time_limit if time_limit is None else time_limit,
        cells=tuple(cells),
    )


@lru_cache(maxsize=None)
def _resolve(spec: WorkloadSpec, scale: float) -> Digraph:
    args = spec.arg_dict
    if spec.kind == "webspam":
        return webspam_like(
            scale=float(args.get("scale_factor", 1.0)) * scale,  # type: ignore[arg-type]
            seed=int(args.get("seed", 0)),  # type: ignore[arg-type]
            avg_degree=args.get("avg_degree"),  # type: ignore[arg-type]
        ).graph
    if spec.kind == "webspam-subgraph":
        fraction = float(args.pop("fraction"))  # type: ignore[arg-type]
        base = _resolve(WorkloadSpec.make("webspam", **args), scale)
        if fraction >= 1.0:
            return base
        # Same seeding as bench_fig12's subgraph_at / the suite runner.
        rng = np.random.default_rng(int(fraction * 100))
        nodes = rng.choice(
            base.num_nodes,
            size=int(round(base.num_nodes * fraction)),
            replace=False,
        )
        sub, _ = induced_subgraph(base, nodes)
        return sub
    if spec.kind == "synthetic":
        scc_class = str(args.pop("scc_class"))
        return params_for_class(scc_class, scale=scale, **args).build().graph
    if spec.kind == "real":
        factories = {
            "cit-patents": cit_patents_like,
            "go-uniprot": go_uniprot_like,
            "citeseerx": citeseerx_like,
        }
        name = str(args["name"])
        if name not in factories:
            raise ValueError(f"unknown real dataset {name!r}")
        return factories[name](scale=scale, seed=int(args.get("seed", 0)))  # type: ignore[arg-type]
    raise ValueError(f"unknown workload kind {spec.kind!r}")


def build_graph(spec: WorkloadSpec, scale: float) -> Digraph:
    """Resolve a workload recipe at ``scale`` (cached per process)."""
    return _resolve(spec, scale)
