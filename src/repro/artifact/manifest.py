"""Artifact manifests: SHA-256 over what the I/O model determines.

A manifest pins one fingerprint per completed cell, computed over the
cell's *deterministic* projection (counted block transfers, iteration
counts, SCC totals, partition fingerprint — see
:func:`repro.artifact.summary.deterministic_cell`).  Wall-clock never
enters the hash, so two sweeps of the same tier — on different
machines, or one interrupted and resumed — produce byte-identical
``MANIFEST.json`` files.  That identity is the CI gate: drift in any
counted quantity changes a cell hash, and a cell that flips between
ok and INF appears/disappears from the manifest entirely.

Non-ok cells (``INF``/``DNF``) are excluded: whether a slow baseline
exceeds a wall-clock budget is machine-dependent, which is exactly the
kind of fact a manifest must not pin.  The smoke tier is constructed
so every cell completes; at paper tier the INF cells live in
``summary.json`` only.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List

import numpy as np

from repro.artifact.summary import SummaryData, deterministic_cell

#: Bump on incompatible manifest layout changes.
MANIFEST_SCHEMA_VERSION = 1


def partition_fingerprint(labels: "np.ndarray") -> str:
    """SHA-256 over the canonicalised (order-independent) SCC labels.

    The same fingerprint the bench-regression gate pins: labels are
    relabelled by first appearance, so any labelling of the same
    partition hashes identically.
    """
    from repro.core.base import canonicalize_labels

    canonical, _ = canonicalize_labels(labels)
    return hashlib.sha256(
        np.ascontiguousarray(canonical, dtype="<i8").tobytes()
    ).hexdigest()


def cell_fingerprint(cell: Dict[str, object]) -> str:
    """SHA-256 over a cell's canonical deterministic projection."""
    canonical = json.dumps(
        deterministic_cell(cell), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def build_manifest(summary: SummaryData) -> Dict[str, object]:
    """Manifest dict for a sweep summary (ok cells only)."""
    cells = {
        cell_id: cell_fingerprint(cell)
        for cell_id, cell in sorted(summary.cells.items())
        if cell.get("status") == "ok"
    }
    root = hashlib.sha256(
        "\n".join(f"{cell_id} {digest}" for cell_id, digest
                  in sorted(cells.items())).encode("utf-8")
    ).hexdigest()
    return {
        "schema": MANIFEST_SCHEMA_VERSION,
        "kind": "repro-artifact-manifest",
        "tier": summary.tier,
        "scale": summary.scale,
        "cells": cells,
        "root": root,
    }


def manifest_json(manifest: Dict[str, object]) -> str:
    """Canonical serialization — the byte-identity contract."""
    return json.dumps(manifest, indent=2, sort_keys=True) + "\n"


def load_manifest(path: str) -> Dict[str, object]:
    """Load a manifest; raises ``ValueError`` on malformed content."""
    with open(path, "r", encoding="utf-8") as handle:  # repro: allow[IO001]
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from None
    if not isinstance(data, dict) or data.get("kind") != "repro-artifact-manifest":
        raise ValueError(f"{path}: not a repro-artifact manifest")
    if data.get("schema") != MANIFEST_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported manifest schema {data.get('schema')!r} "
            f"(expected {MANIFEST_SCHEMA_VERSION})"
        )
    return data


def diff_manifests(
    golden: Dict[str, object], current: Dict[str, object]
) -> List[str]:
    """Human-readable drift between two manifests (empty == identical)."""
    problems: List[str] = []
    for key in ("tier", "scale"):
        if golden.get(key) != current.get(key):
            problems.append(
                f"{key}: current {current.get(key)!r} != "
                f"golden {golden.get(key)!r}"
            )
    golden_cells: Dict[str, str] = dict(golden.get("cells", {}))  # type: ignore[arg-type]
    current_cells: Dict[str, str] = dict(current.get("cells", {}))  # type: ignore[arg-type]
    for cell_id in sorted(set(golden_cells) | set(current_cells)):
        if cell_id not in current_cells:
            problems.append(
                f"{cell_id}: in golden but missing from this sweep "
                f"(cell removed, or no longer completes)"
            )
        elif cell_id not in golden_cells:
            problems.append(
                f"{cell_id}: produced by this sweep but not in golden "
                f"(new cell, or a previously-INF cell now completes)"
            )
        elif golden_cells[cell_id] != current_cells[cell_id]:
            problems.append(
                f"{cell_id}: fingerprint drift "
                f"{current_cells[cell_id][:12]}… != "
                f"golden {golden_cells[cell_id][:12]}…"
            )
    if not problems and golden.get("root") != current.get("root"):
        problems.append(
            f"root hash drift {current.get('root')!r} != "
            f"{golden.get('root')!r} with identical cells "
            f"(manifest corruption)"
        )
    return problems
