"""Render sweep results as the EXPERIMENTS.md-style tables.

Two inputs are supported:

* an artifact summary (:func:`render_summary_markdown`) — the primary
  path, fed by ``repro-scc reproduce``;
* raw pytest-benchmark JSON exports
  (:func:`load_benchmark_exports` / :func:`render_benchmark_exports`)
  — the legacy ``tools/render_experiments.py`` path, absorbed here so
  the tool is a thin shim.  Loading reports *problems* (unreadable
  files, exports without a ``benchmarks`` list) instead of silently
  skipping them; strict callers (CI) fail on any problem.
"""

from __future__ import annotations

import glob
import json
import os
from collections import defaultdict
from typing import Dict, List, Tuple

from repro.artifact.summary import SummaryData


def _fmt_seconds(cell: Dict[str, object]) -> str:
    if cell.get("status") != "ok":
        return str(cell.get("status"))
    seconds = cell.get("seconds")
    return f"{float(seconds):.3f}" if seconds is not None else "-"  # type: ignore[arg-type]


def _fmt_ios(cell: Dict[str, object]) -> str:
    if cell.get("status") != "ok":
        return str(cell.get("status"))
    io = cell.get("io") or {}
    total = sum(int(io.get(fld, 0)) for fld in  # type: ignore[union-attr]
                ("seq_reads", "seq_writes", "rand_reads", "rand_writes"))
    return f"{total:,}"


def render_summary_markdown(summary: SummaryData) -> str:
    """One markdown table per experiment, cells in sweep order."""
    by_experiment: Dict[str, List[Tuple[str, Dict[str, object]]]] = (
        defaultdict(list)
    )
    for cell_id, cell in summary.cells.items():
        by_experiment[str(cell.get("experiment", "?"))].append((cell_id, cell))

    lines = [
        "# Reproduction artifact report",
        "",
        f"Tier **{summary.tier}** at scale `{summary.scale:g}` — "
        f"{len(summary.cells)} cells.  Block I/Os and iteration counts "
        f"are exact in-model quantities (machine-independent); seconds "
        f"are wall-clock on the generating machine and are excluded "
        f"from the manifest.",
    ]
    for experiment in sorted(by_experiment):
        rows = sorted(by_experiment[experiment])
        lines += [
            "",
            f"## {experiment}",
            "",
            "| case | algorithm | status | seconds | block I/Os |"
            " iterations | SCCs |",
            "|---|---|---|---:|---:|---:|---:|",
        ]
        for _, cell in rows:
            iterations = cell.get("iterations")
            num_sccs = cell.get("num_sccs")
            lines.append(
                f"| {cell.get('case')} | {cell.get('algorithm')} "
                f"| {cell.get('status')} | {_fmt_seconds(cell)} "
                f"| {_fmt_ios(cell)} "
                f"| {iterations if iterations is not None else '-'} "
                f"| {num_sccs if num_sccs is not None else '-'} |"
            )
    ok = sum(1 for c in summary.cells.values() if c.get("status") == "ok")
    lines += [
        "",
        f"Completed {ok}/{len(summary.cells)} cells; non-ok cells are "
        f"reported as the paper reports them (`INF` = over budget, "
        f"`DNF` = non-termination).",
        "",
    ]
    return "\n".join(lines)


def load_benchmark_exports(
    results_dir: str,
) -> Tuple[List[Dict[str, object]], List[str]]:
    """Parse every pytest-benchmark JSON export under ``results_dir``.

    Returns ``(records, problems)``.  A file that cannot be parsed, or
    parses but has no ``benchmarks`` list (a schema-less export), is a
    *problem* — callers decide whether problems are fatal (``--strict``)
    or merely reported.
    """
    records: List[Dict[str, object]] = []
    problems: List[str] = []
    paths = sorted(glob.glob(os.path.join(results_dir, "*.json")))
    if not paths:
        problems.append(f"no benchmark JSON files found in {results_dir}/")
        return records, problems
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:  # repro: allow[IO001]
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            problems.append(f"unreadable {path}: {exc}")
            continue
        benches = data.get("benchmarks") if isinstance(data, dict) else None
        if not isinstance(benches, list):
            problems.append(
                f"{path}: no 'benchmarks' list (not a pytest-benchmark "
                f"export, or schema drift)"
            )
            continue
        for bench in benches:
            extra = bench.get("extra_info", {})
            group = bench["name"].split("[")[0]
            case = bench["name"][len(group):].strip("[]")
            records.append(
                {
                    "file": os.path.basename(
                        bench.get("fullname", "")
                    ).split("::")[0] or group,
                    "group": group,
                    "case": case or "-",
                    "seconds": bench["stats"]["mean"],
                    "status": extra.get("status", "ok"),
                    "ios": extra.get("ios"),
                    "iterations": extra.get("iterations"),
                    "extra": extra,
                }
            )
    return records, problems


def render_benchmark_exports(records: List[Dict[str, object]]) -> str:
    """The legacy fixed-width per-group table of ``render_experiments``."""
    by_group: Dict[str, List[Dict[str, object]]] = defaultdict(list)
    for record in records:
        by_group[str(record["group"])].append(record)
    lines: List[str] = []
    for group in sorted(by_group):
        lines.append(f"\n## {group}")
        lines.append(
            f"{'case':<28} {'status':<6} {'seconds':>9} {'block I/Os':>11} "
            f"{'iters':>6}"
        )
        lines.append("-" * 64)
        for record in sorted(by_group[group], key=lambda r: str(r["case"])):
            seconds = (
                f"{record['seconds']:.3f}" if record["status"] == "ok" else "-"  # type: ignore[str-format]
            )
            ios = (
                f"{record['ios']:,}"  # type: ignore[str-format]
                if record["status"] == "ok" and record["ios"] is not None
                else str(record["status"])
            )
            iters = (
                str(record["iterations"])
                if record["iterations"] is not None
                else "-"
            )
            lines.append(
                f"{str(record['case']):<28} {str(record['status']):<6} "
                f"{seconds:>9} {ios:>11} {iters:>6}"
            )
    return "\n".join(lines)
