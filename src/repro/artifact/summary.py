"""The machine-readable sweep summary: schema, loader, validator.

``artifact/summary.json`` is the canonical record of one reproduction
sweep — every cell's status, counted I/O, iteration count, SCC totals
and partition fingerprint, plus the wall-clock seconds that are
deliberately *excluded* from the manifest.  Like traces and metrics
snapshots it is schema-versioned and validated, so downstream tooling
(the renderer, the manifest builder, CI) fails loudly on drift instead
of producing empty tables.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Bump on incompatible summary layout changes.
SUMMARY_SCHEMA_VERSION = 1

#: The six counted transfer fields recorded (and pinned) per cell.
IO_FIELDS = (
    "seq_reads", "seq_writes", "rand_reads", "rand_writes",
    "bytes_read", "bytes_written",
)

#: Cell outcome vocabulary (mirrors the bench harness).
STATUSES = ("ok", "INF", "DNF")

#: Keys every cell record must carry.
REQUIRED_CELL_KEYS = ("experiment", "case", "algorithm", "status")

#: Keys additionally required when the cell completed.
REQUIRED_OK_KEYS = (
    "io", "iterations", "num_sccs", "partition_sha256", "nodes", "edges",
)


@dataclass
class SummaryData:
    """Parsed ``summary.json``."""

    schema_version: int
    tier: str
    scale: float
    config: Dict[str, object] = field(default_factory=dict)
    cells: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form, written verbatim as ``summary.json``."""
        return {
            "schema": self.schema_version,
            "kind": "repro-artifact-summary",
            "tier": self.tier,
            "scale": self.scale,
            "config": self.config,
            "cells": self.cells,
        }


def summary_json(summary: SummaryData) -> str:
    """Canonical serialization (sorted keys, stable indentation)."""
    return json.dumps(summary.to_dict(), indent=2, sort_keys=True) + "\n"


def load_summary(path: str) -> SummaryData:
    """Load ``summary.json``; raises ``ValueError`` on malformed JSON."""
    with open(path, "r", encoding="utf-8") as handle:  # repro: allow[IO001]
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise ValueError(f"{path}: summary must be a JSON object")
    return SummaryData(
        schema_version=int(data.get("schema", -1)),
        tier=str(data.get("tier", "")),
        scale=float(data.get("scale", 0.0)),
        config=dict(data.get("config", {})),
        cells=dict(data.get("cells", {})),
    )


def validate_summary(summary: SummaryData) -> List[str]:
    """All schema problems of a summary (empty list == valid)."""
    problems: List[str] = []
    if summary.schema_version != SUMMARY_SCHEMA_VERSION:
        problems.append(
            f"schema version {summary.schema_version} != "
            f"{SUMMARY_SCHEMA_VERSION}"
        )
        return problems
    if not summary.tier:
        problems.append("missing tier")
    if summary.scale <= 0:
        problems.append(f"non-positive scale {summary.scale}")
    if not summary.cells:
        problems.append("summary has no cells")
    for cell_id, cell in sorted(summary.cells.items()):
        if not isinstance(cell, dict):
            problems.append(f"{cell_id}: cell record is not an object")
            continue
        for key in REQUIRED_CELL_KEYS:
            if key not in cell:
                problems.append(f"{cell_id}: missing {key!r}")
        status = cell.get("status")
        if status not in STATUSES:
            problems.append(f"{cell_id}: unknown status {status!r}")
        expected = "/".join(
            str(cell.get(key, "")) for key in ("experiment", "case", "algorithm")
        )
        if all(key in cell for key in ("experiment", "case", "algorithm")):
            if cell_id != expected:
                problems.append(
                    f"{cell_id}: id does not match fields ({expected})"
                )
        if status != "ok":
            continue
        for key in REQUIRED_OK_KEYS:
            if key not in cell:
                problems.append(f"{cell_id}: ok cell missing {key!r}")
        io = cell.get("io")
        if not isinstance(io, dict):
            problems.append(f"{cell_id}: io is not an object")
        else:
            for fld in IO_FIELDS:
                value = io.get(fld)
                if not isinstance(value, int) or value < 0:
                    problems.append(
                        f"{cell_id}: io.{fld} must be a non-negative "
                        f"integer, got {value!r}"
                    )
        for key in ("iterations", "num_sccs", "nodes", "edges"):
            value = cell.get(key)
            if key in cell and (not isinstance(value, int) or value < 0):
                problems.append(
                    f"{cell_id}: {key} must be a non-negative integer, "
                    f"got {value!r}"
                )
        sha = cell.get("partition_sha256")
        if sha is not None and not (
            isinstance(sha, str) and len(sha) == 64
            and all(c in "0123456789abcdef" for c in sha)
        ):
            problems.append(
                f"{cell_id}: partition_sha256 is not a sha256 hex digest"
            )
    return problems


def deterministic_cell(cell: Dict[str, object]) -> Dict[str, object]:
    """Project a cell record onto its I/O-model-deterministic fields.

    This is the manifest's hashing domain: counted transfers,
    iteration counts, SCC totals and the partition fingerprint — never
    wall-clock seconds, trace paths, or resume markers.
    """
    keep = {}
    for key in REQUIRED_CELL_KEYS + REQUIRED_OK_KEYS:
        if key in cell:
            keep[key] = cell[key]
    return keep


def build_summary(
    tier: str,
    scale: float,
    config: Dict[str, object],
    cells: Dict[str, Dict[str, object]],
    schema_version: Optional[int] = None,
) -> SummaryData:
    """Assemble a summary with cells in sorted order."""
    return SummaryData(
        schema_version=(
            SUMMARY_SCHEMA_VERSION if schema_version is None else schema_version
        ),
        tier=tier,
        scale=scale,
        config=dict(sorted(config.items())),
        cells={cell_id: cells[cell_id] for cell_id in sorted(cells)},
    )
