"""One-command reproduction artifact pipeline.

The paper's deliverable is its evaluation — Tables 1 and 3, Figures
12–17 — and this package turns regenerating it into a single, gated
command::

    repro-scc reproduce --scale smoke        # CI tier, minutes
    repro-scc reproduce --scale paper        # EXPERIMENTS.md tier

A *plan* (:mod:`repro.artifact.plan`) enumerates every (benchmark,
case) cell of the chosen tier from the declarative case lists in
:mod:`repro.artifact.cases` — the same lists the pytest benchmarks
under ``benchmarks/`` parametrize over, so the sweep and the benches
can never drift apart.  The *runner* (:mod:`repro.artifact.runner`)
executes the plan as a resumable, checkpointed sweep: each cell's
result is durable the moment it completes, a crash or ``SIGINT``
mid-sweep resumes at the next cell (and mid-algorithm via the PR 5
scan-boundary checkpoints), and progress/ETA heartbeats go to stderr.

On completion the runner emits, under ``<out>/artifact/``:

* ``summary.json`` — schema-versioned, machine-readable results for
  every cell (:mod:`repro.artifact.summary`);
* ``report.md`` — the EXPERIMENTS.md-style tables rendered from the
  summary (:mod:`repro.artifact.render`);
* ``MANIFEST.json`` — a SHA-256 per cell over the
  I/O-model-deterministic outputs only (counted I/O, iterations,
  partition fingerprints — never wall-clock), so two runs of the same
  tier on any machine produce byte-identical manifests
  (:mod:`repro.artifact.manifest`).

``repro-scc reproduce --verify PATH`` recomputes the manifest and
diffs it against a committed golden — the CI gate that proves the repo
still reproduces the paper end to end.
"""

from repro.artifact.cases import all_cases, cases_for
from repro.artifact.manifest import (
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    cell_fingerprint,
    diff_manifests,
    load_manifest,
    manifest_json,
)
from repro.artifact.plan import TIERS, Plan, build_graph, build_plan
from repro.artifact.render import (
    load_benchmark_exports,
    render_benchmark_exports,
    render_summary_markdown,
)
from repro.artifact.runner import ReproduceConfig, reproduce
from repro.artifact.spec import CaseSpec, WorkloadSpec
from repro.artifact.summary import (
    SUMMARY_SCHEMA_VERSION,
    load_summary,
    validate_summary,
)

__all__ = [
    "CaseSpec",
    "WorkloadSpec",
    "all_cases",
    "cases_for",
    "TIERS",
    "Plan",
    "build_plan",
    "build_graph",
    "ReproduceConfig",
    "reproduce",
    "SUMMARY_SCHEMA_VERSION",
    "load_summary",
    "validate_summary",
    "MANIFEST_SCHEMA_VERSION",
    "build_manifest",
    "cell_fingerprint",
    "manifest_json",
    "load_manifest",
    "diff_manifests",
    "render_summary_markdown",
    "load_benchmark_exports",
    "render_benchmark_exports",
]
