"""``ParallelKernels``: VectorKernels fed by worker-precomputed bundles.

The subclass changes *how verdicts are obtained*, never *which verdicts
are applied* — the strict decision-equivalence contract of
:mod:`repro.kernels.base` extends to the parallel executor:

* **Labels** come from :func:`repro.parallel.labeler.vector_relabel`
  instead of the oracle's Python DFS.  Any valid DFS order yields the
  same interval answers, so decisions are unchanged; the rebuild
  *cadence* replicates :meth:`AncestorOracle.refresh` exactly.  Every
  rebuild republishes the snapshot to the shared arena (via
  :meth:`AncestorOracle.export` into the staging views), so in-flight
  bundles stamped with the old generation are discarded on arrival.
* **Bundles** (worker results) are consumed only where provably equal
  to the local computation.  A classification bundle carries, per raw
  edge, the snapshot roots ``(u0, v0)`` and the interval verdict on
  them; the main process uses the verdict only for pairs whose current
  roots still equal ``(u0, v0)`` under the same generation — then the
  worker evaluated the *identical* formula on the *identical* labels —
  and recomputes the rest locally.  DFS bundles are keyed on raw node
  ids, so a generation match alone makes them identical to the local
  arrays.  A missing bundle (worker crash, torn read, stale
  generation) means the batch is classified in-process, exactly as a
  serial run would.
* **Fallback walks** use plain-list mirrors of ``parent``/``depth``/
  ``dirty`` (maintained by :class:`~repro.spanning.tree.
  ContractibleTree` when mirrors are enabled) — a per-edge loop over
  Python lists avoids the numpy scalar-boxing tax that dominates the
  dirty path.  The walk logic itself is the hybrid dirty-suffix walk of
  :mod:`repro.kernels.vector`, value-for-value.

Partitions, iteration counts and counted I/O are therefore
byte-identical to serial ``VectorKernels`` at any worker count —
enforced by the ``--workers`` re-runs of the bench-regression gate and
fuzzed across all five algorithms in ``tests/test_parallel.py``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.kernels.oracle import AncestorOracle
from repro.kernels.vector import VectorKernels, _hybrid_is_ancestor
from repro.parallel.context import ParallelContext
from repro.parallel.labeler import vector_relabel

__all__ = ["ParallelKernels"]


class ParallelKernels(VectorKernels):
    """Bundle-merging vector kernels (see module docstring)."""

    name = "parallel"
    #: Algorithms fan scans out only when the resolved kernel opts in.
    parallel_ready = True

    def __init__(self, ctx: ParallelContext) -> None:
        super().__init__()
        self._ctx = ctx
        self._host: Any = None
        self._tin_l: Any = None
        self._tout_l: Any = None
        #: Arena generation holding this kernel's current labels; -1
        #: until the first publish (bundles can never match it).
        self._labels_gen = -1

    # ------------------------------------------------------------------
    # snapshot lifecycle
    # ------------------------------------------------------------------
    def _refresh(self, tree: Any) -> AncestorOracle:
        oracle = self._oracle(tree)
        # Mirrors are enabled lazily by one_phase_scan (their only
        # consumer): 2P construction is pushdown-heavy and would pay the
        # per-mutation list upkeep for walks it never runs.
        mirrors = hasattr(tree, "enable_mirror")
        if self._host is not tree:
            # New host (e.g. the DFS second pass): cached label lists
            # and the published snapshot both describe the old tree.
            self._host = tree
            self._tin_l = None
            self._tout_l = None
            self._labels_gen = -1
        epoch = tree.epoch
        if oracle.built_epoch != epoch:
            # Replicates AncestorOracle.refresh's amortisation policy
            # exactly — same rebuild points as a serial vector run.
            rebuild = oracle.built_epoch < 0
            if not rebuild:
                dirty_count = int(np.count_nonzero(tree.dirty))
                live = getattr(tree, "live", None)
                live_count = (
                    int(np.count_nonzero(live)) if live is not None
                    else tree.n
                )
                threshold = max(
                    oracle.rebuild_min_dirty,
                    int(oracle.rebuild_fraction * live_count),
                )
                rebuild = dirty_count > threshold
            if rebuild:
                live = getattr(tree, "live", None)
                vector_relabel(
                    tree.parent, tree.depth, live, oracle.tin, oracle.tout
                )
                tree.dirty[:] = False
                if mirrors:
                    tree.mirror_clear_dirty()
                tree.track_dirty = True
                oracle.built_epoch = epoch
                oracle.rebuilds += 1
                self._tin_l = oracle.tin.tolist()
                self._tout_l = oracle.tout.tolist()
                self.bump("oracle-rebuilds", 1)
                self._publish(tree, oracle)
        if self._tin_l is None:
            self._tin_l = oracle.tin.tolist()
            self._tout_l = oracle.tout.tolist()
        return oracle

    def _publish(self, tree: Any, oracle: AncestorOracle) -> None:
        """Stage and commit the current snapshot to the shared arena."""
        stage = self._ctx.arena.stage()
        oracle.export(into=(stage["tin"], stage["tout"]))
        np.copyto(stage["depth"], tree.depth)
        ds = getattr(tree, "ds", None)
        if ds is not None:
            stage["root"][:] = ds.find_many(
                np.arange(tree.n, dtype=np.int64)
            )
        else:
            # DFS hosts have no contraction: nodes are their own roots.
            stage["root"][:] = np.arange(tree.n, dtype=np.int64)
        live = getattr(tree, "live", None)
        if live is not None:
            np.copyto(stage["live"], live, casting="unsafe")
        else:
            stage["live"].fill(1)
        self._labels_gen = self._ctx.arena.commit()
        self._ctx.note_publish()

    def publish_snapshot(self, tree: Any) -> None:
        """Scan-start hook: make the arena reflect this kernel's labels.

        ``classify`` passes this as its ``publish`` callback so a scan's
        first bundles are computed under a current snapshot (a frozen
        ``map_frozen`` publish in between would otherwise have left the
        arena ahead of the labels).
        """
        oracle = self._refresh(tree)
        if self._labels_gen != self._ctx.generation:
            self._publish(tree, oracle)

    # ------------------------------------------------------------------
    # bundle merge
    # ------------------------------------------------------------------
    def _merged_backward(
        self,
        oracle: AncestorOracle,
        us: np.ndarray,
        vs: np.ndarray,
        bundle: Optional[Dict[str, Any]],
        keepidx: Optional[np.ndarray],
    ) -> np.ndarray:
        """The per-pair backward verdicts, bundle-served where provable.

        Returns exactly ``oracle.is_ancestor_many(vs, us)``: bundle
        entries are used only where ``(u0, v0) == (us, vs)`` under the
        current generation — same formula, same labels, same operands —
        and every other entry is computed locally.
        """
        if (
            bundle is not None
            and keepidx is not None
            and bundle.get("gen") == self._labels_gen == self._ctx.generation
        ):
            u0 = bundle["u0"][keepidx]
            v0 = bundle["v0"][keepidx]
            valid = (us == u0) & (vs == v0)
            backward = bundle["backward"][keepidx].copy()
            invalid = ~valid
            if invalid.any():
                # A contraction moved this pair's roots since the
                # publish; re-evaluate on the current roots.
                backward[invalid] = oracle.is_ancestor_many(
                    vs[invalid], us[invalid]
                )
            self.bump("parallel-bundle-hits", int(np.count_nonzero(valid)))
            return backward
        if bundle is not None:
            self._ctx.count_stale()
        return oracle.is_ancestor_many(vs, us)

    # ------------------------------------------------------------------
    # scan overrides
    # ------------------------------------------------------------------
    def one_phase_scan(
        self,
        tree: Any,
        pairs: np.ndarray,
        *,
        bundle: Optional[Dict[str, Any]] = None,
        keepidx: Optional[np.ndarray] = None,
    ) -> Tuple[int, int, int]:
        if tree.mirror_parent is None:
            tree.enable_mirror()
        oracle = self._refresh(tree)
        us = pairs[:, 0]
        vs = pairs[:, 1]
        backward = self._merged_backward(oracle, us, vs, bundle, keepidx)
        backward_l = backward.tolist()
        stale = (tree.dirty[us] | tree.dirty[vs]).tolist()
        us_l = us.tolist()
        vs_l = vs.tolist()
        mparent = tree.mirror_parent
        mdepth = tree.mirror_depth
        mdirty = tree.mirror_dirty
        tin = self._tin_l
        tout = self._tout_l
        ds = tree.ds
        live = tree.live
        find = ds.find
        early_accepts = 0
        pushdowns = 0
        largest = 0
        fast = 0
        fallbacks = 0
        mutated = False
        for i in range(len(us_l)):
            u = us_l[i]
            v = vs_l[i]
            if stale[i] or (mutated and (mdirty[u] or mdirty[v])):
                # The hybrid dirty-suffix walk of the vector backend,
                # over list mirrors instead of numpy scalars.
                fallbacks += 1
                ru = find(u)
                rv = find(v)
                if ru == rv or not (live[ru] and live[rv]):
                    continue
                if mdepth[ru] < mdepth[rv]:
                    continue  # reshaped since the prefilter
                node = ru
                target = mdepth[rv]
                verdict = None
                while node != -1 and mdepth[node] > target:
                    if not mdirty[node]:
                        verdict = tin[rv] <= tin[node] < tout[rv]
                        break
                    node = mparent[node]
                if verdict is None:
                    verdict = node == rv
                if verdict:
                    rep = tree.contract_path(ru, rv)
                    size = ds.set_size(rep)
                    if size > largest:
                        largest = size
                    early_accepts += 1
                else:
                    tree.pushdown(ru, rv)
                    pushdowns += 1
                mutated = True
                continue
            fast += 1
            if backward_l[i]:
                rep = tree.contract_path(u, v)
                size = ds.set_size(rep)
                if size > largest:
                    largest = size
                early_accepts += 1
            else:
                tree.pushdown(u, v)
                pushdowns += 1
            mutated = True
        self.bump("kernel-fast-path", fast)
        self.bump("kernel-fallbacks", fallbacks)
        return early_accepts, pushdowns, largest

    def search_scan(
        self,
        tree: Any,
        pairs: np.ndarray,
        *,
        bundle: Optional[Dict[str, Any]] = None,
        keepidx: Optional[np.ndarray] = None,
    ) -> int:
        oracle = self._refresh(tree)
        us = pairs[:, 0]
        vs = pairs[:, 1]
        backward = self._merged_backward(
            oracle, us, vs, bundle, keepidx
        ).tolist()
        stale = (tree.dirty[us] | tree.dirty[vs]).tolist()
        us_l = us.tolist()
        vs_l = vs.tolist()
        dirty = tree.dirty
        contractions = 0
        fast = 0
        fallbacks = 0
        mutated = False
        for i in range(len(us_l)):
            u = us_l[i]
            v = vs_l[i]
            if stale[i] or (mutated and (dirty[u] or dirty[v])):
                fallbacks += 1
                ru = tree.find(u)
                rv = tree.find(v)
                if ru != rv and _hybrid_is_ancestor(tree, oracle, rv, ru):
                    tree.contract_path(ru, rv)
                    contractions += 1
                    mutated = True
                continue
            fast += 1
            if backward[i]:
                tree.contract_path(u, v)
                contractions += 1
                mutated = True
        self.bump("kernel-fast-path", fast)
        self.bump("kernel-fallbacks", fallbacks)
        return contractions

    def dfs_scan(
        self,
        tree: Any,
        batch: np.ndarray,
        deadline: Any,
        *,
        bundle: Optional[Dict[str, Any]] = None,
    ) -> int:
        oracle = self._refresh(tree)
        us = batch[:, 0].astype(np.int64)
        vs = batch[:, 1].astype(np.int64)
        if (
            bundle is not None
            and bundle.get("gen") == self._labels_gen == self._ctx.generation
        ):
            # Raw node ids, no root mapping: under a matching
            # generation the worker arrays are bit-equal to the local
            # precompute (clean entries — the only ones the fast path
            # reads — have unchanged depth and labels since publish).
            u_below = bundle["u_below"].tolist()
            anc_uv = bundle["anc_uv"].tolist()
            anc_vu = bundle["anc_vu"].tolist()
            self.bump("parallel-bundle-hits", len(u_below))
        else:
            if bundle is not None:
                self._ctx.count_stale()
            u_below = (tree.depth[us] < tree.depth[vs]).tolist()
            anc_uv = oracle.is_ancestor_many(us, vs).tolist()
            anc_vu = oracle.is_ancestor_many(vs, us).tolist()
        stale = (tree.dirty[us] | tree.dirty[vs]).tolist()
        us_l = us.tolist()
        vs_l = vs.tolist()
        dirty = tree.dirty
        parent = tree.parent
        pre = tree.pre
        reparents = 0
        fast = 0
        fallbacks = 0
        mutated = False
        for i in range(len(us_l)):
            u = us_l[i]
            v = vs_l[i]
            if u == v or parent[v] == u:
                continue
            if stale[i] or (mutated and (dirty[u] or dirty[v])):
                fallbacks += 1
                if tree.depth[u] < tree.depth[v]:
                    if _hybrid_is_ancestor(tree, oracle, u, v):
                        continue  # forward edge
                elif _hybrid_is_ancestor(tree, oracle, v, u):
                    continue  # backward edge
            else:
                fast += 1
                if u_below[i]:
                    if anc_uv[i]:
                        continue  # forward edge
                elif anc_vu[i]:
                    continue  # backward edge
            if pre[u] < pre[v]:
                tree.reparent(v, u)
                tree.assign_preorder(pivot=int(tree.pre[u]))
                reparents += 1
                mutated = True
                deadline.check()
            # backward-cross-edges are ignored.
        self.bump("kernel-fast-path", fast)
        self.bump("kernel-fallbacks", fallbacks)
        return reparents

    # ------------------------------------------------------------------
    def drain_counters(self) -> Dict[str, int]:
        """Kernel counters plus the executor's per-scan activity."""
        drained = super().drain_counters()
        drained.update(self._ctx.drain_counters())
        return drained
