"""The scan worker pool: deterministic striping, crash containment.

Batches are striped across workers round-robin by submission ordinal —
assignment is a pure function of the stripe number, so a planted
``worker-crash@K`` fault (see :mod:`repro.io.faults`) always lands on
the same worker at the same point of the run.  Results come back on
*per-worker pipes* in completion order; :meth:`WorkerPool.collect`
reorders them into submission order, which is what makes the merge
deterministic: the main process applies batch results in exactly the
order a serial run would have produced them.

Why pipes and not one shared result queue: a
``multiprocessing.Queue`` flushes ``put`` payloads from a background
feeder thread that takes the queue's *shared* write lock — a worker
dying mid-flush orphans that lock and wedges every surviving worker's
results forever (a deadlock, not a fallback).  ``Connection.send``
writes in the worker's own thread with no cross-worker lock, so a
crash can only tear the crashing worker's own channel — which reap
already treats as that worker's death.

Crash containment: when the worker owning an awaited result is found
dead, every task still pending on it is *failed* (collect returns
``None`` → the caller classifies that stripe in-process, tallied as
``parallel_fallbacks``) and the worker is respawned on the same task
queue.  A late result for an already-failed stripe is dropped — the
in-process answer is already the authoritative one.  Wrong answers are
structurally impossible; a crash only ever costs duplicated work.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection as mp_connection
import time
from typing import Any, Callable, Dict, List, Optional

from repro.parallel.worker import CRASH, worker_main

__all__ = ["WorkerPool"]

#: Seconds between liveness checks while blocked on a result.
_POLL_SECONDS = 0.05


class WorkerPool:
    """A fixed set of forked scan workers (see module docstring)."""

    def __init__(self, workers: int, arena_name: Optional[str], n: int,
                 injector: Optional[Any] = None,
                 on_fallback: Optional[Callable[[int], None]] = None) -> None:
        if workers <= 0:
            raise ValueError("a WorkerPool needs at least one worker")
        self.workers = workers
        self._arena_name = arena_name
        self._n = n
        self._injector = injector
        self._on_fallback = on_fallback
        # fork: workers inherit the page cache-warm interpreter and
        # attach the already-created arena by name.
        self._mp = multiprocessing.get_context("fork")
        # The dispatcher ships at most one batch of lookahead per worker
        # beyond the one in flight, so a small fixed bound never blocks;
        # it exists so a stuck worker surfaces as back-pressure (a full
        # queue) rather than unbounded pickled-batch growth (THR004).
        self._tasks: List[Any] = [
            self._mp.Queue(maxsize=8) for _ in range(workers)
        ]
        self._result_conns: List[Any] = [None] * workers
        self._procs: List[Any] = [self._spawn(wid) for wid in range(workers)]
        self._pending: Dict[int, int] = {}  # seq -> worker id
        self._done: Dict[int, Optional[Dict[str, Any]]] = {}
        self._stripe = 0
        #: Lifetime tallies (the context turns these into span counters
        #: and ``repro_parallel_*`` metrics).
        self.batches = 0
        self.fallbacks = 0
        self.crashes = 0
        self.busy_seconds = 0.0
        self.wait_seconds = 0.0

    def _spawn(self, wid: int) -> Any:
        recv_end, send_end = self._mp.Pipe(duplex=False)
        proc = self._mp.Process(
            target=worker_main,
            args=(wid, self._arena_name, self._n, self._tasks[wid],
                  send_end),
            daemon=True,
        )
        proc.start()
        # The child inherited its copy across fork; dropping ours lets
        # a clean worker exit surface as EOF on the recv end.
        send_end.close()
        self._result_conns[wid] = recv_end
        return proc

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Stripes submitted but not yet collected."""
        return len(self._pending)

    def submit(self, seq: int, kind: str, payload: Dict[str, Any]) -> None:
        """Ship one batch; assignment is ``stripe % workers``."""
        wid = self._stripe % self.workers
        stripe = self._stripe
        self._stripe += 1
        self.batches += 1
        injector = self._injector
        if injector is not None and injector.take_worker_crash(stripe):
            # The sentinel is queued *ahead* of the task, so the worker
            # dies before computing it — detection, not simulation.
            self._tasks[wid].put(CRASH)
        self._pending[seq] = wid
        self._tasks[wid].put((seq, kind, payload))

    def collect(self, seq: int) -> Optional[Dict[str, Any]]:
        """Block until stripe ``seq`` resolves; ``None`` means fallback."""
        if seq in self._done:
            return self._done.pop(seq)
        if seq not in self._pending:
            return None
        started = time.perf_counter()
        try:
            while seq in self._pending:
                ready = mp_connection.wait(
                    list(self._result_conns), timeout=_POLL_SECONDS
                )
                if not ready:
                    owner = self._pending.get(seq)
                    if owner is not None and not self._procs[owner].is_alive():
                        self._reap(owner)
                    continue
                for conn in ready:
                    try:
                        wid = self._result_conns.index(conn)
                    except ValueError:
                        # A reap earlier in this round already replaced
                        # this channel; the readiness is stale.
                        continue
                    try:
                        _wid, rseq, out, busy = conn.recv()
                    except (EOFError, OSError):
                        # The owner died mid-send (or exited): a torn
                        # message only ever tears its own channel.
                        self._reap(wid)
                        continue
                    self.busy_seconds += busy
                    if rseq in self._pending:
                        del self._pending[rseq]
                        self._done[rseq] = out
                    # else: late result for a stripe already failed by
                    # a crash — the in-process answer won; drop it.
        finally:
            self.wait_seconds += time.perf_counter() - started
        return self._done.pop(seq)

    def _reap(self, wid: int) -> None:
        """Fail everything pending on a dead worker; respawn it."""
        failed = sorted(
            seq for seq, owner in self._pending.items() if owner == wid
        )
        for seq in failed:
            del self._pending[seq]
            self._done[seq] = None
            self.fallbacks += 1
            if self._on_fallback is not None:
                self._on_fallback(seq)
        self.crashes += 1
        self._procs[wid].join(timeout=1.0)
        # Drop the dead worker's channel unread: any complete results
        # still in it belong to seqs failed above — the in-process
        # recompute is authoritative.  _spawn installs a fresh pipe.
        try:
            self._result_conns[wid].close()
        except OSError:  # pragma: no cover - already torn down
            pass
        # Same task queue on purpose: tasks the dead worker never
        # consumed are recomputed by the respawn; their late results
        # are dropped.
        self._procs[wid] = self._spawn(wid)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker and release the queues."""
        for q in self._tasks:
            try:
                q.put(None)
            except (OSError, ValueError):  # pragma: no cover
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - wedged worker
                proc.terminate()
                proc.join(timeout=1.0)
        for q in self._tasks:
            q.cancel_join_thread()
            q.close()
        for conn in self._result_conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        self._pending.clear()
        self._done.clear()
