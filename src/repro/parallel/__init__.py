"""Multi-process sharded edge scans with a deterministic merge.

The paper's scans are I/O-streamed but CPU-bound once the page cache
and prefetcher hide latency; PR 4 made the per-batch work array-shaped,
and this package forks it across worker processes: the O(|V|) resident
snapshot (Euler labels, depths, root map, liveness) is published
zero-copy through ``multiprocessing.shared_memory``, the O(|E|) edge
batches are striped round-robin over the pool, and results are merged
back in batch order under proofs of equality to the in-process
computation — so partitions, iteration counts and counted I/O are
**byte-identical to a serial run at any worker count** (the
bench-regression gate re-runs its golden cases with ``--workers N`` and
demands identical fingerprints).

Entry points: ``SCCAlgorithm.run(..., workers=N)`` /
``compute_sccs(..., workers=N)`` / ``repro-scc compute --workers N``
build a :class:`ParallelContext` and swap the vector kernels for
:class:`ParallelKernels`; :func:`repro.io.extsort.external_sort_edges`
takes ``workers=`` for parallel run formation.  See docs/parallelism.md
for the sharding model and the determinism argument.
"""

from repro.parallel.context import ParallelContext
from repro.parallel.kernels import ParallelKernels
from repro.parallel.labeler import vector_relabel
from repro.parallel.pool import WorkerPool
from repro.parallel.shm import SnapshotArena

__all__ = [
    "ParallelContext",
    "ParallelKernels",
    "SnapshotArena",
    "WorkerPool",
    "vector_relabel",
]
