"""The shared-memory snapshot arena: zero-copy state for scan workers.

One :class:`SnapshotArena` holds the per-node arrays a scan worker
needs to classify edges — Euler labels ``tin``/``tout``, ``depth``, the
frozen supernode ``root`` map and the ``live`` mask — in a single
``multiprocessing.shared_memory`` segment that every worker process
attaches read-only (zero copies per batch; only the O(|E|) edge batches
travel through queues).

The segment is double-buffered with a generation header:

* the *owner* (the run's main process) writes the next snapshot into
  the staging buffer (``stage()``) and then flips the generation
  (``commit()``) — buffer ``gen & 1`` is always the committed one;
* a *reader* takes ``(gen, views) = snapshot()``, computes, and
  re-reads the generation: if it moved, a publish raced the read and
  the result is discarded (the main process then classifies that batch
  in-process — a determinism fallback, never a wrong answer).

Lifetime: the owner creates the segment and **must** unlink it; both
:meth:`destroy` and the context-manager exit do so in a ``finally``
path (static rule THR003 flags unlink-less segments).  Readers only
``close()``.  Segments are sized ``16 + 2 × (33·n rounded up)`` bytes —
for the paper's billion-node graphs this is the same O(|V|) budget the
resident tree arrays already occupy.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["SnapshotArena"]

#: int64 per-node slots, in layout order; ``live`` (uint8) follows them.
INT_SLOTS: Tuple[str, ...] = ("tin", "tout", "depth", "root")

_HEADER_BYTES = 16  # int64 generation + int64 n


def _buffer_stride(n: int) -> int:
    """Bytes per snapshot buffer, padded so int64 slots stay aligned."""
    return 8 * len(INT_SLOTS) * n + ((n + 7) // 8) * 8


class SnapshotArena:
    """Double-buffered shared per-node snapshot (see module docstring)."""

    def __init__(self, n: int, *, name: Optional[str] = None,
                 create: bool = False) -> None:
        self.n = int(n)
        self._owner = create
        size = _HEADER_BYTES + 2 * _buffer_stride(self.n)
        if create:
            self.shm: Optional[shared_memory.SharedMemory] = (
                shared_memory.SharedMemory(create=True, size=size)
            )
        else:
            if name is None:
                raise ValueError("attaching to an arena requires its name")
            self.shm = shared_memory.SharedMemory(name=name)
        buf = self.shm.buf
        self._header = np.frombuffer(buf, dtype=np.int64, count=2)
        if create:
            self._header[0] = 0
            self._header[1] = self.n
        elif int(self._header[1]) != self.n:
            sized_for = int(self._header[1])
            # Release the header view before raising, or the dangling
            # buffer export keeps the segment mapping alive forever.
            self.close()
            raise ValueError(
                f"arena {name!r} sized for n={sized_for}, "
                f"expected n={self.n}"
            )
        self._views: List[Dict[str, np.ndarray]] = []
        stride = _buffer_stride(self.n)
        for index in range(2):
            offset = _HEADER_BYTES + index * stride
            views: Dict[str, np.ndarray] = {}
            for slot in INT_SLOTS:
                views[slot] = np.frombuffer(
                    buf, dtype=np.int64, count=self.n, offset=offset
                )
                offset += 8 * self.n
            views["live"] = np.frombuffer(
                buf, dtype=np.uint8, count=self.n, offset=offset
            )
            self._views.append(views)

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        assert self.shm is not None
        return self.shm.name

    @property
    def generation(self) -> int:
        """The committed snapshot generation (0 = nothing published)."""
        assert self._header is not None
        return int(self._header[0])

    def stage(self) -> Dict[str, np.ndarray]:
        """The buffer views the *next* :meth:`commit` will publish."""
        return self._views[(self.generation + 1) & 1]

    def commit(self) -> int:
        """Flip the staged buffer live; returns the new generation."""
        assert self._header is not None
        self._header[0] += 1
        return int(self._header[0])

    def snapshot(self) -> Tuple[int, Dict[str, np.ndarray]]:
        """Reader side: ``(generation, views)`` of the committed buffer.

        Callers must re-check :attr:`generation` after reading and
        discard their result on a mismatch (a publish raced them).
        """
        gen = self.generation
        return gen, self._views[gen & 1]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop the numpy views and detach from the segment."""
        self._views = []
        self._header = None  # type: ignore[assignment]
        if self.shm is not None:
            try:
                self.shm.close()
            except BufferError:  # pragma: no cover - stray external view
                pass

    def destroy(self) -> None:
        """Owner-side teardown: detach *and* unlink the segment."""
        try:
            self.close()
        finally:
            if self._owner and self.shm is not None:
                try:
                    self.shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
                self.shm = None

    def __enter__(self) -> "SnapshotArena":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._owner:
            self.destroy()
        else:
            self.close()
