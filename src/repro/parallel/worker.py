"""The worker-process loop and its pure per-batch compute kinds.

A worker owns nothing but a read-only attachment to the run's
:class:`~repro.parallel.shm.SnapshotArena` and a pair of queues.  Every
task is a pure function of ``(committed snapshot, batch payload)`` —
workers never mutate shared state, never touch the counted
:class:`~repro.io.counter.IOCounter`, and never decide anything: the
main process alone applies decisions, in batch order, after verifying
each result is provably equal to what it would have computed itself
(see :mod:`repro.parallel.kernels`).  A worker that dies — or returns a
result torn by a concurrent publish — simply costs a fallback, never an
answer.

Compute kinds:

``classify``
    Map raw endpoints through the published ``root`` array and answer
    the backward-edge interval test on the mapped pair (1P-SCC
    classification and 2P Tree-Search share this shape).
``dfs``
    Raw-endpoint ancestor tests for the DFS forward-cross-edge loop
    (no root mapping — the DFS forest is over original node ids).
``map``
    Frozen-map rewrite filtering: map endpoints through ``root``, drop
    self-loops (and, when ``check_live``, dead endpoints).  Used by the
    1P/1PB graph-reduction scans and the EM-SCC rewrite scan.
``sort``
    Pack-and-sort one run of edges for the parallel external sort
    (:func:`repro.io.extsort.external_sort_edges`); needs no arena.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Optional

import numpy as np

from repro.parallel.shm import SnapshotArena

__all__ = ["CRASH", "worker_main"]

#: Queue sentinel making the worker exit hard (fault injection only).
CRASH = "__worker-crash__"


def _classify(views: Dict[str, np.ndarray], payload: Dict[str, Any],
              gen: int) -> Dict[str, Any]:
    batch = payload["batch"]
    tin = views["tin"]
    tout = views["tout"]
    root = views["root"]
    u0 = root[batch[:, 0].astype(np.int64)]
    v0 = root[batch[:, 1].astype(np.int64)]
    backward = (tin[v0] <= tin[u0]) & (tin[u0] < tout[v0])
    return {"gen": gen, "u0": u0, "v0": v0, "backward": backward}


def _dfs(views: Dict[str, np.ndarray], payload: Dict[str, Any],
         gen: int) -> Dict[str, Any]:
    batch = payload["batch"]
    us = batch[:, 0].astype(np.int64)
    vs = batch[:, 1].astype(np.int64)
    tin = views["tin"]
    tout = views["tout"]
    depth = views["depth"]
    return {
        "gen": gen,
        "u_below": depth[us] < depth[vs],
        "anc_uv": (tin[us] <= tin[vs]) & (tin[vs] < tout[us]),
        "anc_vu": (tin[vs] <= tin[us]) & (tin[us] < tout[vs]),
    }


def _map(views: Dict[str, np.ndarray], payload: Dict[str, Any],
         gen: int) -> Dict[str, Any]:
    batch = payload["batch"]
    root = views["root"]
    us = root[batch[:, 0].astype(np.int64)]
    vs = root[batch[:, 1].astype(np.int64)]
    keep = us != vs
    if payload["check_live"]:
        live = views["live"]
        keep &= (live[us] != 0) & (live[vs] != 0)
    return {"gen": gen, "us": us[keep], "vs": vs[keep]}


def _sort(payload: Dict[str, Any]) -> Dict[str, Any]:
    from repro.io.extsort import _pack

    keys = np.sort(_pack(payload["batch"], payload["target_major"]),
                   kind="stable")
    return {"gen": -1, "keys": keys}


def _compute(arena: Optional[SnapshotArena], kind: str,
             payload: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    if kind == "sort":
        return _sort(payload)
    assert arena is not None
    gen, views = arena.snapshot()
    if kind == "classify":
        out = _classify(views, payload, gen)
    elif kind == "dfs":
        out = _dfs(views, payload, gen)
    elif kind == "map":
        out = _map(views, payload, gen)
    else:  # pragma: no cover - submit() only ships known kinds
        raise ValueError(f"unknown worker task kind {kind!r}")
    if arena.generation != gen:
        # A publish raced this read; the views may have been torn.
        return None
    return out


def worker_main(worker_id: int, arena_name: Optional[str], n: int,
                tasks: Any, results: Any) -> None:
    """Process entry point: drain ``tasks`` until the ``None`` sentinel.

    ``results`` is this worker's private pipe end; results are
    ``(worker_id, seq, out_or_None, busy_seconds)`` tuples, and ``out``
    is ``None`` when the compute raced a publish or raised (a torn read
    can surface as an IndexError — the main process recomputes that
    batch in-process either way).  ``Connection.send`` runs in this
    thread — no feeder thread, no lock shared with other workers — so
    ``os._exit`` below can at worst tear *this* channel, never wedge a
    sibling (see the :mod:`~repro.parallel.pool` module docstring).
    """
    arena = (SnapshotArena(n, name=arena_name)
             if arena_name is not None else None)
    try:
        while True:
            task = tasks.get()
            if task is None:
                break
            if task == CRASH:
                # Planted fault: die the way a real crash does, so the
                # pool's liveness detection is what gets exercised.
                os._exit(3)
            seq, kind, payload = task
            started = time.perf_counter()
            try:
                out = _compute(arena, kind, payload)
            except Exception:
                out = None
            results.send((worker_id, seq, out,
                          time.perf_counter() - started))
    finally:
        if arena is not None:
            arena.close()
        try:
            results.close()
        except OSError:  # pragma: no cover - channel already gone
            pass
