"""Per-run orchestration of the parallel scan executor.

A :class:`ParallelContext` is created by ``SCCAlgorithm.run(...,
workers=N)`` and owns the two process-level resources — the
:class:`~repro.parallel.shm.SnapshotArena` and the
:class:`~repro.parallel.pool.WorkerPool` — for the whole run (workers
are forked once, before any scan threads exist, and survive across
iterations).  The algorithms talk to it through two iterator wrappers:

* :meth:`classify` — wraps an edge-batch iterator for a classification
  scan (1P classification, 2P Tree-Search, DFS), shipping each batch to
  the pool ahead of consumption and yielding ``(batch, bundle)`` pairs
  *in batch order*.  ``bundle`` is the worker's precomputed verdict
  arrays or ``None`` (crashed worker / torn read) — the kernels treat
  ``None`` exactly like a serial batch.
* :meth:`map_frozen` — wraps a frozen-map rewrite scan (1P/1PB
  reduction, EM rewrite): publishes the frozen ``root``/``live``/
  ``depth`` arrays once, then yields ``(batch, mapped)`` pairs where
  ``mapped`` holds the filtered supernode endpoints.

Accounting transparency: batches are *read* (and counted, and
sim-disk-slept) by the main process inside ``next()`` on the wrapped
iterator — workers never touch an :class:`~repro.io.counter.IOCounter`
— so the read sequence, block counts and fault-plan ordinals are
byte-identical to a serial scan; the executor only reads a small
constant number of batches ahead.  See docs/parallelism.md for the full
determinism argument.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterable, Iterator, Optional, Tuple

import numpy as np

from repro.parallel.pool import WorkerPool
from repro.parallel.shm import SnapshotArena

__all__ = ["ParallelContext"]

Bundle = Optional[Dict[str, Any]]


class ParallelContext:
    """Run-scoped arena + pool + deterministic merge (module docstring)."""

    def __init__(self, workers: int, num_nodes: int,
                 metrics: Optional[Any] = None,
                 injector: Optional[Any] = None) -> None:
        self.workers = workers
        self.n = num_nodes
        self._seq = 0
        self._stale = 0
        self._publishes = 0
        self._drained: Dict[str, float] = {}
        self._metrics = metrics
        self._fallback_counter: Optional[Any] = None
        self._batch_counter: Optional[Any] = None
        self._queue_gauge: Optional[Any] = None
        self.arena = SnapshotArena(num_nodes, create=True)
        try:
            self.pool = WorkerPool(
                workers, self.arena.name, num_nodes, injector=injector,
                on_fallback=self._count_fallback,
            )
        except BaseException:
            self.arena.destroy()
            raise
        if metrics is not None:
            metrics.gauge(
                "repro_parallel_workers", "scan worker processes"
            ).set(workers)
            self._queue_gauge = metrics.gauge(
                "repro_parallel_queue_depth",
                "batches shipped to workers and not yet merged")
            self._batch_counter = metrics.counter(
                "repro_parallel_batches_total",
                "edge batches shipped to scan workers")
            self._fallback_counter = metrics.counter(
                "repro_parallel_fallbacks_total",
                "stripes classified in-process after a worker crash")
            metrics.register_callback(
                "repro_parallel_worker_busy_seconds",
                lambda: self.pool.busy_seconds,
                "cumulative worker compute time (utilization = this / "
                "(workers × wall))")
            metrics.register_callback(
                "repro_parallel_merge_wait_seconds",
                lambda: self.pool.wait_seconds,
                "main-process time blocked waiting for a worker result")

    def _count_fallback(self, seq: int) -> None:
        if self._fallback_counter is not None:
            self._fallback_counter.inc()

    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        return self.arena.generation

    @property
    def fallbacks(self) -> int:
        """Stripes recomputed in-process after worker crashes."""
        return self.pool.fallbacks

    @property
    def stale_bundles(self) -> int:
        """Bundles discarded for generation mismatch (never wrong)."""
        return self._stale

    def note_publish(self) -> None:
        """Tally a snapshot publish (called by the kernel publisher)."""
        self._publishes += 1

    def count_stale(self) -> None:
        """Tally a bundle discarded against a newer snapshot."""
        self._stale += 1

    # ------------------------------------------------------------------
    def _ship(self, iterator: Iterator[np.ndarray], kind: str,
              payload_extra: Dict[str, Any],
              pending: "deque[Tuple[int, np.ndarray]]") -> bool:
        try:
            batch = next(iterator)
        except StopIteration:
            return False
        seq = self._seq
        self._seq += 1
        payload = {"batch": batch}
        payload.update(payload_extra)
        self.pool.submit(seq, kind, payload)
        pending.append((seq, batch))
        if self._batch_counter is not None:
            self._batch_counter.inc()
        if self._queue_gauge is not None:
            self._queue_gauge.set(len(pending))
        return True

    def _stream(self, batches: Iterable[np.ndarray], kind: str,
                payload_extra: Dict[str, Any]
                ) -> Iterator[Tuple[np.ndarray, Bundle]]:
        iterator = iter(batches)
        pending: "deque[Tuple[int, np.ndarray]]" = deque()
        # Bounded read-ahead: enough to keep every worker fed without
        # holding more than O(workers) batches in flight.
        lookahead = max(2, 2 * self.workers)
        for _ in range(lookahead):
            if not self._ship(iterator, kind, payload_extra, pending):
                break
        while pending:
            seq, batch = pending.popleft()
            bundle = self.pool.collect(seq)
            if self._queue_gauge is not None:
                self._queue_gauge.set(len(pending))
            yield batch, bundle
            self._ship(iterator, kind, payload_extra, pending)

    def classify(self, batches: Iterable[np.ndarray], kind: str = "classify",
                 publish: Optional[Any] = None
                 ) -> Iterator[Tuple[np.ndarray, Bundle]]:
        """Fan a classification scan out to the pool (see module doc).

        ``publish`` (typically ``kernel.publish_snapshot``) runs once
        before the first batch ships, so workers see the snapshot the
        scan starts under; mid-scan rebuilds republish and in-flight
        bundles are discarded by their stamped generation.
        """
        if publish is not None:
            publish()
        return self._stream(batches, kind, {})

    def map_frozen(self, batches: Iterable[np.ndarray], *,
                   root: np.ndarray, live: Optional[np.ndarray],
                   depth: Optional[np.ndarray] = None,
                   check_live: bool = True
                   ) -> Iterator[Tuple[np.ndarray, Bundle]]:
        """Fan a frozen-map rewrite scan out to the pool.

        ``root`` must be the fully-resolved representative of *every*
        node under the scan's frozen union-find, so a worker lookup is
        one gather.  The tree/union-find must not mutate for the
        duration of the scan (true of every rewrite scan: 1P/1PB
        reduction and the EM rewrite); the stamped generation guards
        the remaining torn-read window.
        """
        stage = self.arena.stage()
        np.copyto(stage["root"], root)
        if depth is not None:
            np.copyto(stage["depth"], depth)
        if live is not None:
            np.copyto(stage["live"], live, casting="unsafe")
        else:
            stage["live"].fill(1)
        gen = self.arena.commit()
        self._publishes += 1

        def validated() -> Iterator[Tuple[np.ndarray, Bundle]]:
            for batch, bundle in self._stream(
                batches, "map", {"check_live": check_live}
            ):
                if bundle is not None and bundle.get("gen") != gen:
                    self.count_stale()
                    bundle = None
                yield batch, bundle

        return validated()

    # ------------------------------------------------------------------
    def drain_counters(self) -> Dict[str, int]:
        """Per-scan deltas of the lifetime tallies, span-counter shaped.

        The kernels merge this into their own ``drain_counters`` so
        every scan span carries the executor's activity
        (``parallel-batches``, ``parallel-fallbacks``,
        ``parallel-stale``, ``parallel-publishes``, ``parallel-busy-ms``,
        ``parallel-wait-ms``).  ``parallel-workers`` is constant for the
        run, so it surfaces exactly once — in the first span that drains
        — and summing the per-span deltas over a whole trace recovers
        the worker count (``repro-scc report`` relies on this to compute
        parallel efficiency without trace-metadata plumbing).
        """
        totals = {
            "parallel-workers": float(self.pool.workers),
            "parallel-batches": float(self.pool.batches),
            "parallel-fallbacks": float(self.pool.fallbacks),
            "parallel-stale": float(self._stale),
            "parallel-publishes": float(self._publishes),
            "parallel-busy-ms": self.pool.busy_seconds * 1000.0,
            "parallel-wait-ms": self.pool.wait_seconds * 1000.0,
        }
        drained: Dict[str, int] = {}
        for key, total in totals.items():
            delta = int(total - self._drained.get(key, 0.0))
            if delta:
                drained[key] = delta
                self._drained[key] = self._drained.get(key, 0.0) + delta
        return drained

    def close(self) -> None:
        """Stop the workers and unlink the arena (run ``finally`` path)."""
        try:
            self.pool.close()
        finally:
            if self._metrics is not None:
                self._metrics.unregister_callback(
                    "repro_parallel_worker_busy_seconds")
                self._metrics.unregister_callback(
                    "repro_parallel_merge_wait_seconds")
            self.arena.destroy()
