"""Vectorised Euler-tour relabeling for the parallel snapshot publisher.

:meth:`repro.kernels.oracle.AncestorOracle._rebuild` walks the live
forest with an explicit-stack Python DFS — O(|V|) interpreter work per
rebuild.  The parallel executor rebuilds *and* republishes the snapshot
to shared memory on every epoch change, so the rebuild itself has to be
array-shaped.  :func:`vector_relabel` produces interval labels in a
handful of numpy passes:

1. bucket live nodes by depth (one stable argsort — depths are small
   integers, so this is effectively a counting sort);
2. bottom-up subtree sizes with ``np.add.at`` per level;
3. sibling offsets from one global ``(parent, id)`` lexsort — the
   exclusive cumulative sum of sibling sizes within each parent group,
   which is each child's entry delay after its parent;
4. top-down ``tin`` accumulation per level; ``tout = tin + size``.

The DFS order this encodes (children visited in ascending node id) can
differ from the recursive order of ``_rebuild`` (insertion-ordered
children sets), but that is irrelevant by design: the oracle's only
contract is the interval property ``is_ancestor(a, d) ⇔
tin[a] <= tin[d] < tout[a]``, which holds for *any* valid DFS of the
forest because the counter advances on entry only.  Every consumer of
the labels asks ancestor queries, never order queries, so decisions —
and therefore partitions, iterations and counted I/O — are unchanged
(pinned by ``tests/test_parallel.py`` and the ``--workers`` re-runs of
the bench-regression gate).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.constants import VIRTUAL_ROOT

__all__ = ["vector_relabel"]


def vector_relabel(
    parent: np.ndarray,
    depth: np.ndarray,
    live: Optional[np.ndarray],
    tin: np.ndarray,
    tout: np.ndarray,
) -> None:
    """Fill ``tin``/``tout`` with Euler-tour interval labels.

    ``parent``/``depth`` describe the forest (``VIRTUAL_ROOT`` parents
    are roots, every child's depth is its parent's plus one), ``live``
    masks the nodes to label (``None`` labels everything).  Dead nodes
    get ``tin = tout = -1``, matching the oracle's rebuild.
    """
    n = parent.shape[0]
    tin.fill(-1)
    tout.fill(-1)
    if live is None:
        idx = np.arange(n, dtype=np.int64)
        par = parent
    else:
        idx = np.flatnonzero(live)
        # Dead parents never receive size mass: only live nodes are
        # iterated, and a live node's parent is live by invariant.
        par = np.where(live, parent, VIRTUAL_ROOT)
    if idx.size == 0:
        return
    d = depth[idx]
    mind = int(d.min())
    maxd = int(d.max())
    order = np.argsort(d, kind="stable")
    nodes_by_depth = idx[order]
    d_sorted = d[order]
    starts = np.searchsorted(d_sorted, np.arange(mind, maxd + 2))

    def level(lev: int) -> np.ndarray:
        return nodes_by_depth[starts[lev - mind]:starts[lev - mind + 1]]

    # Bottom-up subtree sizes.
    size = np.ones(n, dtype=np.int64)
    for lev in range(maxd, mind, -1):
        nodes = level(lev)
        if nodes.size:
            np.add.at(size, par[nodes], size[nodes])

    # Sibling offsets: within each parent group (roots group under
    # VIRTUAL_ROOT, which sorts first), a child's entry delay is one
    # (the parent's own entry) plus the sizes of its earlier siblings.
    p = par[idx]
    sib_order = np.lexsort((idx, p))
    sid = idx[sib_order]
    sp = p[sib_order]
    ssz = size[sid]
    cs = np.cumsum(ssz) - ssz  # exclusive cumulative sum
    group_start = np.ones(sid.size, dtype=bool)
    group_start[1:] = sp[1:] != sp[:-1]
    base = np.zeros(sid.size, dtype=np.int64)
    base[group_start] = cs[group_start]
    np.maximum.accumulate(base, out=base)
    off = np.empty(n, dtype=np.int64)
    off[sid] = cs - base + 1

    # Roots have no parent entry: tin is just the earlier-roots total.
    roots = level(mind)
    tin[roots] = off[roots] - 1
    for lev in range(mind + 1, maxd + 1):
        nodes = level(lev)
        if nodes.size:
            tin[nodes] = tin[par[nodes]] + off[nodes]
    tout[idx] = tin[idx] + size[idx]
