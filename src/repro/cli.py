"""Command-line interface: generate, inspect, and decompose graphs.

Installed as the ``repro-scc`` console script::

    repro-scc generate --kind webspam --scale 1e-4 --out web.rgr
    repro-scc info web.rgr
    repro-scc compute web.rgr --algorithm 1PB-SCC --labels-out labels.npy
    repro-scc compute web.rgr --algorithm 2P-SCC --trace run.jsonl
    repro-scc compute web.rgr --metrics run.metrics.jsonl --heartbeat 5
    repro-scc report run.jsonl
    repro-scc trace diff baseline.jsonl candidate.jsonl
    repro-scc metrics check run.metrics.jsonl --prom run.metrics.jsonl.prom
    repro-scc compare web.rgr --time-limit 60
    repro-scc lint src/

Graphs are stored in the :mod:`repro.graph.storage` layout (binary
edges + ``.meta`` sidecar); ``compute`` runs semi-externally on the
stored file itself, so the reported block I/Os are real.

Diagnostics: ``-v`` enables INFO logging, ``-vv`` DEBUG; the
``REPRO_LOG`` environment variable (e.g. ``REPRO_LOG=debug``) sets the
same levels without touching the command line.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from typing import List, Optional

import numpy as np

from repro.bench.harness import run_one
from repro.bench.reporting import format_table
from repro.core import ALGORITHMS
from repro.exceptions import AlgorithmTimeout, NonTermination, ReproError
from repro.io.faults import SimulatedCrash
from repro.graph.io_text import read_edge_list
from repro.graph.storage import (
    load_graph,
    open_disk_graph,
    read_metadata,
    save_graph,
    write_metadata,
)
from repro.io.memory import MemoryModel
from repro.workloads.params import params_for_class
from repro.workloads.realworld import (
    cit_patents_like,
    citeseerx_like,
    go_uniprot_like,
    webspam_like,
)

GENERATORS = {
    "cit-patents": lambda scale, seed: cit_patents_like(scale, seed),
    "go-uniprot": lambda scale, seed: go_uniprot_like(scale, seed),
    "citeseerx": lambda scale, seed: citeseerx_like(scale, seed),
    "webspam": lambda scale, seed: webspam_like(scale, seed).graph,
    "massive": lambda scale, seed: params_for_class(
        "massive", scale=scale, seed=seed
    ).build().graph,
    "large": lambda scale, seed: params_for_class(
        "large", scale=scale, seed=seed
    ).build().graph,
    "small": lambda scale, seed: params_for_class(
        "small", scale=scale, seed=seed
    ).build().graph,
}


def _configure_logging(verbosity: int) -> None:
    """Set up stderr logging from ``-v`` flags and ``REPRO_LOG``.

    ``-v`` means INFO, ``-vv`` (or more) DEBUG; the ``REPRO_LOG``
    environment variable (``debug``/``info``/``warning``/...) provides a
    floor, so ``REPRO_LOG=debug repro-scc ...`` is equivalent to
    ``-vv`` without editing the command line.
    """
    level = logging.WARNING
    if verbosity == 1:
        level = logging.INFO
    elif verbosity >= 2:
        level = logging.DEBUG
    env = os.environ.get("REPRO_LOG", "").strip().upper()
    if env:
        env_level = logging.getLevelName(env)
        if isinstance(env_level, int):
            level = min(level, env_level)
    logging.basicConfig(
        level=level,
        stream=sys.stderr,
        format="%(levelname)s %(name)s: %(message)s",
    )
    logging.getLogger("repro").setLevel(level)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-scc",
        description="Semi-external SCC computation (SIGMOD'13 reproduction)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="-v for INFO logging, -vv for DEBUG (see also REPRO_LOG)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a workload graph")
    gen.add_argument("--kind", choices=sorted(GENERATORS), required=True)
    gen.add_argument("--scale", type=float, default=1e-4,
                     help="fraction of the paper's dataset size")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output graph path")

    imp = sub.add_parser("import", help="import a SNAP-style text edge list")
    imp.add_argument("edge_list", help="text file with 'u v' lines")
    imp.add_argument("--out", required=True)
    imp.add_argument("--num-nodes", type=int, default=None)

    info = sub.add_parser("info", help="show stored-graph statistics")
    info.add_argument("graph", help="stored graph path")
    info.add_argument("--full", action="store_true",
                      help="load the graph and compute degree statistics")

    compute = sub.add_parser("compute", help="compute all SCCs")
    compute.add_argument("graph")
    compute.add_argument("--algorithm", choices=sorted(ALGORITHMS),
                         default="1PB-SCC")
    compute.add_argument("--time-limit", type=float, default=None)
    compute.add_argument("--memory-factor", type=float, default=1.0,
                         help="multiple of the paper's default M")
    compute.add_argument("--block-size", type=int, default=64 * 1024)
    compute.add_argument("--labels-out", default=None,
                         help="write per-node SCC labels as .npy")
    compute.add_argument("--trace", default=None, metavar="PATH",
                         help="write a JSONL run trace (see 'report')")
    compute.add_argument("--metrics", default=None, metavar="PATH",
                         help="sample live metrics to a JSONL snapshot "
                              "file (plus PATH.prom in Prometheus text "
                              "format); counted I/O is unchanged")
    compute.add_argument("--metrics-interval", type=float, default=1.0,
                         metavar="SECS",
                         help="sampler cadence in seconds (default 1.0)")
    compute.add_argument("--metrics-port", type=int, default=None,
                         metavar="PORT",
                         help="serve GET /metrics (Prometheus text "
                              "format) on 127.0.0.1:PORT for the "
                              "duration of the run (0 picks a free port)")
    compute.add_argument("--heartbeat", type=float, default=0.0,
                         metavar="SECS",
                         help="print a live progress/ETA line to stderr "
                              "every SECS seconds, projecting completion "
                              "against the paper's per-iteration scan "
                              "budget (0 disables)")
    compute.add_argument("--prefetch-depth", type=int, default=0, metavar="N",
                         help="pipeline edge scans through a background "
                              "prefetcher N blocks deep (0 disables; "
                              "counted I/O is unchanged)")
    compute.add_argument("--cache-blocks", type=int, default=0, metavar="N",
                         help="LRU page cache over N decoded blocks; hits "
                              "skip disk and are tallied as cache_hits, "
                              "never as block reads (0 disables)")
    compute.add_argument("--kernels", choices=["vector", "scalar"],
                         default="vector",
                         help="scan-kernel backend: 'vector' classifies "
                              "edge batches against an Euler-tour tree "
                              "snapshot, 'scalar' runs the paper-literal "
                              "per-edge loops; results and counted I/O "
                              "are identical either way")
    compute.add_argument("--workers", type=int, default=0, metavar="N",
                         help="stripe edge-scan batches across N forked "
                              "worker processes (0 disables); partitions, "
                              "iterations and counted I/O are "
                              "byte-identical to a serial run")
    compute.add_argument("--profile", default=None, metavar="PATH",
                         help="profile the run with cProfile and dump "
                              "pstats data to PATH (inspect with "
                              "'python -m pstats PATH')")
    compute.add_argument("--fault-plan", default=None, metavar="SPEC",
                         help="inject deterministic I/O faults, e.g. "
                              "'seed=7;read-error@3x2;crash@scan:1' "
                              "(falls back to REPRO_FAULT_PLAN; a "
                              "simulated crash exits with code 4)")
    compute.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                         help="save an O(|V|) resume snapshot to "
                              "DIR/checkpoint.npz at every edge-scan "
                              "boundary (removed on success)")
    compute.add_argument("--resume", action="store_true",
                         help="resume from an existing checkpoint in "
                              "--checkpoint-dir instead of starting over")

    compare = sub.add_parser("compare", help="run several algorithms")
    compare.add_argument("graph")
    compare.add_argument("--algorithms", nargs="+",
                         default=["1PB-SCC", "1P-SCC", "2P-SCC"])
    compare.add_argument("--time-limit", type=float, default=60.0)

    condense = sub.add_parser(
        "condense", help="build the SCC condensation on disk"
    )
    condense.add_argument("graph")
    condense.add_argument("--out", required=True,
                          help="output path for the condensed graph")
    condense.add_argument("--labels", default=None,
                          help=".npy labels (computed with 1PB-SCC if omitted)")
    condense.add_argument("--keep-multiplicities", action="store_true")

    topo = sub.add_parser(
        "toposort", help="topologically sort the condensation"
    )
    topo.add_argument("graph")
    topo.add_argument("--labels", default=None,
                      help=".npy labels (computed with 1PB-SCC if omitted)")
    topo.add_argument("--out", default=None,
                      help="write per-node layers as .npy")

    serve = sub.add_parser(
        "serve",
        help="run the SCC query daemon (see docs/service.md)",
    )
    serve.add_argument("graph", help="stored graph to serve")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 picks an ephemeral one, "
                            "printed on stdout)")
    serve.add_argument("--algorithm", default="1PB-SCC",
                       choices=sorted(ALGORITHMS))
    serve.add_argument("--block-size", type=int, default=None)
    serve.add_argument("--query-workers", type=int, default=4,
                       help="size of the bounded query worker pool")
    serve.add_argument("--queue-max", type=int, default=64,
                       help="hard bound on the request queue")
    serve.add_argument("--high-water", type=int, default=48,
                       help="queue depth at which requests are shed")
    serve.add_argument("--default-deadline-ms", type=int, default=1000)
    serve.add_argument("--max-deadline-ms", type=int, default=60_000)
    serve.add_argument("--admission-window-blocks", type=int,
                       default=1_000_000,
                       help="rebuild I/O budget per admission window")
    serve.add_argument("--admission-window-seconds", type=float,
                       default=60.0)
    serve.add_argument("--service-root", default=None,
                       help="durable state directory "
                            "(default: <graph>.service)")
    serve.add_argument("--fault-plan", default=None,
                       help="deterministic fault spec applied to "
                            "(re)build I/O")
    serve.add_argument("--build-workers", type=int, default=0,
                       help="sharded-scan worker processes for builds")
    serve.add_argument("--rebuild-time-limit", type=float, default=None)
    serve.add_argument("--seed", type=int, default=0,
                       help="GRAIL traversal seed")
    serve.add_argument("--no-auto-rebuild", action="store_true",
                       help="do not schedule a rebuild on ingest")
    serve.add_argument("--metrics-port", type=int, default=None,
                       metavar="PORT",
                       help="also serve GET /metrics, /healthz and "
                            "/readyz on this port")

    bench = sub.add_parser(
        "bench", help="run the paper's evaluation suite"
    )
    bench.add_argument("--experiments", nargs="+", default=None,
                       help="subset (table1 table3 fig12 ... fig17)")
    bench.add_argument("--scale", type=float, default=2.5e-4)
    bench.add_argument("--time-limit", type=float, default=30.0)
    bench.add_argument("--outdir", default=None,
                       help="write per-experiment CSVs and report.txt here")

    repro = sub.add_parser(
        "reproduce",
        help="run the full reproduction sweep and emit a verified artifact",
        description="Execute every table/figure benchmark as a resumable, "
                    "checkpointed sweep; emit artifact/summary.json, "
                    "report.md and a SHA-256 MANIFEST.json over the "
                    "I/O-model-deterministic outputs.",
    )
    repro.add_argument("--scale", choices=["smoke", "paper"], default="smoke",
                       help="sweep tier: 'smoke' (CI subset, every cell "
                            "deterministically completes) or 'paper' (the "
                            "EXPERIMENTS.md sweeps, INF reported)")
    repro.add_argument("--out", default=None, metavar="DIR",
                       help="sweep state + artifact directory (default: "
                            "bench_results/artifact-<tier>)")
    repro.add_argument("--resume", action="store_true",
                       help="continue an interrupted sweep: completed cells "
                            "are skipped, the in-flight cell resumes from "
                            "its scan-boundary checkpoint")
    repro.add_argument("--fresh", action="store_true",
                       help="discard any previous state in --out first")
    repro.add_argument("--cells", nargs="+", default=None, metavar="GLOB",
                       help="restrict the sweep to cells matching these "
                            "globs (e.g. 'fig12/*' '*/1PB-SCC')")
    repro.add_argument("--verify", default=None, metavar="MANIFEST",
                       help="after the sweep, diff the computed manifest "
                            "against this golden; exit 1 on drift")
    repro.add_argument("--verify-only", action="store_true",
                       help="recompute artifacts from completed cells "
                            "without running anything (requires a "
                            "finished sweep in --out)")
    repro.add_argument("--heartbeat", type=float, default=0.0, metavar="SECS",
                       help="background progress/ETA line to stderr every "
                            "SECS seconds, in addition to per-cell lines "
                            "(0 disables)")
    repro.add_argument("--scale-factor", type=float, default=None,
                       metavar="F",
                       help="override the tier's graph scale (the manifest "
                            "then no longer matches the tier's golden)")
    repro.add_argument("--time-limit", type=float, default=None,
                       metavar="SECS",
                       help="override the tier's base per-cell budget")
    repro.add_argument("--block-size", type=int, default=64 * 1024)
    repro.add_argument("--fault-cell", action="append", default=None,
                       metavar="CELL=SPEC",
                       help="plant a deterministic fault plan in one cell, "
                            "e.g. 'fig12/webspam-100pct/1P-SCC=seed=1;"
                            "crash@scan:1' (repeatable; a simulated crash "
                            "exits 4 and the sweep is then resumable)")
    repro.add_argument("--keep-work", action="store_true",
                       help="keep per-cell work/checkpoint dirs after "
                            "success (debugging)")
    repro.add_argument("--workers", type=int, default=0, metavar="N",
                       help="run every cell with N scan worker processes "
                            "(0 disables); the manifest is unchanged — "
                            "parallel runs are byte-identical to serial")

    report = sub.add_parser(
        "report", help="render a run trace written by 'compute --trace'"
    )
    report.add_argument("trace", help="JSONL trace path")
    report.add_argument("--max-depth", type=int, default=None,
                        help="prune the span tree below this depth")
    report.add_argument("--check", action="store_true",
                        help="validate trace invariants and exit non-zero "
                             "on any problem")

    trace = sub.add_parser(
        "trace", help="operate on JSONL run traces"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    tdiff = trace_sub.add_parser(
        "diff",
        help="align two traces span-by-span and attribute wall-clock, "
             "counted-I/O and cache-behaviour deltas",
    )
    tdiff.add_argument("trace_a", help="baseline trace (A)")
    tdiff.add_argument("trace_b", help="candidate trace (B)")
    tdiff.add_argument("--limit", type=int, default=10,
                       help="rows per ranking (default 10)")

    metrics = sub.add_parser(
        "metrics", help="operate on JSONL metrics snapshots"
    )
    metrics_sub = metrics.add_subparsers(dest="metrics_command", required=True)
    mcheck = metrics_sub.add_parser(
        "check",
        help="validate a metrics snapshot file written by "
             "'compute --metrics' (schema, seq density, counter "
             "monotonicity)",
    )
    mcheck.add_argument("metrics", help="JSONL metrics path")
    mcheck.add_argument("--prom", default=None, metavar="PATH",
                        help="also parse a Prometheus text exposition "
                             "file and report its series count")

    lint = sub.add_parser(
        "lint", help="statically check the I/O and memory contracts"
    )
    lint.add_argument("paths", nargs="*", default=None,
                      help="files or directories to check (default: src)")
    lint.add_argument("--list-rules", action="store_true",
                      help="describe every rule and exit")
    lint.add_argument("--no-default-allowlist", action="store_true",
                      help="drop the built-in module-level exceptions")
    lint.add_argument("--sarif", metavar="PATH", default=None,
                      help="also write findings as a SARIF 2.1.0 log")
    lint.add_argument("--baseline", metavar="PATH", default=None,
                      help="baseline file of accepted findings "
                           "(default: lint-baseline.json when present)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore any baseline file")
    lint.add_argument("--write-baseline", action="store_true",
                      help="write current findings to the baseline file "
                           "and exit 0")
    lint.add_argument("--cost-report", action="store_true",
                      help="print the inferred counted-I/O cost class of "
                           "every scanning algorithm function and exit")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = GENERATORS[args.kind](args.scale, args.seed)
    save_graph(
        graph,
        args.out,
        attributes={"kind": args.kind, "scale": args.scale, "seed": args.seed},
    )
    print(f"wrote {args.out}: {graph.num_nodes:,} nodes, "
          f"{graph.num_edges:,} edges")
    return 0


def _cmd_import(args: argparse.Namespace) -> int:
    graph = read_edge_list(args.edge_list, num_nodes=args.num_nodes)
    save_graph(graph, args.out, attributes={"source": args.edge_list})
    print(f"wrote {args.out}: {graph.num_nodes:,} nodes, "
          f"{graph.num_edges:,} edges")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    meta = read_metadata(args.graph)
    print(f"format:     {meta['format']}")
    print(f"nodes:      {meta['num_nodes']:,}")
    print(f"edges:      {meta['num_edges']:,}")
    for key, value in meta.get("attributes", {}).items():
        print(f"{key + ':':<11} {value}")
    if args.full:
        from repro.graph.properties import degree_stats

        stats = degree_stats(load_graph(args.graph))
        print(f"avg degree: {stats.average_degree:.2f}")
        print(f"max out:    {stats.max_out_degree}")
        print(f"max in:     {stats.max_in_degree}")
        print(f"isolated:   {stats.isolated_nodes:,}")
    return 0


def _cmd_compute(args: argparse.Namespace) -> int:
    disk = open_disk_graph(args.graph, block_size=args.block_size)
    base = MemoryModel.default_capacity(disk.num_nodes, args.block_size)
    memory = MemoryModel(
        num_nodes=disk.num_nodes,
        capacity=int(base * args.memory_factor),
        block_size=args.block_size,
    )
    algorithm = ALGORITHMS[args.algorithm]()
    tracer = None
    writer = None
    if args.trace:
        from repro.obs import Tracer, TraceWriter

        writer = TraceWriter(
            args.trace,
            metadata={"algorithm": args.algorithm, "graph": args.graph},
        )
        tracer = Tracer(sink=writer)
    registry = None
    sampler = None
    endpoint = None
    heartbeat = None
    if args.metrics or args.metrics_port is not None or args.heartbeat:
        from repro.obs import (
            Heartbeat,
            MetricsRegistry,
            MetricsSampler,
            MetricsWriter,
            PrometheusEndpoint,
        )

        registry = MetricsRegistry()
        if args.metrics:
            sampler = MetricsSampler(
                registry,
                writer=MetricsWriter(
                    args.metrics,
                    metadata={
                        "algorithm": args.algorithm, "graph": args.graph,
                    },
                ),
                interval_s=args.metrics_interval,
                prom_path=args.metrics + ".prom",
            )
        if args.metrics_port is not None:
            endpoint = PrometheusEndpoint(registry, port=args.metrics_port)
            print(
                f"metrics: serving http://{endpoint.host}:{endpoint.port}"
                "/metrics", file=sys.stderr,
            )
        if args.heartbeat:
            heartbeat = Heartbeat(
                registry, interval_s=args.heartbeat,
                algorithm=args.algorithm,
            )
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
    try:
        if profiler is not None:
            profiler.enable()
        try:
            result = algorithm.run(
                disk,
                memory=memory,
                time_limit=args.time_limit,
                tracer=tracer,
                prefetch_depth=args.prefetch_depth,
                cache_blocks=args.cache_blocks,
                kernels=args.kernels,
                fault_plan=args.fault_plan,
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume,
                metrics=registry,
                workers=args.workers,
            )
        finally:
            if profiler is not None:
                profiler.disable()
                profiler.dump_stats(args.profile)
    except AlgorithmTimeout:
        print("INF: time limit exceeded", file=sys.stderr)
        return 2
    except NonTermination as exc:
        print(f"DNF: {exc}", file=sys.stderr)
        return 3
    except SimulatedCrash as exc:
        print(f"CRASH: {exc}", file=sys.stderr)
        if args.checkpoint_dir:
            print(f"resume with: --checkpoint-dir {args.checkpoint_dir} "
                  f"--resume", file=sys.stderr)
        return 4
    finally:
        if heartbeat is not None:
            heartbeat.close()
        if sampler is not None:
            sampler.close()
        if endpoint is not None:
            endpoint.close()
        if writer is not None:
            writer.close()
        disk.close()
    sizes = result.scc_sizes
    print(f"algorithm:   {args.algorithm}")
    print(f"SCCs:        {result.num_sccs:,} "
          f"({result.nontrivial_count():,} non-trivial)")
    print(f"largest SCC: {int(sizes.max()):,} nodes")
    print(f"iterations:  {result.stats.iterations}")
    print(f"block I/Os:  {result.stats.io.total:,}")
    if result.stats.io.cache_hits or result.stats.io.cache_misses:
        print(f"page cache:  {result.stats.io.cache_hits:,} hits / "
              f"{result.stats.io.cache_misses:,} misses "
              f"(hits not charged as block I/O)")
    if result.stats.io.prefetched:
        print(f"prefetch:    {result.stats.io.prefetched:,} blocks pipelined, "
              f"{result.stats.io.prefetch_stalls:,} stalls")
    if result.stats.io.io_retries or result.stats.io.faults_injected:
        print(f"faults:      {result.stats.io.faults_injected:,} injected, "
              f"{result.stats.io.io_retries:,} blocks retried "
              f"(retries not charged as block I/O)")
    if result.stats.extras.get("workers"):
        fallbacks = result.stats.extras.get("parallel_fallbacks", 0)
        print(f"workers:     {result.stats.extras['workers']} scan "
              f"processes, {fallbacks} crash fallback(s)")
    if "resumed_from_boundary" in result.stats.extras:
        print(f"resumed:     from scan boundary "
              f"{result.stats.extras['resumed_from_boundary']}")
    if "checkpoint_boundaries" in result.stats.extras:
        print(f"checkpoints: {result.stats.extras['checkpoint_boundaries']} "
              f"boundary snapshot(s) saved")
    print(f"time:        {result.stats.wall_seconds:.2f}s")
    if args.labels_out:
        np.save(args.labels_out, result.labels)
        print(f"labels:      {args.labels_out}")
    if writer is not None:
        print(f"trace:       {args.trace}")
    if sampler is not None:
        print(f"metrics:     {args.metrics} "
              f"({sampler.writer.samples_written if sampler.writer else 0} "
              f"sample(s), exposition at {args.metrics}.prom)")
    if args.profile:
        print(f"profile:     {args.profile}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    records = [
        run_one(graph, name, workload=args.graph, time_limit=args.time_limit)
        for name in args.algorithms
    ]
    print(format_table(records, metric="seconds", title="Time"))
    print()
    print(format_table(records, metric="ios", title="# of block I/Os"))
    return 0


def _cmd_condense(args: argparse.Namespace) -> int:
    from repro.apps.condense_external import condense_to_disk

    disk = open_disk_graph(args.graph)
    try:
        if args.labels:
            labels = np.load(args.labels)
        else:
            labels = ALGORITHMS["1PB-SCC"]().run(disk).labels
        condensed = condense_to_disk(
            disk,
            labels,
            out_path=args.out,
            deduplicate=not args.keep_multiplicities,
        )
    finally:
        disk.close()
    num_nodes, num_edges = condensed.num_nodes, condensed.num_edges
    condensed.close()
    write_metadata(args.out, num_nodes, num_edges,
                   attributes={"condensation_of": args.graph})
    print(f"wrote {args.out}: {num_nodes:,} SCC nodes, "
          f"{num_edges:,} inter-SCC edges")
    return 0


def _cmd_toposort(args: argparse.Namespace) -> int:
    from repro.apps.toposort import semi_external_toposort

    disk = open_disk_graph(args.graph)
    try:
        labels = np.load(args.labels) if args.labels else None
        result = semi_external_toposort(disk, labels=labels)
    finally:
        disk.close()
    layers = int(result.scc_layers.max()) + 1 if result.scc_layers.size else 0
    print(f"layers:      {layers}")
    print(f"scans:       {result.scans}")
    print(f"block I/Os:  {result.io.total:,}")
    if args.out:
        np.save(args.out, result.node_layers)
        print(f"node layers: {args.out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the SCC query daemon until shutdown or Ctrl-C."""
    from repro.constants import DEFAULT_BLOCK_SIZE
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.sampler import PrometheusEndpoint
    from repro.service import SCCServer, ServiceConfig

    config = ServiceConfig(
        graph_path=args.graph,
        algorithm=args.algorithm,
        host=args.host,
        port=args.port,
        block_size=args.block_size or DEFAULT_BLOCK_SIZE,
        query_workers=args.query_workers,
        queue_max=args.queue_max,
        high_water=args.high_water,
        default_deadline_ms=args.default_deadline_ms,
        max_deadline_ms=args.max_deadline_ms,
        admission_window_blocks=args.admission_window_blocks,
        admission_window_seconds=args.admission_window_seconds,
        rebuild_time_limit=args.rebuild_time_limit,
        service_root=args.service_root,
        fault_plan=args.fault_plan,
        workers=args.build_workers,
        seed=args.seed,
        auto_rebuild=not args.no_auto_rebuild,
    )
    registry = MetricsRegistry()
    server = SCCServer(config, registry=registry)
    server.start()
    endpoint = None
    if args.metrics_port is not None:
        endpoint = PrometheusEndpoint(
            registry,
            port=args.metrics_port,
            health=server.health_payload,
        )
        print(
            f"metrics: http://{endpoint.host}:{endpoint.port}/metrics "
            f"(+/healthz, /readyz)",
            file=sys.stderr,
        )
    # The scripts and drills parse this line; keep its shape stable.
    print(f"serving {args.graph} on {config.host}:{server.port}", flush=True)
    try:
        server.wait()
    except KeyboardInterrupt:
        server.stop()
    finally:
        if endpoint is not None:
            endpoint.close()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.suite import SuiteConfig, run_paper_suite

    config = SuiteConfig(scale=args.scale, time_limit=args.time_limit)
    suite = run_paper_suite(
        config=config, experiments=args.experiments, outdir=args.outdir
    )
    print(suite.report())
    if args.outdir:
        print(f"\nwrote CSVs and report.txt to {args.outdir}/")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Render (or, with ``--check``, validate) a JSONL run trace."""
    from repro.obs import load_trace, render_report, validate_trace

    try:
        trace = load_trace(args.trace)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.check:
        problems = validate_trace(trace)
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        if problems:
            print(f"{len(problems)} trace invariant violation(s)",
                  file=sys.stderr)
            return 1
        print(f"OK: {len(trace.spans)} span(s), schema "
              f"v{trace.schema_version}")
        return 0
    print(render_report(trace, max_depth=args.max_depth))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Trace tooling; currently the span-by-span ``diff`` subcommand."""
    from repro.obs import diff_traces, load_trace, render_diff

    if args.trace_command == "diff":
        try:
            trace_a = load_trace(args.trace_a)
            trace_b = load_trace(args.trace_b)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        diff = diff_traces(trace_a, trace_b)
        print(render_diff(
            diff,
            label_a=os.path.basename(args.trace_a),
            label_b=os.path.basename(args.trace_b),
            limit=args.limit,
        ))
        return 0
    return 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Metrics tooling; currently the schema ``check`` subcommand."""
    from repro.obs import load_metrics, parse_prometheus_text, validate_metrics

    if args.metrics_command == "check":
        try:
            data = load_metrics(args.metrics)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        problems = validate_metrics(data)
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        if problems:
            print(f"{len(problems)} metrics invariant violation(s)",
                  file=sys.stderr)
            return 1
        print(f"OK: {len(data.samples)} sample(s), schema "
              f"v{data.schema_version}")
        if args.prom:
            try:
                with open(args.prom, "r", encoding="utf-8") as handle:  # repro: allow[IO001]
                    series = parse_prometheus_text(handle.read())
            except (OSError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            print(f"OK: {len(series)} Prometheus series in {args.prom}")
        return 0
    return 1


#: Baseline file consulted by ``lint`` when none is named explicitly.
_DEFAULT_BASELINE = "lint-baseline.json"


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the contract analyzer.

    Exit codes: 0 clean (or only baselined findings), 1 when any new
    finding survives filtering, 2 when the analyzer itself fails
    (unreadable input, syntax error, or an internal crash).
    """
    from repro.analysis_static import ALL_RULES, Analyzer
    from repro.analysis_static.baseline import (
        apply_baseline,
        load_baseline,
        write_baseline,
    )
    from repro.analysis_static.iocost import cost_report
    from repro.analysis_static.sarif import to_sarif_json

    if args.list_rules:
        for rule_cls in ALL_RULES:
            print(f"{rule_cls.rule_id}  {rule_cls.title}")
            print(f"       {rule_cls.rationale}")
        return 0
    analyzer = Analyzer(allowlist={} if args.no_default_allowlist else None)
    try:
        modules = analyzer.load_paths(args.paths or ["src"])
        if args.cost_report:
            print(cost_report(modules))
            return 0
        violations = analyzer.analyze_modules(modules)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"error: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}",
              file=sys.stderr)
        return 2
    except Exception as exc:  # analyzer crash, not a finding
        print(f"error: analyzer failed: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 2

    baseline_path = args.baseline or _DEFAULT_BASELINE
    if args.write_baseline:
        write_baseline(baseline_path, violations)
        print(f"wrote {len(violations)} finding(s) to {baseline_path}")
        return 0
    baselined: List = []
    if not args.no_baseline and os.path.exists(baseline_path):
        try:
            violations, baselined = apply_baseline(
                violations, load_baseline(baseline_path)
            )
        except (ValueError, KeyError) as exc:
            print(f"error: malformed baseline {baseline_path}: {exc}",
                  file=sys.stderr)
            return 2

    if args.sarif:
        sarif_json = to_sarif_json(violations, rules=analyzer.rules)
        with open(args.sarif, "w", encoding="utf-8") as handle:  # repro: allow[IO001]
            handle.write(sarif_json + "\n")

    for violation in violations:
        print(violation)
    if violations:
        print(f"{len(violations)} contract violation(s)", file=sys.stderr)
        return 1
    suffix = f" ({len(baselined)} baselined)" if baselined else ""
    print(f"OK: {analyzer.files_checked} file(s) contract-clean{suffix}")
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.artifact.runner import ReproduceConfig, reproduce

    fault_cells = {}
    for entry in args.fault_cell or []:
        cell_id, sep, spec = entry.partition("=")
        if not sep or not cell_id or not spec:
            print(f"error: --fault-cell needs CELL=SPEC, got {entry!r}",
                  file=sys.stderr)
            return 2
        fault_cells[cell_id] = spec
    return reproduce(ReproduceConfig(
        tier=args.scale,
        out_dir=args.out,
        resume=args.resume,
        fresh=args.fresh,
        only=tuple(args.cells or ()),
        verify=args.verify,
        verify_only=args.verify_only,
        fault_cells=fault_cells,
        heartbeat=args.heartbeat,
        scale=args.scale_factor,
        time_limit=args.time_limit,
        block_size=args.block_size,
        keep_work=args.keep_work,
        workers=args.workers,
    ))


_COMMANDS = {
    "generate": _cmd_generate,
    "import": _cmd_import,
    "info": _cmd_info,
    "compute": _cmd_compute,
    "compare": _cmd_compare,
    "condense": _cmd_condense,
    "toposort": _cmd_toposort,
    "serve": _cmd_serve,
    "bench": _cmd_bench,
    "reproduce": _cmd_reproduce,
    "report": _cmd_report,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
    "lint": _cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    _configure_logging(args.verbose)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
