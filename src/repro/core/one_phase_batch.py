"""1PB-SCC: 1P-SCC plus batch edge reduction (paper Algorithm 8).

Instead of testing edges one at a time against the tree (whose
ancestor walks dominate 1P-SCC's CPU cost), 1PB-SCC:

1. loads as many edges as fit in the leftover memory ``M_B`` as a batch
   ``B_i``;
2. forms the in-memory graph ``G'' = T ∪ B_i`` (only tree edges that
   correspond to real graph edges participate — the initial star and
   virtual-root adoptions are scaffolding, not connectivity);
3. finds all SCCs of ``G''`` with the in-memory Kosaraju-Sharir
   algorithm and contracts each into one supernode (early acceptance en
   masse);
4. rebuilds the BR-Tree over the condensation by dynamic programming in
   topological order: ``drank(v) = max over incoming (u, v) of
   drank(u) + 1``, with the maximising ``u`` as the new parent — the
   batch equivalent of eliminating every up-edge with ``pushdown``
   without ever walking a subtree.

Early acceptance (graph rewriting past ``tau``) and early rejection
(the ``drank`` window) work exactly as in 1P-SCC.  As nodes are merged
or rejected, ``M_B`` grows, so batches get larger every iteration —
the Section 7.4 feedback loop.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.constants import (
    DEFAULT_REJECTION_PERIOD,
    DEFAULT_TAU_FRACTION,
    NODE_DTYPE,
    VIRTUAL_ROOT,
)
from repro.core.base import Deadline, IterationStats, SCCAlgorithm, logger
from repro.exceptions import NonTermination
from repro.graph.digraph import Digraph
from repro.graph.diskgraph import DiskGraph
from repro.inmemory.kosaraju import kosaraju_scc
from repro.io.edgefile import EdgeFile
from repro.io.faults import SimulatedCrash
from repro.io.memory import MemoryModel
from repro.kernels import ScanKernels, resolve_kernels
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.spanning.unionfind import DisjointSet


class OnePhaseBatchSCC(SCCAlgorithm):
    """Paper Algorithm 8: the single-phase algorithm with batching.

    Parameters mirror :class:`~repro.core.one_phase.OnePhaseSCC`, plus
    ``batch_blocks`` to pin the batch size explicitly (otherwise it is
    derived from the memory model and grows as the graph shrinks).
    """

    name = "1PB-SCC"

    def __init__(
        self,
        tau_fraction: float = DEFAULT_TAU_FRACTION,
        rejection_period: int = DEFAULT_REJECTION_PERIOD,
        enable_acceptance: bool = True,
        enable_rejection: bool = True,
        batch_blocks: Optional[int] = None,
    ) -> None:
        if tau_fraction <= 0:
            raise ValueError("tau_fraction must be positive")
        if rejection_period <= 0:
            raise ValueError("rejection_period must be positive")
        self.tau_fraction = tau_fraction
        self.rejection_period = rejection_period
        self.enable_acceptance = enable_acceptance
        self.enable_rejection = enable_rejection
        self.batch_blocks = batch_blocks

    # ------------------------------------------------------------------
    def _run(
        self,
        graph: DiskGraph,
        memory: MemoryModel,
        deadline: Deadline,
        tracer: Tracer,
        kernel: Optional[ScanKernels] = None,
    ) -> Tuple[np.ndarray, int, List[IterationStats], Dict[str, object]]:
        kernel = kernel if kernel is not None else resolve_kernels()
        n = graph.num_nodes
        memory.require_node_arrays(2)  # BR-Tree: parent + depth
        if n == 0:
            return np.empty(0, dtype=np.int64), 0, [], {}

        tau = max(2, int(math.ceil(self.tau_fraction * n)))
        max_iterations = 4 * n + 16
        resume = self._take_resume()
        if resume is not None:
            parent = resume.arrays["parent"].astype(np.int64)
            depth = resume.arrays["depth"].astype(np.int64)
            parent_real = resume.arrays["parent_real"].astype(bool)
            live = resume.arrays["live"].astype(bool)
            ds = DisjointSet.from_arrays(
                resume.arrays["ds_parent"], resume.arrays["ds_size"]
            )
            rejected = [int(v) for v in resume.arrays["rejected"]]
            iteration = int(resume.meta["iteration"])  # type: ignore[arg-type]
            updated = bool(resume.meta["updated"])
            total_batches = int(resume.meta["total_batches"])  # type: ignore[arg-type]
            current, owns_current = self._resume_edge_file(graph, resume.meta)
            per_iteration = [
                IterationStats.from_dict(row)
                for row in resume.meta.get("per_iteration", [])  # type: ignore[union-attr]
            ]
        else:
            parent = np.full(n, VIRTUAL_ROOT, dtype=np.int64)
            depth = np.ones(n, dtype=np.int64)
            parent_real = np.zeros(n, dtype=bool)
            live = np.ones(n, dtype=bool)
            ds = DisjointSet(n)
            rejected = []
            current = graph.edge_file
            owns_current = False
            per_iteration = []
            iteration = 0
            updated = True
            total_batches = 0

        try:
            while updated:
                deadline.check()
                if iteration >= max_iterations:
                    raise NonTermination(self.name, iteration)
                iteration += 1
                updated = False
                live_count = int(np.count_nonzero(live))
                live_before = live_count
                edges_before = current.num_edges
                largest_supernode = 0

                batch_blocks = self.batch_blocks or memory.blocks_per_batch(
                    2, live_count
                )
                with tracer.span("iteration", iteration=iteration):
                    with tracer.span(
                        "batch-scan", iteration=iteration,
                        batch_blocks=batch_blocks,
                    ):
                        edges_classified = 0
                        for batch in current.scan(batch_blocks=batch_blocks):
                            deadline.check()
                            total_batches += 1
                            tracer.add("batches", 1)
                            edges_classified += batch.shape[0]
                            changed, biggest = self._process_batch(
                                batch, parent, depth, parent_real, live, ds,
                                tracer, kernel,
                            )
                            updated = updated or changed
                            if biggest > largest_supernode:
                                largest_supernode = biggest
                        tracer.add("edges-classified", edges_classified)
                        for key, value in kernel.drain_counters().items():
                            tracer.add(key, value)

                    # The Section 7.2 drank window is only sound when
                    # candidacy and depths are read against one consistent
                    # tree; the rewrite scan below is that frozen snapshot
                    # (same reasoning as in 1P-SCC), so rejection happens
                    # right after it.
                    rejecting = (
                        self.enable_rejection
                        and iteration % self.rejection_period == 0
                    )
                    rejected_now = 0
                    if rejecting or (
                        self.enable_acceptance and largest_supernode >= tau
                    ):
                        current, owns_current, window = self._reduce_graph(
                            graph, ds, live, depth, current, owns_current,
                            iteration, deadline, tracer,
                        )
                        drank_min, drank_max = window
                        if rejecting:
                            live_ids = np.flatnonzero(live)
                            if drank_min > drank_max:
                                # No cycle-candidate edges: no cycles remain,
                                # every live supernode is final.
                                outside = live_ids
                            else:
                                outside = live_ids[
                                    (depth[live_ids] < drank_min)
                                    | (depth[live_ids] > drank_max)
                                ]
                            for node in outside.tolist():
                                live[node] = False
                                rejected.append(node)
                            rejected_now = int(outside.size)
                    tracer.add("early-rejects", rejected_now)
                    tracer.add(
                        "edges-eliminated", edges_before - current.num_edges
                    )

                live_after = int(np.count_nonzero(live))
                logger.debug(
                    "1PB-SCC iter %d: live=%d edges=%d batch_blocks=%d",
                    iteration, live_after, current.num_edges, batch_blocks,
                )
                per_iteration.append(
                    IterationStats(
                        iteration=iteration,
                        nodes_reduced=live_before - live_after,
                        edges_reduced=edges_before - current.num_edges,
                        live_nodes=live_after,
                        live_edges=current.num_edges,
                    )
                )
                self._note_progress(iteration, live_after, current.num_edges)
                if self._boundary_active:
                    self._scan_boundary(
                        arrays={
                            "parent": parent,
                            "depth": depth,
                            "parent_real": parent_real,
                            "live": live,
                            "ds_parent": ds.parent,
                            "ds_size": ds.size,
                            "rejected": np.asarray(rejected, dtype=np.int64),
                        },
                        meta={
                            "iteration": iteration,
                            "updated": updated,
                            "total_batches": total_batches,
                            "current_path": current.path,
                            "owns_current": owns_current,
                            "per_iteration": [
                                row.to_dict() for row in per_iteration
                            ],
                        },
                    )
        except SimulatedCrash:
            # A simulated power loss: the working file stays on disk —
            # the last durable checkpoint references it for resume.
            raise
        except BaseException:
            if owns_current:
                current.unlink()
            raise
        if owns_current:
            current.unlink()

        labels, _ = ds.labels()
        extras = {
            "tau": tau,
            "rejected_nodes": len(rejected),
            "batches": total_batches,
        }
        return labels, iteration, per_iteration, extras

    # ------------------------------------------------------------------
    def _process_batch(
        self,
        batch: np.ndarray,
        parent: np.ndarray,
        depth: np.ndarray,
        parent_real: np.ndarray,
        live: np.ndarray,
        ds: DisjointSet,
        tracer: Tracer = NULL_TRACER,
        kernel: Optional[ScanKernels] = None,
    ) -> Tuple[bool, int]:
        """Lines 6-12 of Algorithm 8 for one batch.

        Returns ``(changed, largest_supernode)``.  Emits ``merges`` (nodes
        absorbed into supernodes) and ``batch-rebuilds`` (tree rebuild
        passes that moved anything) counters on the enclosing span.
        """
        kernel = kernel if kernel is not None else resolve_kernels()
        n = parent.shape[0]
        changed = False
        largest = 0

        # --- map batch edges onto live supernodes.
        us = ds.find_many(batch[:, 0].astype(np.int64))
        vs = ds.find_many(batch[:, 1].astype(np.int64))
        keep = (us != vs) & live[us] & live[vs]
        us = us[keep]
        vs = vs[keep]

        # --- tree edges of T that correspond to real graph edges.
        live_ids = np.flatnonzero(live)
        raw_parents = parent[live_ids]
        has_parent = (raw_parents != VIRTUAL_ROOT) & parent_real[live_ids]
        children = live_ids[has_parent]
        parents = ds.find_many(raw_parents[has_parent])
        # Parents absorbed elsewhere are remapped; dead parents orphan
        # the child (it re-roots at the virtual root).
        orphaned = ~live[parents] | (parents == children)
        if orphaned.any():
            bad = children[orphaned]
            parent[bad] = VIRTUAL_ROOT
            parent_real[bad] = False
            depth[bad] = 1
            children = children[~orphaned]
            parents = parents[~orphaned]

        # --- G'' = T ∪ B_i on a compacted id space.
        comp = np.full(n, -1, dtype=np.int64)
        comp[live_ids] = np.arange(live_ids.size, dtype=np.int64)
        g2_edges = np.concatenate(
            [
                np.column_stack((comp[parents], comp[children])),
                np.column_stack((comp[us], comp[vs])),
            ]
        )
        g2 = Digraph(int(live_ids.size), g2_edges)

        # --- lines 7-8: in-memory SCCs, contraction, condensation.
        labels2, count2 = kosaraju_scc(g2)
        sizes2 = np.bincount(labels2, minlength=count2)
        # Sort members by (label, depth): each group's first member is
        # its shallowest node, which keeps the topmost tree position and
        # becomes the supernode representative.
        order = np.lexsort((depth[live_ids], labels2))
        sorted_members = live_ids[order]
        boundaries = np.searchsorted(labels2[order], np.arange(count2 + 1))
        group_reps = sorted_members[boundaries[:-1]]
        merges = 0
        for label in np.flatnonzero(sizes2 >= 2).tolist():
            members = sorted_members[boundaries[label] : boundaries[label + 1]]
            rep = int(members[0])
            merges += kernel.absorb_members(ds, live, members[1:], rep)
            changed = True
            size = ds.set_size(rep)
            if size > largest:
                largest = size
        tracer.add("merges", merges)

        # --- lines 9-12: rebuild T over the condensation by DP.
        # Kosaraju assigns SCC labels in topological order of the
        # condensation, so label order *is* the topological order —
        # the "without extra cost" sort of Section 7.3.
        dag_pairs = labels2[g2_edges]
        nontrivial = dag_pairs[:, 0] != dag_pairs[:, 1]
        dag = Digraph(count2, dag_pairs[nontrivial])
        dag_depth = depth[group_reps].tolist()
        dag_parent = np.full(count2, -1, dtype=np.int64)

        rebuilt = 0
        rev = dag.reverse()
        rev_indptr = rev.indptr.tolist()
        rev_indices = rev.indices.tolist()
        for v in range(count2):
            start = rev_indptr[v]
            end = rev_indptr[v + 1]
            if start == end:
                continue
            best = -1
            best_u = -1
            for index in range(start, end):
                u = rev_indices[index]
                du = dag_depth[u]
                if du > best:
                    best = du
                    best_u = u
            if best >= dag_depth[v]:
                dag_depth[v] = best + 1
                dag_parent[v] = best_u
                changed = True
                rebuilt += 1

        # Write the rebuilt tree back onto the representatives.
        reps = group_reps
        depth[reps] = dag_depth
        has_new_parent = dag_parent != -1
        target = reps[has_new_parent]
        parent[target] = reps[dag_parent[has_new_parent]]
        parent_real[target] = True
        tracer.add("batch-rebuilds", rebuilt)

        return changed, largest

    # ------------------------------------------------------------------
    def _reduce_graph(
        self,
        graph: DiskGraph,
        ds: DisjointSet,
        live: np.ndarray,
        depth: np.ndarray,
        current: EdgeFile,
        owns_current: bool,
        iteration: int,
        deadline: Optional[Deadline] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> Tuple[EdgeFile, bool, Tuple[int, int]]:
        """Early-acceptance graph rewrite (shared semantics with 1P-SCC).

        The tree arrays are frozen during this scan, so the Section 7.2
        drank window is measured here over a consistent snapshot and
        returned for early rejection.
        """
        drank_min = np.iinfo(np.int64).max
        drank_max = np.iinfo(np.int64).min

        reduced = graph.derive_edge_file(f"bwork{iteration}")
        ctx = self._parallel
        with tracer.span("reduce-scan", iteration=iteration):
            if ctx is not None:
                # Arrays are frozen for this scan: publish the resolved
                # root map once, let workers map and filter (values are
                # identical to the local find_many path).
                n = live.shape[0]
                root = ds.find_many(np.arange(n, dtype=np.int64))
                stream = ctx.map_frozen(current.scan(), root=root, live=live)
            else:
                stream = ((batch, None) for batch in current.scan())
            for batch, mapped in stream:
                if deadline is not None:
                    deadline.check()
                if mapped is not None:
                    us = mapped["us"]
                    vs = mapped["vs"]
                    if us.size == 0:
                        continue
                else:
                    us = ds.find_many(batch[:, 0].astype(np.int64))
                    vs = ds.find_many(batch[:, 1].astype(np.int64))
                    keep = (us != vs) & live[us] & live[vs]
                    if not keep.any():
                        continue
                    us = us[keep]
                    vs = vs[keep]
                candidate = depth[us] >= depth[vs]
                if candidate.any():
                    # Per-batch (not per-edge) reductions of the window.
                    lo = int(depth[vs[candidate]].min())  # repro: allow[CPU001]
                    hi = int(depth[us[candidate]].max())  # repro: allow[CPU001]
                    if lo < drank_min:
                        drank_min = lo
                    if hi > drank_max:
                        drank_max = hi
                reduced.append(np.column_stack((us, vs)).astype(NODE_DTYPE))
            reduced.flush()
            if ctx is not None:
                for key, value in ctx.drain_counters().items():
                    tracer.add(key, value)
        if owns_current:
            # Checkpoint-safe disposal: the last durable checkpoint may
            # still reference this file (see _retire_scratch).
            self._retire_scratch(current)
        return reduced, True, (drank_min, drank_max)
