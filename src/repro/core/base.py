"""Shared interface and result types for the SCC algorithms.

Every algorithm consumes a :class:`~repro.graph.diskgraph.DiskGraph`
under a :class:`~repro.io.memory.MemoryModel` and produces an
:class:`SCCResult`: per-node labels plus a :class:`RunStats` record with
the two quantities the paper's evaluation reports — wall-clock time and
the number of block I/Os — alongside per-iteration reduction stats
(Table 1's rows).
"""

from __future__ import annotations

import logging
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import AlgorithmTimeout
from repro.graph.diskgraph import DiskGraph
from repro.io.counter import IOStats
from repro.io.memory import MemoryModel
from repro.io.prefetch import PageCache
from repro.kernels import ScanKernels, resolve_kernels
from repro.obs.tracer import NULL_TRACER, Tracer, iteration_io

logger = logging.getLogger("repro.core")


class Deadline:
    """A wall-clock budget that raises :class:`AlgorithmTimeout` when hit."""

    def __init__(self, algorithm: str, limit_seconds: Optional[float]) -> None:
        self.algorithm = algorithm
        self.limit_seconds = limit_seconds
        self._start = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Seconds since the deadline was armed."""
        return time.perf_counter() - self._start

    def check(self) -> None:
        """Raise :class:`AlgorithmTimeout` when the budget is exhausted."""
        if self.limit_seconds is not None and self.elapsed > self.limit_seconds:
            raise AlgorithmTimeout(self.algorithm, self.limit_seconds)


@dataclass
class IterationStats:
    """Per-iteration graph reduction record (the paper's Table 1).

    ``io`` is this iteration's block-transfer delta, populated from the
    tracer's iteration spans when a run is traced (``None`` on untraced
    runs — measuring it for free requires the span snapshots).
    """

    iteration: int
    nodes_reduced: int
    edges_reduced: int
    live_nodes: int
    live_edges: int
    io: Optional[IOStats] = None

    def to_dict(self) -> Dict[str, object]:
        """Serialize for reports, CSV export and trace summaries."""
        payload: Dict[str, object] = {
            "iteration": self.iteration,
            "nodes_reduced": self.nodes_reduced,
            "edges_reduced": self.edges_reduced,
            "live_nodes": self.live_nodes,
            "live_edges": self.live_edges,
        }
        if self.io is not None:
            payload["io"] = self.io.to_dict()
        return payload


@dataclass
class RunStats:
    """Everything measured about one algorithm run."""

    algorithm: str
    iterations: int
    io: IOStats
    wall_seconds: float
    per_iteration: List[IterationStats] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """Serialize the full run record (per-iteration rows included)."""
        return {
            "algorithm": self.algorithm,
            "iterations": self.iterations,
            "io": self.io.to_dict(),
            "wall_seconds": self.wall_seconds,
            "per_iteration": [entry.to_dict() for entry in self.per_iteration],
            "extras": dict(self.extras),
        }


@dataclass
class SCCResult:
    """SCC labels for every node plus the run's measurements."""

    labels: np.ndarray
    num_sccs: int
    stats: RunStats

    @property
    def scc_sizes(self) -> np.ndarray:
        """Member count of every SCC."""
        return np.bincount(self.labels, minlength=self.num_sccs)

    def members(self, scc: int) -> np.ndarray:
        """Original node ids in SCC ``scc``."""
        return np.flatnonzero(self.labels == scc)

    def nontrivial_count(self) -> int:
        """SCCs with at least two members (what the paper counts)."""
        return int(np.count_nonzero(self.scc_sizes >= 2))


def canonicalize_labels(labels: np.ndarray) -> Tuple[np.ndarray, int]:
    """Relabel to contiguous ``0 .. k - 1`` by first appearance."""
    labels = np.asarray(labels, dtype=np.int64)
    unique, inverse = np.unique(labels, return_inverse=True)
    return inverse.astype(np.int64), int(unique.size)


class SCCAlgorithm(ABC):
    """Base class: timing, I/O diffing, and label canonicalisation."""

    #: Short name used in reports (e.g. ``"1PB-SCC"``).
    name: str = "abstract"

    def run(
        self,
        graph: DiskGraph,
        memory: Optional[MemoryModel] = None,
        time_limit: Optional[float] = None,
        tracer: Optional[Tracer] = None,
        prefetch_depth: int = 0,
        cache_blocks: int = 0,
        kernels: Union[str, ScanKernels, None] = None,
    ) -> SCCResult:
        """Compute all SCCs of ``graph``.

        Parameters
        ----------
        graph:
            The semi-external input; its edge file's I/O counter is
            diffed around the run, so only this run's I/Os are reported.
        memory:
            Budget ``M``; the paper's default (``4·(3|V|) + B``) when
            omitted.
        time_limit:
            Wall-clock limit in seconds; :class:`AlgorithmTimeout` is
            raised when exceeded (the paper's ``INF`` entries).
        tracer:
            Optional :class:`~repro.obs.tracer.Tracer`; when given, the
            run is wrapped in a root ``run`` span, the tracer is
            attached to the graph's I/O counter for per-file
            attribution, and each :class:`IterationStats` entry gains
            its I/O delta from the iteration spans.  The default no-op
            tracer leaves behavior byte-identical to an untraced run.
        prefetch_depth:
            When positive, edge scans pipeline their block reads
            through a background prefetcher of this depth.  Counted
            block reads are identical to a synchronous run; only wall
            time (and the ``prefetched``/``prefetch_stalls`` tallies)
            change.
        cache_blocks:
            When positive, install a :class:`~repro.io.prefetch.PageCache`
            of this many blocks shared by the graph's edge file and
            every scratch file derived from it.  Cache hits skip disk
            and are tallied as ``cache_hits``, never as block reads, so
            a cached run's read tally is the cacheless tally minus the
            avoided transfers.

        kernels:
            Scan-kernel backend for the per-batch edge classification:
            ``"vector"`` (default; snapshot-vectorised with an
            Euler-tour ancestor oracle) or ``"scalar"`` (the
            paper-literal per-edge loops).  Both backends make
            identical decisions, so labels, iteration counts and
            counted I/O do not depend on the choice — only CPU time
            does.  A :class:`~repro.kernels.ScanKernels` instance is
            also accepted (tests use this to inspect counters).

        Both policies are installed on the graph's edge file for the
        duration of the run and restored afterwards, so sequential runs
        on a shared graph don't leak policy into each other.
        """
        if memory is None:
            memory = MemoryModel(graph.num_nodes, block_size=graph.block_size)
        if tracer is None:
            tracer = NULL_TRACER
        if prefetch_depth < 0 or cache_blocks < 0:
            raise ValueError("prefetch_depth and cache_blocks must be non-negative")
        kernel = resolve_kernels(kernels)
        deadline = Deadline(self.name, time_limit)
        logger.debug(
            "%s: starting on %d nodes / %d edges (M=%d, B=%d)",
            self.name, graph.num_nodes, graph.num_edges,
            memory.capacity, memory.block_size,
        )
        io_before = graph.counter.snapshot()
        spans_before = len(tracer.spans)
        previous_cache = graph.edge_file.cache
        previous_depth = graph.edge_file.prefetch_depth
        if cache_blocks > 0:
            graph.edge_file.cache = PageCache(
                cache_blocks, block_size=graph.block_size
            )
        graph.edge_file.prefetch_depth = prefetch_depth
        run_attributes: Dict[str, object] = {
            "algorithm": self.name,
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "kernels": kernel.name,
        }
        # Additive schema: policy attributes appear only when a policy is
        # active, so policy-off traces match pre-prefetch goldens exactly.
        if prefetch_depth:
            run_attributes["prefetch_depth"] = prefetch_depth
        if cache_blocks:
            run_attributes["cache_blocks"] = cache_blocks
        try:
            with tracer.attach(graph.counter):
                with tracer.span("run", **run_attributes):
                    labels, iterations, per_iteration, extras = self._run(
                        graph, memory, deadline, tracer, kernel
                    )
        finally:
            graph.edge_file.cache = previous_cache
            graph.edge_file.prefetch_depth = previous_depth
        labels, num_sccs = canonicalize_labels(labels)
        if tracer.enabled:
            per_iteration_io = iteration_io(tracer.spans[spans_before:])
            for entry in per_iteration:
                if entry.io is None:
                    entry.io = per_iteration_io.get(entry.iteration)
        stats = RunStats(
            algorithm=self.name,
            iterations=iterations,
            io=graph.counter.since(io_before),
            wall_seconds=deadline.elapsed,
            per_iteration=per_iteration,
            extras=extras,
        )
        logger.debug(
            "%s: finished — %d SCCs, %d iterations, %d block I/Os, %.3fs",
            self.name, num_sccs, iterations, stats.io.total, stats.wall_seconds,
        )
        return SCCResult(labels=labels, num_sccs=num_sccs, stats=stats)

    @abstractmethod
    def _run(
        self,
        graph: DiskGraph,
        memory: MemoryModel,
        deadline: Deadline,
        tracer: Tracer,
        kernel: ScanKernels,
    ) -> Tuple[np.ndarray, int, List[IterationStats], Dict[str, object]]:
        """Algorithm body: return ``(labels, iterations, per_iter, extras)``."""
