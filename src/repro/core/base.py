"""Shared interface and result types for the SCC algorithms.

Every algorithm consumes a :class:`~repro.graph.diskgraph.DiskGraph`
under a :class:`~repro.io.memory.MemoryModel` and produces an
:class:`SCCResult`: per-node labels plus a :class:`RunStats` record with
the two quantities the paper's evaluation reports — wall-clock time and
the number of block I/Os — alongside per-iteration reduction stats
(Table 1's rows).
"""

from __future__ import annotations

import logging
import os
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import AlgorithmTimeout, CheckpointError
from repro.graph.diskgraph import DiskGraph
from repro.io.checkpoint import CheckpointSession, LoadedCheckpoint
from repro.io.counter import IOCounter, IOStats
from repro.io.edgefile import EdgeFile
from repro.io.faults import FaultInjector, FaultPlan, SimulatedCrash
from repro.io.memory import MemoryModel
from repro.io.prefetch import PageCache, live_prefetch_queue_depth
from repro.kernels import ScanKernels, resolve_kernels
from repro.obs.heartbeat import SCAN_BUDGETS, predicted_blocks_per_scan
from repro.obs.metrics import MetricsRegistry, install_io_metrics
from repro.obs.tracer import NULL_TRACER, Tracer, iteration_io

logger = logging.getLogger("repro.core")


class Deadline:
    """A wall-clock budget that raises :class:`AlgorithmTimeout` when hit."""

    def __init__(self, algorithm: str, limit_seconds: Optional[float]) -> None:
        self.algorithm = algorithm
        self.limit_seconds = limit_seconds
        self._start = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Seconds since the deadline was armed."""
        return time.perf_counter() - self._start

    def check(self) -> None:
        """Raise :class:`AlgorithmTimeout` when the budget is exhausted."""
        if self.limit_seconds is not None and self.elapsed > self.limit_seconds:
            raise AlgorithmTimeout(self.algorithm, self.limit_seconds)


@dataclass
class IterationStats:
    """Per-iteration graph reduction record (the paper's Table 1).

    ``io`` is this iteration's block-transfer delta, populated from the
    tracer's iteration spans when a run is traced (``None`` on untraced
    runs — measuring it for free requires the span snapshots).
    """

    iteration: int
    nodes_reduced: int
    edges_reduced: int
    live_nodes: int
    live_edges: int
    io: Optional[IOStats] = None

    def to_dict(self) -> Dict[str, object]:
        """Serialize for reports, CSV export and trace summaries."""
        payload: Dict[str, object] = {
            "iteration": self.iteration,
            "nodes_reduced": self.nodes_reduced,
            "edges_reduced": self.edges_reduced,
            "live_nodes": self.live_nodes,
            "live_edges": self.live_edges,
        }
        if self.io is not None:
            payload["io"] = self.io.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "IterationStats":
        """Rebuild a row from :meth:`to_dict` output (checkpoint resume)."""
        io_payload = payload.get("io")
        return cls(
            iteration=int(payload["iteration"]),  # type: ignore[arg-type]
            nodes_reduced=int(payload["nodes_reduced"]),  # type: ignore[arg-type]
            edges_reduced=int(payload["edges_reduced"]),  # type: ignore[arg-type]
            live_nodes=int(payload["live_nodes"]),  # type: ignore[arg-type]
            live_edges=int(payload["live_edges"]),  # type: ignore[arg-type]
            io=IOStats.from_dict(io_payload) if isinstance(io_payload, dict) else None,
        )


@dataclass
class RunStats:
    """Everything measured about one algorithm run."""

    algorithm: str
    iterations: int
    io: IOStats
    wall_seconds: float
    per_iteration: List[IterationStats] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """Serialize the full run record (per-iteration rows included)."""
        return {
            "algorithm": self.algorithm,
            "iterations": self.iterations,
            "io": self.io.to_dict(),
            "wall_seconds": self.wall_seconds,
            "per_iteration": [entry.to_dict() for entry in self.per_iteration],
            "extras": dict(self.extras),
        }


@dataclass
class SCCResult:
    """SCC labels for every node plus the run's measurements."""

    labels: np.ndarray
    num_sccs: int
    stats: RunStats

    @property
    def scc_sizes(self) -> np.ndarray:
        """Member count of every SCC."""
        return np.bincount(self.labels, minlength=self.num_sccs)

    def members(self, scc: int) -> np.ndarray:
        """Original node ids in SCC ``scc``."""
        return np.flatnonzero(self.labels == scc)

    def nontrivial_count(self) -> int:
        """SCCs with at least two members (what the paper counts)."""
        return int(np.count_nonzero(self.scc_sizes >= 2))


def canonicalize_labels(labels: np.ndarray) -> Tuple[np.ndarray, int]:
    """Relabel to contiguous ``0 .. k - 1`` by first appearance."""
    labels = np.asarray(labels, dtype=np.int64)
    unique, inverse = np.unique(labels, return_inverse=True)
    return inverse.astype(np.int64), int(unique.size)


class SCCAlgorithm(ABC):
    """Base class: timing, I/O diffing, and label canonicalisation."""

    #: Short name used in reports (e.g. ``"1PB-SCC"``).
    name: str = "abstract"

    # Per-run robustness context, installed by :meth:`run` before
    # :meth:`_run` and cleared afterwards.  Class-level defaults keep
    # direct ``_run`` calls (tests) working without any setup.
    _checkpoint: Optional[CheckpointSession] = None
    _injector: Optional[FaultInjector] = None
    _resume_payload: Optional[LoadedCheckpoint] = None
    _run_counter: Optional[IOCounter] = None
    _metrics: Optional[MetricsRegistry] = None
    _metrics_block_size: int = 0
    #: Parallel scan executor (``workers > 0``); ``None`` = serial scans.
    _parallel: Optional[object] = None

    def run(
        self,
        graph: DiskGraph,
        memory: Optional[MemoryModel] = None,
        time_limit: Optional[float] = None,
        tracer: Optional[Tracer] = None,
        prefetch_depth: int = 0,
        cache_blocks: int = 0,
        kernels: Union[str, ScanKernels, None] = None,
        fault_plan: Union[str, FaultPlan, None] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        workers: int = 0,
    ) -> SCCResult:
        """Compute all SCCs of ``graph``.

        Parameters
        ----------
        graph:
            The semi-external input; its edge file's I/O counter is
            diffed around the run, so only this run's I/Os are reported.
        memory:
            Budget ``M``; the paper's default (``4·(3|V|) + B``) when
            omitted.
        time_limit:
            Wall-clock limit in seconds; :class:`AlgorithmTimeout` is
            raised when exceeded (the paper's ``INF`` entries).
        tracer:
            Optional :class:`~repro.obs.tracer.Tracer`; when given, the
            run is wrapped in a root ``run`` span, the tracer is
            attached to the graph's I/O counter for per-file
            attribution, and each :class:`IterationStats` entry gains
            its I/O delta from the iteration spans.  The default no-op
            tracer leaves behavior byte-identical to an untraced run.
        prefetch_depth:
            When positive, edge scans pipeline their block reads
            through a background prefetcher of this depth.  Counted
            block reads are identical to a synchronous run; only wall
            time (and the ``prefetched``/``prefetch_stalls`` tallies)
            change.
        cache_blocks:
            When positive, install a :class:`~repro.io.prefetch.PageCache`
            of this many blocks shared by the graph's edge file and
            every scratch file derived from it.  Cache hits skip disk
            and are tallied as ``cache_hits``, never as block reads, so
            a cached run's read tally is the cacheless tally minus the
            avoided transfers.

        kernels:
            Scan-kernel backend for the per-batch edge classification:
            ``"vector"`` (default; snapshot-vectorised with an
            Euler-tour ancestor oracle) or ``"scalar"`` (the
            paper-literal per-edge loops).  Both backends make
            identical decisions, so labels, iteration counts and
            counted I/O do not depend on the choice — only CPU time
            does.  A :class:`~repro.kernels.ScanKernels` instance is
            also accepted (tests use this to inspect counters).

        fault_plan:
            Optional deterministic fault schedule (a
            :class:`~repro.io.faults.FaultPlan` or its spec string, e.g.
            ``"seed=7;read-error@12x2;crash@scan:1"``).  When omitted,
            the ``REPRO_FAULT_PLAN`` environment variable is consulted,
            so whole test suites can run under injected faults without
            touching call sites.  The injector is installed on the
            graph's I/O counter for the duration of the run only.
        checkpoint_dir:
            When given, the algorithm snapshots its O(|V|) state to
            ``<dir>/checkpoint.npz`` after every completed edge scan;
            a crashed run can then restart from that boundary.  The
            checkpoint is removed on successful completion.
        resume:
            With ``checkpoint_dir``, restore the saved state and
            continue from the last completed scan instead of starting
            over.  The saved I/O tally is added to the resumed run's
            stats so the totals cover the whole logical run.  Missing
            checkpoint → fresh start; mismatched checkpoint →
            :class:`~repro.exceptions.CheckpointError`.
        metrics:
            Optional :class:`~repro.obs.metrics.MetricsRegistry`.  When
            given, an observer on the graph's I/O counter feeds live
            block/cache/retry counters, progress gauges track the run's
            position in the paper's per-iteration scan budget, polled
            gauges expose cache occupancy and prefetch queue depth, and
            checkpoint save latency lands in a histogram.  The hooks
            only *read* event arguments — counted I/O and the computed
            partition are byte-identical with metrics on or off (the
            bench-regression gate enforces this).
        workers:
            When positive, fork this many scan worker processes and
            stripe edge-scan batches across them (see
            :mod:`repro.parallel`).  Workers classify against a
            shared-memory snapshot and the main process merges their
            results in batch order, so partitions, iteration counts and
            counted I/O are byte-identical to a serial run — the
            bench-regression gate re-runs its golden cases with
            ``--workers N`` to enforce exactly that.  A worker crash
            (real or planted via ``worker-crash@K`` in the fault plan)
            falls back to in-process classification for the affected
            stripes, tallied in the ``parallel_fallbacks`` extra.

        Both policies are installed on the graph's edge file for the
        duration of the run and restored afterwards, so sequential runs
        on a shared graph don't leak policy into each other.
        """
        if memory is None:
            memory = MemoryModel(graph.num_nodes, block_size=graph.block_size)
        if tracer is None:
            tracer = NULL_TRACER
        if prefetch_depth < 0 or cache_blocks < 0:
            raise ValueError("prefetch_depth and cache_blocks must be non-negative")
        kernel = resolve_kernels(kernels)
        deadline = Deadline(self.name, time_limit)
        plan = FaultPlan.parse(fault_plan) if isinstance(fault_plan, str) else fault_plan
        if plan is None:
            plan = FaultPlan.from_env()
        injector = FaultInjector(plan) if plan is not None else None
        if workers < 0:
            raise ValueError("workers must be non-negative")
        parallel_ctx = None
        if workers > 0:
            # Lazy import: serial runs never pay for multiprocessing, and
            # core modules stay free of repro.parallel dependencies.
            from repro.kernels.vector import VectorKernels
            from repro.parallel import ParallelContext, ParallelKernels

            parallel_ctx = ParallelContext(
                workers, graph.num_nodes, metrics=metrics, injector=injector
            )
            # Swap in the bundle-consuming kernels only when the caller
            # left kernel choice to us (name/None): an explicit instance
            # is honoured, and scalar kernels still benefit from the
            # frozen-map rewrite fan-out, which is kernel-independent.
            if not isinstance(kernels, ScanKernels) and type(kernel) is VectorKernels:
                kernel = ParallelKernels(parallel_ctx)
        session: Optional[CheckpointSession] = None
        loaded: Optional[LoadedCheckpoint] = None
        if checkpoint_dir is not None:
            session = CheckpointSession.for_graph(
                checkpoint_dir,
                self.name,
                graph.num_nodes,
                graph.num_edges,
                graph.block_size,
                graph.edge_file.path,
            )
            if resume:
                loaded = session.load()
                if loaded is not None:
                    logger.debug(
                        "%s: resuming from scan boundary %d",
                        self.name, loaded.boundary,
                    )
        logger.debug(
            "%s: starting on %d nodes / %d edges (M=%d, B=%d)",
            self.name, graph.num_nodes, graph.num_edges,
            memory.capacity, memory.block_size,
        )
        io_before = graph.counter.snapshot()
        restored_io = loaded.io if loaded is not None else None
        if session is not None:
            session.bind_io(
                lambda: graph.counter.since(io_before) + restored_io
                if restored_io is not None
                else graph.counter.since(io_before)
            )
        spans_before = len(tracer.spans)
        previous_cache = graph.edge_file.cache
        previous_depth = graph.edge_file.prefetch_depth
        if cache_blocks > 0:
            graph.edge_file.cache = PageCache(
                cache_blocks, block_size=graph.block_size
            )
        graph.edge_file.prefetch_depth = prefetch_depth
        run_attributes: Dict[str, object] = {
            "algorithm": self.name,
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "kernels": kernel.name,
        }
        # Additive schema: policy attributes appear only when a policy is
        # active, so policy-off traces match pre-prefetch goldens exactly.
        if prefetch_depth:
            run_attributes["prefetch_depth"] = prefetch_depth
        if cache_blocks:
            run_attributes["cache_blocks"] = cache_blocks
        if plan is not None:
            run_attributes["fault_plan"] = plan.to_spec()
        if workers:
            run_attributes["workers"] = workers
        if loaded is not None:
            run_attributes["resumed_from_boundary"] = loaded.boundary
        previous_injector = graph.counter.fault_injector
        self._checkpoint = session
        self._injector = injector
        self._resume_payload = loaded
        self._run_counter = graph.counter
        self._metrics = metrics
        self._metrics_block_size = graph.block_size
        self._parallel = parallel_ctx
        # The metrics observer goes on *before* the tracer attaches so
        # the tracer chains events through to it (Tracer.attach forwards
        # to the prior observer) — installed here, removed in `finally`.
        uninstall_metrics: Optional[Callable[[], None]] = None
        if metrics is not None:
            uninstall_metrics = install_io_metrics(metrics, graph.counter)
            metrics.gauge(
                "repro_run_info", "active run identity (1 while running)",
                algorithm=self.name,
            ).set(1.0)
            metrics.gauge(
                "repro_run_initial_edges", "edges in the input graph"
            ).set(float(graph.num_edges))
            metrics.gauge(
                "repro_run_scan_budget",
                "predicted full edge scans per iteration (paper budget)",
            ).set(float(SCAN_BUDGETS.get(self.name, 0)))
            self._note_progress(0, graph.num_nodes, graph.num_edges)
            metrics.register_callback(
                "repro_prefetch_queue_depth", live_prefetch_queue_depth,
                "blocks buffered in live prefetcher queues",
            )
            run_cache = graph.edge_file.cache
            if run_cache is not None:
                metrics.register_callback(
                    "repro_cache_resident_blocks",
                    lambda: float(len(run_cache)),
                    "decoded blocks resident in the page cache",
                )
                metrics.register_callback(
                    "repro_cache_capacity_blocks",
                    lambda: float(run_cache.capacity_blocks),
                    "configured page-cache capacity",
                )
            if session is not None:
                save_latency = metrics.histogram(
                    "repro_checkpoint_save_seconds",
                    "durable checkpoint save latency",
                )
                session.on_save = (
                    lambda boundary, seconds: save_latency.observe(seconds)
                )
        try:
            if injector is not None:
                graph.counter.fault_injector = injector
            with tracer.attach(graph.counter):
                with tracer.span("run", **run_attributes):
                    labels, iterations, per_iteration, extras = self._run(
                        graph, memory, deadline, tracer, kernel
                    )
        finally:
            if parallel_ctx is not None:
                parallel_ctx.close()
            graph.counter.fault_injector = previous_injector
            graph.edge_file.cache = previous_cache
            graph.edge_file.prefetch_depth = previous_depth
            if metrics is not None:
                metrics.unregister_callback("repro_prefetch_queue_depth")
                metrics.unregister_callback("repro_cache_resident_blocks")
                metrics.unregister_callback("repro_cache_capacity_blocks")
                metrics.gauge(
                    "repro_run_info", algorithm=self.name
                ).set(0.0)
            if session is not None:
                session.on_save = None
            if uninstall_metrics is not None:
                uninstall_metrics()
            self._checkpoint = None
            self._injector = None
            self._resume_payload = None
            self._run_counter = None
            self._metrics = None
            self._metrics_block_size = 0
            self._parallel = None
        labels, num_sccs = canonicalize_labels(labels)
        if tracer.enabled:
            per_iteration_io = iteration_io(tracer.spans[spans_before:])
            for entry in per_iteration:
                if entry.io is None:
                    entry.io = per_iteration_io.get(entry.iteration)
        run_io = graph.counter.since(io_before)
        if loaded is not None:
            run_io = run_io + loaded.io
            extras.setdefault("resumed_from_boundary", loaded.boundary)
        if session is not None:
            extras.setdefault("checkpoint_boundaries", session.boundaries_saved)
            session.complete()
        if parallel_ctx is not None:
            # Extras only — none of these feed the result fingerprint, so
            # a crashed worker's fallback count never perturbs the gate.
            extras.setdefault("workers", workers)
            extras.setdefault("parallel_batches", parallel_ctx.pool.batches)
            extras.setdefault("parallel_fallbacks", parallel_ctx.fallbacks)
            extras.setdefault("parallel_stale_bundles", parallel_ctx.stale_bundles)
        stats = RunStats(
            algorithm=self.name,
            iterations=iterations,
            io=run_io,
            wall_seconds=deadline.elapsed,
            per_iteration=per_iteration,
            extras=extras,
        )
        logger.debug(
            "%s: finished — %d SCCs, %d iterations, %d block I/Os, %.3fs",
            self.name, num_sccs, iterations, stats.io.total, stats.wall_seconds,
        )
        return SCCResult(labels=labels, num_sccs=num_sccs, stats=stats)

    @abstractmethod
    def _run(
        self,
        graph: DiskGraph,
        memory: MemoryModel,
        deadline: Deadline,
        tracer: Tracer,
        kernel: ScanKernels,
    ) -> Tuple[np.ndarray, int, List[IterationStats], Dict[str, object]]:
        """Algorithm body: return ``(labels, iterations, per_iter, extras)``."""

    # ------------------------------------------------------------------
    # parallel scan plumbing for subclasses
    # ------------------------------------------------------------------
    def _scan_stream(self, kernel, batches, kind="classify", publish=None):
        """Yield ``(batch, bundle)`` pairs for a classification scan.

        When the run has a parallel context *and* the kernel understands
        worker bundles (``parallel_ready``), batches are striped across
        the worker pool and each is yielded with its precomputed verdict
        bundle (or ``None`` after a worker crash).  Otherwise this
        degenerates to the serial scan with ``bundle=None`` — same
        batches, same order, same counted reads — so algorithm loops are
        written once against the ``(batch, bundle)`` shape.
        """
        ctx = self._parallel
        if ctx is not None and getattr(kernel, "parallel_ready", False):
            return ctx.classify(batches, kind=kind, publish=publish)
        # Serial path: ``publish`` is a ParallelKernels affordance; plain
        # kernels refresh their oracle inside the scan itself.
        return ((batch, None) for batch in batches)

    # ------------------------------------------------------------------
    # observability hooks for subclasses
    # ------------------------------------------------------------------
    def _note_progress(
        self, iteration: int, live_nodes: int, live_edges: int
    ) -> None:
        """Publish the run's position in the paper's cost model.

        Called by subclasses at every iteration boundary; the heartbeat
        and sampler read these gauges to project ETA against the
        per-iteration scan budget.  A no-op without a metrics registry,
        so untraced/unmetered runs pay one attribute check.
        """
        registry = self._metrics
        if registry is None:
            return
        registry.gauge(
            "repro_run_iteration", "completed iterations"
        ).set(float(iteration))
        registry.gauge(
            "repro_run_live_nodes", "nodes still unassigned to an SCC"
        ).set(float(live_nodes))
        registry.gauge(
            "repro_run_live_edges", "edges in the live working graph"
        ).set(float(live_edges))
        registry.gauge(
            "repro_run_blocks_per_scan",
            "blocks one full pass over the live edges moves",
        ).set(float(predicted_blocks_per_scan(
            live_edges, self._metrics_block_size
        )))

    # ------------------------------------------------------------------
    # robustness hooks for subclasses
    # ------------------------------------------------------------------
    @property
    def _boundary_active(self) -> bool:
        """Whether scan boundaries need any work (cheap hot-loop guard).

        Subclasses test this before materialising their state dicts, so
        runs without a checkpoint directory or fault plan pay nothing.
        """
        return self._checkpoint is not None or self._injector is not None

    def _scan_boundary(
        self,
        arrays: Optional[Dict[str, np.ndarray]] = None,
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        """Mark one completed edge scan: checkpoint, then maybe crash.

        Called by subclasses after every completed scan.  Ordering is
        the crash-consistency contract: the checkpoint is made durable
        *first*, so a :class:`~repro.io.faults.SimulatedCrash` planned
        at this boundary is survivable — resume restarts from this very
        snapshot.  A no-op when neither a checkpoint directory nor a
        fault plan is active.
        """
        if self._checkpoint is not None and arrays is not None:
            self._checkpoint.save(arrays, meta or {})
        if self._injector is not None:
            try:
                self._injector.maybe_crash()
            except SimulatedCrash:
                if self._run_counter is not None:
                    self._run_counter.record_fault(1)
                raise

    def _take_resume(self) -> Optional[LoadedCheckpoint]:
        """Claim the resume payload (once); ``None`` on a fresh run."""
        payload = self._resume_payload
        self._resume_payload = None
        return payload

    def _resume_edge_file(
        self, graph: DiskGraph, meta: Dict[str, object]
    ) -> Tuple[EdgeFile, bool]:
        """Reopen the working edge file a checkpoint references.

        Returns ``(edge_file, owns_current)``.  When the checkpointed
        run had already replaced the input with a reduced scratch file,
        that file must still exist — a missing scratch means the
        checkpoint outlived its working set and resuming is impossible.
        """
        owns = bool(meta.get("owns_current", False))
        if not owns:
            return graph.edge_file, False
        path = str(meta["current_path"])
        if not os.path.exists(path):
            raise CheckpointError(
                f"checkpoint references missing working file {path}"
            )
        edge_file = EdgeFile(
            path,
            counter=graph.counter,
            block_size=graph.block_size,
            cache=graph.edge_file.cache,
            prefetch_depth=graph.edge_file.prefetch_depth,
        )
        return edge_file, True

    def _retire_scratch(self, edge_file: EdgeFile) -> None:
        """Dispose of a replaced working file, checkpoint-safely.

        Without a checkpoint session this is a plain unlink.  With one,
        the most recent durable checkpoint may still reference the
        file, so deletion is deferred until the next checkpoint save
        (see :meth:`~repro.io.checkpoint.CheckpointSession.retire`).
        """
        if self._checkpoint is None:
            edge_file.unlink()
            return
        if edge_file.cache is not None:
            edge_file.cache.invalidate(edge_file.path)
        edge_file.close()
        self._checkpoint.retire(edge_file.path)
