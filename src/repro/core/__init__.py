"""The paper's SCC algorithms: baselines and contributions.

============  ==========================================================
Name          Algorithm
============  ==========================================================
``DFS-SCC``   Semi-external double-DFS baseline (paper Algorithms 1-2)
``EM-SCC``    Contraction heuristic baseline (Section 4; may not stop)
``2P-SCC``    Two-phase single-tree algorithm (Algorithms 3-5)
``1P-SCC``    Single-phase w/ early acceptance + rejection (Algs. 6-7)
``1PB-SCC``   1P-SCC plus batch edge reduction (Algorithm 8)
============  ==========================================================
"""

from repro.core.base import (
    Deadline,
    IterationStats,
    RunStats,
    SCCAlgorithm,
    SCCResult,
    canonicalize_labels,
)
from repro.core.dfs_scc import DFSSCC, build_dfs_tree
from repro.core.em_scc import EMSCC
from repro.core.one_phase import OnePhaseSCC
from repro.core.one_phase_batch import OnePhaseBatchSCC
from repro.core.two_phase import TwoPhaseSCC, tree_construction, tree_search
from repro.core.validate import (
    canonical_partition,
    certify_scc_partition,
    partitions_equal,
    validate_against_tarjan,
)

#: Factories for every algorithm keyed by its paper name.
ALGORITHMS = {
    "DFS-SCC": DFSSCC,
    "EM-SCC": EMSCC,
    "2P-SCC": TwoPhaseSCC,
    "1P-SCC": OnePhaseSCC,
    "1PB-SCC": OnePhaseBatchSCC,
}

__all__ = [
    "SCCAlgorithm",
    "SCCResult",
    "RunStats",
    "IterationStats",
    "Deadline",
    "canonicalize_labels",
    "DFSSCC",
    "EMSCC",
    "TwoPhaseSCC",
    "OnePhaseSCC",
    "OnePhaseBatchSCC",
    "ALGORITHMS",
    "build_dfs_tree",
    "tree_construction",
    "tree_search",
    "canonical_partition",
    "certify_scc_partition",
    "partitions_equal",
    "validate_against_tarjan",
]
