"""1P-SCC: the single-phase single-tree algorithm (paper Section 7).

One BR-Tree (parent + depth, ``2|V|`` memory) and repeated sequential
scans of a shrinking on-disk graph ``G'``.  Within a scan, every mapped
edge ``(u, v)`` between live supernodes is handled immediately:

* **backward edge** (``v`` an ancestor of ``u``) — contract the tree
  path it closes right away: *early acceptance* of a partial SCC
  (Algorithm 6, lines 5-8).
* **up-edge** (no ancestor relationship, ``depth(u) >= depth(v)``;
  because contraction is immediate, ``drank = depth``) — eliminate it
  with ``pushdown`` (lines 9-11).

Between scans the graph is reduced: if a supernode has grown past the
threshold ``tau`` the edge file is rewritten with endpoints mapped to
supernodes and internal edges dropped (*early acceptance* of the
graph, line 12), and every ``rejection_period`` iterations nodes whose
depth falls outside the ``[drank_min, drank_max]`` window of
cycle-candidate edges are finalised and removed (*early rejection*,
Algorithm 7).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.constants import (
    DEFAULT_REJECTION_PERIOD,
    DEFAULT_TAU_FRACTION,
    NODE_DTYPE,
)
from repro.core.base import Deadline, IterationStats, SCCAlgorithm, logger
from repro.exceptions import NonTermination
from repro.graph.diskgraph import DiskGraph
from repro.io.edgefile import EdgeFile
from repro.io.faults import SimulatedCrash
from repro.io.memory import MemoryModel
from repro.kernels import ScanKernels, resolve_kernels
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.spanning.tree import ContractibleTree


def naive_single_tree() -> "OnePhaseSCC":
    """Section 5's naive single-tree approach, for comparison.

    The paper sketches (and dismisses as infeasible at scale) a loop
    that contracts partial SCCs against a single BR-Tree with no graph
    reduction at all.  That is exactly 1P-SCC with both optimizations
    disabled; this factory names it so ablations read naturally.
    """
    algorithm = OnePhaseSCC(enable_acceptance=False, enable_rejection=False)
    algorithm.name = "Naive-1T"
    return algorithm


class OnePhaseSCC(SCCAlgorithm):
    """Paper Algorithm 6 (+7): 1P-SCC with the two graph reductions.

    Parameters
    ----------
    tau_fraction:
        Early-acceptance threshold as a fraction of ``|V|``; the graph
        is rewritten once some supernode holds at least this many nodes
        (paper default 0.5 %).
    rejection_period:
        Run early rejection every this many iterations (paper: 5).
    enable_acceptance / enable_rejection:
        Ablation switches; both on reproduces the paper's 1P-SCC, both
        off reproduces the naive single-tree loop of Section 5.
    """

    name = "1P-SCC"

    def __init__(
        self,
        tau_fraction: float = DEFAULT_TAU_FRACTION,
        rejection_period: int = DEFAULT_REJECTION_PERIOD,
        enable_acceptance: bool = True,
        enable_rejection: bool = True,
    ) -> None:
        if tau_fraction <= 0:
            raise ValueError("tau_fraction must be positive")
        if rejection_period <= 0:
            raise ValueError("rejection_period must be positive")
        self.tau_fraction = tau_fraction
        self.rejection_period = rejection_period
        self.enable_acceptance = enable_acceptance
        self.enable_rejection = enable_rejection

    # ------------------------------------------------------------------
    def _run(
        self,
        graph: DiskGraph,
        memory: MemoryModel,
        deadline: Deadline,
        tracer: Tracer,
        kernel: Optional[ScanKernels] = None,
    ) -> Tuple[np.ndarray, int, List[IterationStats], Dict[str, object]]:
        kernel = kernel if kernel is not None else resolve_kernels()
        n = graph.num_nodes
        memory.require_node_arrays(2)  # BR-Tree: parent + depth
        if n == 0:
            return np.empty(0, dtype=np.int64), 0, [], {}

        tau = max(2, int(math.ceil(self.tau_fraction * n)))
        max_iterations = 4 * n + 16
        resume = self._take_resume()
        if resume is not None:
            tree = ContractibleTree.from_state(resume.arrays)
            iteration = int(resume.meta["iteration"])  # type: ignore[arg-type]
            updated = bool(resume.meta["updated"])
            current, owns_current = self._resume_edge_file(graph, resume.meta)
            per_iteration = [
                IterationStats.from_dict(row)
                for row in resume.meta.get("per_iteration", [])  # type: ignore[union-attr]
            ]
        else:
            tree = ContractibleTree(n)
            current = graph.edge_file
            owns_current = False  # never rewrite the caller's input file
            per_iteration = []
            iteration = 0
            updated = True

        try:
            while updated:
                deadline.check()
                if iteration >= max_iterations:
                    raise NonTermination(self.name, iteration)
                iteration += 1
                updated = False
                live_before = tree.num_live()
                edges_before = current.num_edges
                largest_supernode = 0
                with tracer.span("iteration", iteration=iteration):
                    early_accepts = 0
                    pushdowns = 0
                    with tracer.span("edge-scan", iteration=iteration):
                        edges_classified = 0
                        for batch, bundle in self._scan_stream(
                            kernel, current.scan(), "classify",
                            publish=lambda: kernel.publish_snapshot(tree),
                        ):
                            deadline.check()
                            pairs, keepidx = self._candidates_idx(tree, batch)
                            if pairs.shape[0] == 0:
                                continue
                            edges_classified += pairs.shape[0]
                            if bundle is None:
                                accepts, pushed, biggest = (
                                    kernel.one_phase_scan(tree, pairs)
                                )
                            else:
                                accepts, pushed, biggest = (
                                    kernel.one_phase_scan(
                                        tree, pairs,
                                        bundle=bundle, keepidx=keepidx,
                                    )
                                )
                            early_accepts += accepts
                            pushdowns += pushed
                            if accepts or pushed:
                                updated = True
                            if biggest > largest_supernode:
                                largest_supernode = biggest
                        tracer.add("early-accepts", early_accepts)
                        tracer.add("pushdowns", pushdowns)
                        tracer.add("edges-classified", edges_classified)
                        for key, value in kernel.drain_counters().items():
                            tracer.add(key, value)

                    # The drank window of Section 7.2 is only sound when
                    # candidacy and depths are read against one consistent
                    # tree, so it is measured during the rewrite scan below
                    # (the tree is frozen there); rejection then applies it.
                    rejecting = (
                        self.enable_rejection
                        and iteration % self.rejection_period == 0
                    )
                    rejected_now = 0
                    if rejecting or (
                        self.enable_acceptance and largest_supernode >= tau
                    ):
                        current, owns_current, window = self._reduce_graph(
                            graph, tree, current, owns_current, iteration,
                            deadline, tracer,
                        )
                        if rejecting:
                            rejected_now = self._early_rejection(tree, window)
                    tracer.add("early-rejects", rejected_now)
                    tracer.add(
                        "edges-eliminated", edges_before - current.num_edges
                    )

                live_after = tree.num_live()
                logger.debug(
                    "1P-SCC iter %d: live=%d edges=%d rejected=%d",
                    iteration, live_after, current.num_edges, rejected_now,
                )
                per_iteration.append(
                    IterationStats(
                        iteration=iteration,
                        nodes_reduced=live_before - live_after,
                        edges_reduced=edges_before - current.num_edges,
                        live_nodes=live_after,
                        live_edges=current.num_edges,
                    )
                )
                self._note_progress(iteration, live_after, current.num_edges)
                if self._boundary_active:
                    self._scan_boundary(
                        arrays=tree.state_arrays(),
                        meta={
                            "iteration": iteration,
                            "updated": updated,
                            "current_path": current.path,
                            "owns_current": owns_current,
                            "per_iteration": [
                                row.to_dict() for row in per_iteration
                            ],
                        },
                    )
        except SimulatedCrash:
            # A simulated power loss: the working file stays on disk —
            # the last durable checkpoint references it for resume.
            raise
        except BaseException:
            if owns_current:
                current.unlink()
            raise
        if owns_current:
            current.unlink()

        labels, _ = tree.scc_labels()
        extras = {
            "tau": tau,
            "rejected_nodes": len(tree.rejected),
        }
        return labels, iteration, per_iteration, extras

    # ------------------------------------------------------------------
    @staticmethod
    def _candidates_idx(
        tree: ContractibleTree, batch: np.ndarray
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Map a raw edge batch to live cycle-candidate supernode pairs.

        Returns a ``(k, 2)`` int64 array of the ``(u, v)`` pairs with
        ``depth(u) >= depth(v)`` — the only edges that can be backward
        or up-edges — plus the surviving *raw row indices* (``None``
        when empty), which lets the parallel kernels align a worker's
        per-raw-edge verdict bundle with the filtered pairs.  Staying an
        array (no per-edge tuple boxing) keeps the pairs consumable by
        the vectorised kernels as-is.
        """
        us = tree.find_many(batch[:, 0].astype(np.int64))
        vs = tree.find_many(batch[:, 1].astype(np.int64))
        keep = (us != vs) & tree.live[us] & tree.live[vs]
        keep &= tree.depth[us] >= tree.depth[vs]
        if not keep.any():
            return np.empty((0, 2), dtype=np.int64), None
        keepidx = np.flatnonzero(keep)
        return np.column_stack((us[keepidx], vs[keepidx])), keepidx

    @staticmethod
    def _candidates(tree: ContractibleTree, batch: np.ndarray) -> np.ndarray:
        """The pairs of :meth:`_candidates_idx` without the index column."""
        return OnePhaseSCC._candidates_idx(tree, batch)[0]

    @staticmethod
    def _early_rejection(
        tree: ContractibleTree, window: Tuple[int, int]
    ) -> int:
        """Paper Algorithm 7: finalise nodes outside the drank window.

        Soundness rests on the window having been measured against a
        frozen tree (here: during the rewrite scan): every cycle
        contains an edge into its shallowest node and an edge out of its
        deepest node, both of which are cycle-candidate edges
        (``depth(u) >= depth(v)``), so any node of any cycle has
        ``drank_min <= depth <= drank_max``.
        """
        drank_min, drank_max = window
        live = tree.live_nodes()
        if drank_min > drank_max:
            # No cycle-candidate edges anywhere: every cycle must enter
            # its shallowest node via one, so no cycles remain and every
            # live supernode is final.
            outside = live
        else:
            outside = live[
                (tree.depth[live] < drank_min) | (tree.depth[live] > drank_max)
            ]
        for node in outside.tolist():
            tree.reject(node)
        return int(outside.size)

    def _reduce_graph(
        self,
        graph: DiskGraph,
        tree: ContractibleTree,
        current: EdgeFile,
        owns_current: bool,
        iteration: int,
        deadline: Optional[Deadline] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> Tuple[EdgeFile, bool, Tuple[int, int]]:
        """Rewrite ``G'``: map endpoints to supernodes, drop dead edges.

        The reduced file replaces the working file (never the caller's
        input); reads and writes are charged like any other pass.  The
        tree is not modified here, so this scan doubles as the
        consistent snapshot over which the Section 7.2 drank window
        (``drank_min``, ``drank_max``) is measured; it is returned for
        :meth:`_early_rejection`.
        """
        drank_min = np.iinfo(np.int64).max
        drank_max = np.iinfo(np.int64).min

        reduced = graph.derive_edge_file(f"work{iteration}")
        depth = tree.depth
        ctx = self._parallel
        with tracer.span("reduce-scan", iteration=iteration):
            if ctx is not None:
                # The tree is frozen for this scan, so publish the fully
                # resolved root map once and let workers do the mapping
                # and filtering; endpoints come back identical to the
                # local find_many path (find values are scan-invariant).
                root = tree.find_many(np.arange(tree.n, dtype=np.int64))
                stream = ctx.map_frozen(
                    current.scan(), root=root, live=tree.live
                )
            else:
                stream = ((batch, None) for batch in current.scan())
            for batch, mapped in stream:
                if deadline is not None:
                    deadline.check()
                if mapped is not None:
                    us = mapped["us"]
                    vs = mapped["vs"]
                    if us.size == 0:
                        continue
                else:
                    us = tree.find_many(batch[:, 0].astype(np.int64))
                    vs = tree.find_many(batch[:, 1].astype(np.int64))
                    keep = (us != vs) & tree.live[us] & tree.live[vs]
                    if not keep.any():
                        continue
                    us = us[keep]
                    vs = vs[keep]
                candidate = depth[us] >= depth[vs]
                if candidate.any():
                    # Per-batch (not per-edge) reductions of the window.
                    lo = int(depth[vs[candidate]].min())  # repro: allow[CPU001]
                    hi = int(depth[us[candidate]].max())  # repro: allow[CPU001]
                    if lo < drank_min:
                        drank_min = lo
                    if hi > drank_max:
                        drank_max = hi
                reduced.append(np.column_stack((us, vs)).astype(NODE_DTYPE))
            reduced.flush()
            if ctx is not None:
                for key, value in ctx.drain_counters().items():
                    tracer.add(key, value)
        if owns_current:
            # Checkpoint-safe disposal: the last durable checkpoint may
            # still reference this file (see _retire_scratch).
            self._retire_scratch(current)
        return reduced, True, (drank_min, drank_max)
