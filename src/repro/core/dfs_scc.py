"""DFS-SCC: the semi-external baseline of Sibeyn, Abello and Meyer.

Two semi-external DFS trees computed Kosaraju-Sharir style (paper
Algorithms 1 and 2).  Each DFS tree is obtained by starting from the
star rooted at the virtual node ``v0`` (children in a prescribed order)
and repeatedly scanning ``E(G)``, re-hanging the target of every
*forward-cross-edge* under its source until none remain — at which
point the spanning tree is a genuine DFS forest whose root order
respects the prescribed node order.

The second pass runs on the transposed graph with nodes ordered by
decreasing postorder of the first tree; the subtrees of ``v0`` are then
exactly the SCCs.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.constants import VIRTUAL_ROOT
from repro.core.base import Deadline, IterationStats, SCCAlgorithm
from repro.exceptions import NonTermination
from repro.graph.diskgraph import DiskGraph
from repro.io.edgefile import EdgeFile
from repro.io.extsort import reverse_edges
from repro.io.faults import SimulatedCrash
from repro.io.memory import MemoryModel
from repro.kernels import ScanKernels, resolve_kernels
from repro.obs.tracer import NULL_TRACER, Tracer


class _DFSTree:
    """A spanning forest with ordered children and preorder ranks."""

    def __init__(self, order: np.ndarray) -> None:
        n = order.shape[0]
        self.n = n
        self.parent = np.full(n, VIRTUAL_ROOT, dtype=np.int64)
        self.depth = np.ones(n, dtype=np.int64)
        self.pre = np.empty(n, dtype=np.int64)
        #: Subtree sizes, maintained on reparent so renumbering can skip
        #: whole subtrees positioned before the affected rank.
        self.size = np.ones(n, dtype=np.int64)
        # Ordered children: dicts preserve insertion order with O(1)
        # deletion, which matters under heavy re-hanging.
        self.children: List[Dict[int, None]] = [dict() for _ in range(n)]
        self.roots: Dict[int, None] = {int(v): None for v in order}
        self.pre[order] = np.arange(n, dtype=np.int64)
        #: Snapshot support for the Euler-tour ancestor oracle (same
        #: contract as :class:`~repro.spanning.tree.ContractibleTree`):
        #: ``epoch`` versions the structure, ``dirty`` marks nodes whose
        #: root path or depth changed since the last oracle rebuild.
        self.epoch = 0
        self.dirty = np.zeros(n, dtype=bool)
        self.track_dirty = False

    def oracle_roots(self) -> Iterator[int]:
        """Roots of the forest, for oracle rebuild traversals."""
        return iter(self.roots)

    # ------------------------------------------------------------------
    def is_ancestor(self, a: int, d: int) -> bool:
        """Whether ``a`` is an ancestor of ``d`` (depth-bounded walk)."""
        target = self.depth[a]
        node = d
        parent = self.parent
        depth = self.depth
        while node != VIRTUAL_ROOT and depth[node] > target:
            node = int(parent[node])
        return node == a

    def reparent(self, v: int, u: int) -> None:
        """Re-hang ``v`` (and its subtree) as the last child of ``u``."""
        moved = int(self.size[v])
        old = int(self.parent[v])
        if old == VIRTUAL_ROOT:
            self.roots.pop(v, None)
        else:
            self.children[old].pop(v, None)
            node = old
            while node != VIRTUAL_ROOT:
                self.size[node] -= moved
                node = int(self.parent[node])
        self.children[u][v] = None
        self.parent[v] = u
        node = u
        while node != VIRTUAL_ROOT:
            self.size[node] += moved
            node = int(self.parent[node])
        delta = int(self.depth[u]) + 1 - int(self.depth[v])
        if delta:
            stack = [v]
            while stack:
                node = stack.pop()
                self.depth[node] += delta
                stack.extend(self.children[node])
        # Only the moved subtree's root paths changed; ``u`` keeps its
        # own path and depth, so it stays clean for the oracle.
        self.epoch += 1
        if self.track_dirty:
            dirty = self.dirty
            stack = [v]
            while stack:
                node = stack.pop()
                dirty[node] = True
                stack.extend(self.children[node])

    def assign_preorder(self, pivot: int = 0) -> None:
        """Recompute preorder ranks by DFS honouring children order.

        Ranks strictly below ``pivot`` are known to be unchanged, so
        whole subtrees lying entirely before it are skipped using the
        maintained subtree sizes — the locality the paper's Fig. 3
        discussion ascribes to per-update renumbering.
        """
        rank = 0
        pre = self.pre
        size = self.size
        children = self.children
        for root in self.roots:
            stack = [root]
            while stack:
                node = stack.pop()
                node_size = int(size[node])
                if pre[node] == rank and rank + node_size <= pivot:
                    rank += node_size
                    continue
                pre[node] = rank
                rank += 1
                stack.extend(reversed(children[node]))

    def postorder(self) -> np.ndarray:
        """Nodes in DFS postorder (finish-time order)."""
        out = np.empty(self.n, dtype=np.int64)
        filled = 0
        for root in self.roots:
            stack: List[Tuple[int, bool]] = [(root, False)]
            while stack:
                node, processed = stack.pop()
                if processed:
                    out[filled] = node
                    filled += 1
                    continue
                stack.append((node, True))
                for child in reversed(self.children[node]):
                    stack.append((child, False))
        return out

    # ------------------------------------------------------------------
    def state_arrays(self) -> Dict[str, np.ndarray]:
        """The tree's checkpoint state, children/roots order included.

        Unlike :class:`~repro.spanning.tree.ContractibleTree`, children
        *order* is semantic here (preorder and postorder depend on it),
        so the ordered adjacency is flattened into a
        ``children_flat``/``children_offsets`` pair and the root dict
        into an ordered ``roots`` array.
        """
        flat: List[int] = []
        offsets = np.zeros(self.n + 1, dtype=np.int64)
        for v in range(self.n):
            flat.extend(self.children[v])
            offsets[v + 1] = len(flat)
        return {
            "parent": self.parent,
            "depth": self.depth,
            "pre": self.pre,
            "size": self.size,
            "children_flat": np.asarray(flat, dtype=np.int64),
            "children_offsets": offsets,
            "roots": np.fromiter(
                self.roots, dtype=np.int64, count=len(self.roots)
            ),
        }

    @classmethod
    def from_state(cls, arrays: Dict[str, np.ndarray]) -> "_DFSTree":
        """Rebuild a tree from :meth:`state_arrays` output."""
        n = int(arrays["parent"].shape[0])
        tree = cls(np.arange(n, dtype=np.int64))
        tree.parent[:] = arrays["parent"]
        tree.depth[:] = arrays["depth"]
        tree.pre[:] = arrays["pre"]
        tree.size[:] = arrays["size"]
        offsets = arrays["children_offsets"]
        flat = arrays["children_flat"]
        tree.children = [
            {int(c): None for c in flat[int(offsets[v]) : int(offsets[v + 1])]}
            for v in range(n)
        ]
        tree.roots = {int(v): None for v in arrays["roots"]}
        return tree

    def root_subtree_labels(self) -> np.ndarray:
        """Label every node by the root of its tree (Algorithm 2, line 5)."""
        labels = np.empty(self.n, dtype=np.int64)
        for index, root in enumerate(self.roots):
            stack = [root]
            while stack:
                node = stack.pop()
                labels[node] = index
                stack.extend(self.children[node])
        return labels


def build_dfs_tree(
    graph: DiskGraph,
    order: np.ndarray,
    deadline: Deadline,
    max_iterations: int | None = None,
    tracer: Tracer = NULL_TRACER,
    iteration_offset: int = 0,
    kernel: Optional[ScanKernels] = None,
    boundary: Optional[Callable[[_DFSTree, int, bool], None]] = None,
    resume: Optional[Tuple[_DFSTree, int, bool]] = None,
    stream: Optional[Callable] = None,
) -> Tuple[_DFSTree, int]:
    """Paper Algorithm 1: DFS tree by forward-cross-edge elimination.

    Returns the tree and the number of full edge scans used.  Each scan
    is traced as a ``dfs-scan`` span (numbered from ``iteration_offset``
    so the two passes of DFS-SCC do not collide) carrying a
    ``reparents`` counter.

    ``boundary``, when given, is invoked after every completed scan
    with ``(tree, iterations, updated)`` — the checkpoint/crash hook.
    ``resume`` restarts the loop from a restored
    ``(tree, iterations, updated)`` snapshot (``order`` is then ignored:
    the snapshot embeds the root and children order).  ``stream`` is
    :meth:`SCCAlgorithm._scan_stream` — the parallel ``(batch, bundle)``
    fan-out (DFS bundles are keyed on raw node ids, so no root mapping
    is involved).
    """
    kernel = kernel if kernel is not None else resolve_kernels()
    if resume is not None:
        tree, iterations, updated = resume
    else:
        tree = _DFSTree(order)
        iterations = 0
        updated = True
    if max_iterations is None:
        max_iterations = 2 * graph.num_nodes + 4
    while updated:
        deadline.check()
        if iterations >= max_iterations:
            raise NonTermination("DFS-Tree", iterations)
        updated = False
        iterations += 1
        reparents = 0
        with tracer.span(
            "dfs-scan", iteration=iterations + iteration_offset
        ):
            edges_classified = 0
            if stream is not None:
                batches = stream(
                    kernel, graph.scan_edges(), "dfs",
                    lambda: kernel.publish_snapshot(tree),
                )
            else:
                batches = ((batch, None) for batch in graph.scan_edges())
            for batch, bundle in batches:
                deadline.check()
                edges_classified += batch.shape[0]
                if bundle is None:
                    moved = kernel.dfs_scan(tree, batch, deadline)
                else:
                    moved = kernel.dfs_scan(
                        tree, batch, deadline, bundle=bundle
                    )
                if moved:
                    updated = True
                    reparents += moved
            tracer.add("reparents", reparents)
            tracer.add("edges-classified", edges_classified)
            for key, value in kernel.drain_counters().items():
                tracer.add(key, value)
        if boundary is not None:
            boundary(tree, iterations, updated)
    return tree, iterations


class DFSSCC(SCCAlgorithm):
    """Paper Algorithm 2: two semi-external DFS passes (Kosaraju style)."""

    name = "DFS-SCC"

    def _run(
        self,
        graph: DiskGraph,
        memory: MemoryModel,
        deadline: Deadline,
        tracer: Tracer,
        kernel: Optional[ScanKernels] = None,
    ) -> Tuple[np.ndarray, int, List[IterationStats], Dict[str, object]]:
        kernel = kernel if kernel is not None else resolve_kernels()
        n = graph.num_nodes
        memory.require_node_arrays(3)
        if n == 0:
            return np.empty(0, dtype=np.int64), 0, [], {}

        natural = np.arange(n, dtype=np.int64)
        resume = self._take_resume()
        phase = "first"
        pass_resume: Optional[Tuple[_DFSTree, int, bool]] = None
        first_scans = 0
        if resume is not None:
            phase = str(resume.meta["phase"])
            pass_resume = (
                _DFSTree.from_state(resume.arrays),
                int(resume.meta["scans"]),  # type: ignore[arg-type]
                bool(resume.meta["updated"]),
            )
            if phase == "second":
                first_scans = int(resume.meta["first_scans"])  # type: ignore[arg-type]

        def pass_boundary(
            phase_name: str, extra: Dict[str, object]
        ) -> Callable[[_DFSTree, int, bool], None]:
            def callback(t: _DFSTree, scans: int, updated: bool) -> None:
                meta: Dict[str, object] = {
                    "phase": phase_name, "scans": scans, "updated": updated,
                }
                meta.update(extra)
                self._scan_boundary(arrays=t.state_arrays(), meta=meta)

            return callback

        if phase == "first":
            with tracer.span("first-pass"):
                first_tree, first_scans = build_dfs_tree(
                    graph, natural, deadline, tracer=tracer, kernel=kernel,
                    boundary=(
                        pass_boundary("first", {})
                        if self._boundary_active else None
                    ),
                    resume=pass_resume,
                    stream=self._scan_stream,
                )
            decreasing_post = first_tree.postorder()[::-1]
            second_resume: Optional[Tuple[_DFSTree, int, bool]] = None
            self._note_progress(first_scans, n, graph.num_edges)
        else:
            # The restored second tree embeds its own root/children
            # order, so the first pass (and its postorder) is not redone.
            decreasing_post = natural
            second_resume = pass_resume

        rev_path = graph.scratch_path("rev")
        if second_resume is not None and os.path.exists(rev_path):
            # The transpose survived the crash; reuse it instead of
            # paying the reversal scan again.
            reversed_file = EdgeFile(
                rev_path,
                counter=graph.counter,
                block_size=graph.block_size,
                cache=graph.edge_file.cache,
                prefetch_depth=graph.edge_file.prefetch_depth,
            )
        else:
            with tracer.span("transpose"):
                deadline.check()
                reversed_file = reverse_edges(
                    graph.edge_file, out_path=rev_path
                )
        try:
            reversed_graph = DiskGraph(n, reversed_file)
            with tracer.span("second-pass"):
                second_tree, second_scans = build_dfs_tree(
                    reversed_graph, decreasing_post, deadline,
                    tracer=tracer, iteration_offset=first_scans,
                    kernel=kernel,
                    boundary=(
                        pass_boundary("second", {"first_scans": first_scans})
                        if self._boundary_active else None
                    ),
                    resume=second_resume,
                    stream=self._scan_stream,
                )
            labels = second_tree.root_subtree_labels()
        except SimulatedCrash:
            # A simulated power loss: keep the transposed file on disk —
            # the resumed second pass reuses it.
            raise
        except BaseException:
            reversed_file.unlink()
            raise
        reversed_file.unlink()

        iterations = first_scans + second_scans
        self._note_progress(iterations, n, graph.num_edges)
        per_iteration = [
            IterationStats(
                iteration=i + 1,
                nodes_reduced=0,
                edges_reduced=0,
                live_nodes=n,
                live_edges=graph.num_edges,
            )
            for i in range(iterations)
        ]
        extras = {"first_pass_scans": first_scans, "second_pass_scans": second_scans}
        return labels, iterations, per_iteration, extras
