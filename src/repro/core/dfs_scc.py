"""DFS-SCC: the semi-external baseline of Sibeyn, Abello and Meyer.

Two semi-external DFS trees computed Kosaraju-Sharir style (paper
Algorithms 1 and 2).  Each DFS tree is obtained by starting from the
star rooted at the virtual node ``v0`` (children in a prescribed order)
and repeatedly scanning ``E(G)``, re-hanging the target of every
*forward-cross-edge* under its source until none remain — at which
point the spanning tree is a genuine DFS forest whose root order
respects the prescribed node order.

The second pass runs on the transposed graph with nodes ordered by
decreasing postorder of the first tree; the subtrees of ``v0`` are then
exactly the SCCs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.constants import VIRTUAL_ROOT
from repro.core.base import Deadline, IterationStats, SCCAlgorithm
from repro.exceptions import NonTermination
from repro.graph.diskgraph import DiskGraph
from repro.io.extsort import reverse_edges
from repro.io.memory import MemoryModel
from repro.kernels import ScanKernels, resolve_kernels
from repro.obs.tracer import NULL_TRACER, Tracer


class _DFSTree:
    """A spanning forest with ordered children and preorder ranks."""

    def __init__(self, order: np.ndarray) -> None:
        n = order.shape[0]
        self.n = n
        self.parent = np.full(n, VIRTUAL_ROOT, dtype=np.int64)
        self.depth = np.ones(n, dtype=np.int64)
        self.pre = np.empty(n, dtype=np.int64)
        #: Subtree sizes, maintained on reparent so renumbering can skip
        #: whole subtrees positioned before the affected rank.
        self.size = np.ones(n, dtype=np.int64)
        # Ordered children: dicts preserve insertion order with O(1)
        # deletion, which matters under heavy re-hanging.
        self.children: List[Dict[int, None]] = [dict() for _ in range(n)]
        self.roots: Dict[int, None] = {int(v): None for v in order}
        self.pre[order] = np.arange(n, dtype=np.int64)
        #: Snapshot support for the Euler-tour ancestor oracle (same
        #: contract as :class:`~repro.spanning.tree.ContractibleTree`):
        #: ``epoch`` versions the structure, ``dirty`` marks nodes whose
        #: root path or depth changed since the last oracle rebuild.
        self.epoch = 0
        self.dirty = np.zeros(n, dtype=bool)
        self.track_dirty = False

    def oracle_roots(self) -> Iterator[int]:
        """Roots of the forest, for oracle rebuild traversals."""
        return iter(self.roots)

    # ------------------------------------------------------------------
    def is_ancestor(self, a: int, d: int) -> bool:
        """Whether ``a`` is an ancestor of ``d`` (depth-bounded walk)."""
        target = self.depth[a]
        node = d
        parent = self.parent
        depth = self.depth
        while node != VIRTUAL_ROOT and depth[node] > target:
            node = int(parent[node])
        return node == a

    def reparent(self, v: int, u: int) -> None:
        """Re-hang ``v`` (and its subtree) as the last child of ``u``."""
        moved = int(self.size[v])
        old = int(self.parent[v])
        if old == VIRTUAL_ROOT:
            self.roots.pop(v, None)
        else:
            self.children[old].pop(v, None)
            node = old
            while node != VIRTUAL_ROOT:
                self.size[node] -= moved
                node = int(self.parent[node])
        self.children[u][v] = None
        self.parent[v] = u
        node = u
        while node != VIRTUAL_ROOT:
            self.size[node] += moved
            node = int(self.parent[node])
        delta = int(self.depth[u]) + 1 - int(self.depth[v])
        if delta:
            stack = [v]
            while stack:
                node = stack.pop()
                self.depth[node] += delta
                stack.extend(self.children[node])
        # Only the moved subtree's root paths changed; ``u`` keeps its
        # own path and depth, so it stays clean for the oracle.
        self.epoch += 1
        if self.track_dirty:
            dirty = self.dirty
            stack = [v]
            while stack:
                node = stack.pop()
                dirty[node] = True
                stack.extend(self.children[node])

    def assign_preorder(self, pivot: int = 0) -> None:
        """Recompute preorder ranks by DFS honouring children order.

        Ranks strictly below ``pivot`` are known to be unchanged, so
        whole subtrees lying entirely before it are skipped using the
        maintained subtree sizes — the locality the paper's Fig. 3
        discussion ascribes to per-update renumbering.
        """
        rank = 0
        pre = self.pre
        size = self.size
        children = self.children
        for root in self.roots:
            stack = [root]
            while stack:
                node = stack.pop()
                node_size = int(size[node])
                if pre[node] == rank and rank + node_size <= pivot:
                    rank += node_size
                    continue
                pre[node] = rank
                rank += 1
                stack.extend(reversed(children[node]))

    def postorder(self) -> np.ndarray:
        """Nodes in DFS postorder (finish-time order)."""
        out = np.empty(self.n, dtype=np.int64)
        filled = 0
        for root in self.roots:
            stack: List[Tuple[int, bool]] = [(root, False)]
            while stack:
                node, processed = stack.pop()
                if processed:
                    out[filled] = node
                    filled += 1
                    continue
                stack.append((node, True))
                for child in reversed(self.children[node]):
                    stack.append((child, False))
        return out

    def root_subtree_labels(self) -> np.ndarray:
        """Label every node by the root of its tree (Algorithm 2, line 5)."""
        labels = np.empty(self.n, dtype=np.int64)
        for index, root in enumerate(self.roots):
            stack = [root]
            while stack:
                node = stack.pop()
                labels[node] = index
                stack.extend(self.children[node])
        return labels


def build_dfs_tree(
    graph: DiskGraph,
    order: np.ndarray,
    deadline: Deadline,
    max_iterations: int | None = None,
    tracer: Tracer = NULL_TRACER,
    iteration_offset: int = 0,
    kernel: Optional[ScanKernels] = None,
) -> Tuple[_DFSTree, int]:
    """Paper Algorithm 1: DFS tree by forward-cross-edge elimination.

    Returns the tree and the number of full edge scans used.  Each scan
    is traced as a ``dfs-scan`` span (numbered from ``iteration_offset``
    so the two passes of DFS-SCC do not collide) carrying a
    ``reparents`` counter.
    """
    kernel = kernel if kernel is not None else resolve_kernels()
    tree = _DFSTree(order)
    if max_iterations is None:
        max_iterations = 2 * graph.num_nodes + 4
    iterations = 0
    updated = True
    while updated:
        deadline.check()
        if iterations >= max_iterations:
            raise NonTermination("DFS-Tree", iterations)
        updated = False
        iterations += 1
        reparents = 0
        with tracer.span(
            "dfs-scan", iteration=iterations + iteration_offset
        ):
            edges_classified = 0
            for batch in graph.scan_edges():
                deadline.check()
                edges_classified += batch.shape[0]
                moved = kernel.dfs_scan(tree, batch, deadline)
                if moved:
                    updated = True
                    reparents += moved
            tracer.add("reparents", reparents)
            tracer.add("edges-classified", edges_classified)
            for key, value in kernel.drain_counters().items():
                tracer.add(key, value)
    return tree, iterations


class DFSSCC(SCCAlgorithm):
    """Paper Algorithm 2: two semi-external DFS passes (Kosaraju style)."""

    name = "DFS-SCC"

    def _run(
        self,
        graph: DiskGraph,
        memory: MemoryModel,
        deadline: Deadline,
        tracer: Tracer,
        kernel: Optional[ScanKernels] = None,
    ) -> Tuple[np.ndarray, int, List[IterationStats], Dict[str, object]]:
        kernel = kernel if kernel is not None else resolve_kernels()
        n = graph.num_nodes
        memory.require_node_arrays(3)
        if n == 0:
            return np.empty(0, dtype=np.int64), 0, [], {}

        natural = np.arange(n, dtype=np.int64)
        with tracer.span("first-pass"):
            first_tree, first_scans = build_dfs_tree(
                graph, natural, deadline, tracer=tracer, kernel=kernel
            )
        decreasing_post = first_tree.postorder()[::-1]

        with tracer.span("transpose"):
            deadline.check()
            reversed_file = reverse_edges(
                graph.edge_file, out_path=graph.scratch_path("rev")
            )
        try:
            reversed_graph = DiskGraph(n, reversed_file)
            with tracer.span("second-pass"):
                second_tree, second_scans = build_dfs_tree(
                    reversed_graph, decreasing_post, deadline,
                    tracer=tracer, iteration_offset=first_scans,
                    kernel=kernel,
                )
            labels = second_tree.root_subtree_labels()
        finally:
            reversed_file.unlink()

        iterations = first_scans + second_scans
        per_iteration = [
            IterationStats(
                iteration=i + 1,
                nodes_reduced=0,
                edges_reduced=0,
                live_nodes=n,
                live_edges=graph.num_edges,
            )
            for i in range(iterations)
        ]
        extras = {"first_pass_scans": first_scans, "second_pass_scans": second_scans}
        return labels, iterations, per_iteration, extras
