"""The paper's analytic cost model (Sections 2, 6 and 7.4).

These functions reproduce, as code, every closed-form expression the
paper states — the classic I/O-model primitives, the per-algorithm
scan bounds, and the Section 7.4 savings formulas for early
acceptance/rejection.  Tests compare the bounds against the I/O counts
actually measured by the instrumented runs.

All quantities are in the paper's units: ``n = |V|``, ``m = |E|``,
``B`` the block size in bytes, ``b`` bytes per node id (4), an edge
record costing ``2b``.
"""

from __future__ import annotations

import math

from repro.constants import EDGE_BYTES, NODE_BYTES


def blocks_for_edges(m: int, block_size: int) -> int:
    """Blocks occupied by ``m`` edge records (one scan's read count)."""
    if m < 0:
        raise ValueError("m must be non-negative")
    return -(-m * EDGE_BYTES // block_size)


def scan_ios(n_items: int, block_size: int, item_bytes: int = EDGE_BYTES) -> int:
    """``scan(n) = Θ(n/B)`` of the I/O model (Aggarwal & Vitter)."""
    return -(-n_items * item_bytes // block_size)


def sort_ios(
    n_items: int,
    memory_bytes: int,
    block_size: int,
    item_bytes: int = EDGE_BYTES,
) -> float:
    """``sort(n) = Θ((n/B) · log_{M/B}(n/B))`` of the I/O model."""
    blocks = max(1, scan_ios(n_items, block_size, item_bytes))
    fan = max(2, memory_bytes // block_size)
    return blocks * max(1.0, math.log(blocks, fan))


# ----------------------------------------------------------------------
# Per-algorithm worst-case scan bounds (Sections 4-6).
# ----------------------------------------------------------------------
def dfs_tree_io_bound(depth: int, m: int, block_size: int) -> int:
    """One semi-external DFS tree: ``depth(G) · |E|/B`` (Section 4)."""
    return depth * blocks_for_edges(m, block_size)


def dfs_scc_io_bound(depth: int, m: int, block_size: int) -> int:
    """DFS-SCC: two DFS trees plus reversing the edge file."""
    reversal = 2 * blocks_for_edges(m, block_size)
    return 2 * dfs_tree_io_bound(depth, m, block_size) + reversal


def two_phase_io_bound(depth: int, m: int, block_size: int) -> int:
    """2P-SCC: ``depth(G) · |E|/B`` construction + one search scan."""
    return (depth + 1) * blocks_for_edges(m, block_size)


def buchsbaum_io_estimate(n: int, m: int, block_size: int) -> float:
    """The theoretical bound ``O((|V| + |E|/B) log2 (|V|/B) + sort(|E|))``
    the paper quotes to argue impracticality (Section 2): ~1.57G I/Os
    for one DFS on WEBSPAM-UK2007 versus ~4M for the paper's approach."""
    if n <= 0:
        return 0.0
    blocks = m * EDGE_BYTES / block_size
    log_term = math.log2(max(2.0, n / block_size))
    return (n + blocks) * log_term + sort_ios(m, 1 << 30, block_size)


# ----------------------------------------------------------------------
# Section 7.4: graph-reduction savings.
# ----------------------------------------------------------------------
def reduction_io_savings(
    nodes_per_iteration: float,
    edges_per_iteration: float,
    iterations: int,
    block_size: int,
    node_bytes: int = NODE_BYTES,
) -> float:
    """Block I/Os saved by pruning ``P`` nodes and ``Q`` edges per iteration.

    The paper's formula: ``Σ_{i=1..L} (P + 2Q)(L - i) b / B
    = (P + 2Q) · L(L-1)/2 · b/B``.
    """
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    p, q, length = nodes_per_iteration, edges_per_iteration, iterations
    return (p + 2 * q) * (length - 1) * length / 2 * node_bytes / block_size


def extra_edges_loadable(nodes_per_iteration: float, iterations: int) -> float:
    """Extra batch capacity earned by freeing node slots (Section 7.4).

    ``Σ_{i=1..L} (P/2)(i-1) = P·L(L-1)/4`` additional edges across the
    run: every freed node id (``b`` bytes) buys half an edge record
    (``2b`` bytes) of batch headroom.
    """
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    p, length = nodes_per_iteration, iterations
    return p * length * (length - 1) / 4


def batch_cpu_cost(n: int, m: int, beta: int) -> int:
    """1PB-SCC's in-memory CPU model (Section 7.3): ``O(m + β·n)``.

    Each of the ``β`` batches runs Kosaraju on ``n`` nodes and
    ``n - 1 + m/β`` edges; summing gives ``m + β·n`` up to constants.
    """
    if beta <= 0:
        raise ValueError("beta must be positive")
    return m + beta * n


def optimal_batch_count(n: int, m: int) -> int:
    """The β that balances Section 7.3's trade-off: ``β = m/n`` (so each
    batch holds about ``n`` edges), giving total CPU ``O(m)``."""
    if n <= 0:
        raise ValueError("n must be positive")
    return max(1, m // n)
