"""2P-SCC: the two-phase single-tree algorithm (paper Section 6).

Phase 1, *Tree-Construction* (Algorithm 4), builds a BR+-Tree: starting
from the star below the virtual root, every sequential scan of ``E(G)``
eliminates up-edges (Definition 5.1) either by recording a backward link
``(u, dlink(v))`` — when ``dlink(v)`` is already an ancestor of ``u``,
meaning ``u`` lies on a cycle — or by the ``pushdown`` reshaping
operation.  ``drank``/``dlink`` are refreshed once per scan, exactly the
paper's ``update-drank``.

Phase 2, *Tree-Search* (Algorithm 5), performs one more sequential scan:
every backward edge (including the links stored in the BR+-Tree)
contracts the tree path it closes, and the contracted supernodes are the
SCCs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.constants import VIRTUAL_ROOT
from repro.core.base import Deadline, IterationStats, SCCAlgorithm
from repro.exceptions import NonTermination
from repro.graph.diskgraph import DiskGraph
from repro.io.memory import MemoryModel
from repro.kernels import ScanKernels, resolve_kernels
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.spanning.brtree import BRPlusTree


def tree_construction(
    graph: DiskGraph,
    deadline: Deadline,
    max_iterations: int | None = None,
    tracer: Tracer = NULL_TRACER,
    kernel: Optional[ScanKernels] = None,
    boundary: Optional[Callable[[BRPlusTree, int, bool], None]] = None,
    resume: Optional[Tuple[BRPlusTree, int, bool]] = None,
    progress: Optional[Callable[[int], None]] = None,
) -> Tuple[BRPlusTree, int]:
    """Paper Algorithm 4: build a BR+-Tree free of up-edges.

    Returns the tree and the number of full edge scans performed.  Each
    scan is traced as a ``pushdown-scan`` span (with ``pushdowns`` and
    ``backward-links`` counters) under one ``tree-construction`` span.

    ``boundary``, when given, is invoked after every completed scan
    (post ``update_drank``) with ``(tree, scans, updated)`` — the
    checkpoint/crash hook.  ``resume`` restarts the loop from a
    restored ``(tree, scans, updated)`` snapshot instead of the initial
    star (the tree's drank/dlink are part of the snapshot, so no
    refresh is needed).  ``progress`` is invoked with the completed scan
    count after every scan — the live-metrics position hook.
    """
    kernel = kernel if kernel is not None else resolve_kernels()
    n = graph.num_nodes
    if resume is not None:
        tree, scans, updated = resume
    else:
        tree = BRPlusTree(n)
        tree.update_drank()
        scans = 0
        updated = True
    if max_iterations is None:
        max_iterations = n + 2
    with tracer.span("tree-construction"):
        while updated:
            deadline.check()
            if scans >= max_iterations:
                raise NonTermination("Tree-Construction", scans)
            updated = False
            scans += 1
            pushdowns = 0
            backward_links = 0
            with tracer.span("pushdown-scan", iteration=scans):
                edges_classified = 0
                for batch in graph.scan_edges():
                    deadline.check()
                    us = batch[:, 0].astype(np.int64)
                    vs = batch[:, 1].astype(np.int64)
                    # Vectorised skip: tree edges, self-loops, and edges that can
                    # be neither backward (needs depth(v) < depth(u)) nor up-edges
                    # (needs drank(u) >= drank(v)).
                    depth = tree.depth
                    drank = tree.drank
                    keep = (us != vs) & (tree.parent[vs] != us)
                    keep &= (drank[us] >= drank[vs]) | (depth[vs] < depth[us])
                    if not keep.any():
                        continue
                    us = us[keep]
                    vs = vs[keep]
                    edges_classified += us.shape[0]
                    changed, pushed, blinked = kernel.construction_scan(
                        tree, us, vs
                    )
                    if changed:
                        updated = True
                    pushdowns += pushed
                    backward_links += blinked
                tracer.add("pushdowns", pushdowns)
                tracer.add("backward-links", backward_links)
                tracer.add("edges-classified", edges_classified)
                for key, value in kernel.drain_counters().items():
                    tracer.add(key, value)
            tree.update_drank()
            if progress is not None:
                progress(scans)
            if boundary is not None:
                boundary(tree, scans, updated)
    return tree, scans


def tree_search(
    graph: DiskGraph,
    tree: BRPlusTree,
    deadline: Deadline,
    tracer: Tracer = NULL_TRACER,
    scan_index: int = 1,
    kernel: Optional[ScanKernels] = None,
    stream: Optional[Callable] = None,
) -> int:
    """Paper Algorithm 5: contract backward-edge paths in one scan.

    Contracts in-place on ``tree``; returns the number of scans (1).
    The backward links stored in the BR+-Tree are contracted first —
    they stand in for the up-edges deleted during construction.  The
    single edge scan is traced as a ``search-scan`` span (numbered
    ``scan_index`` so it lines up with the run's iteration record)
    under one ``tree-search`` span.

    ``stream``, when given, is :meth:`SCCAlgorithm._scan_stream` — the
    parallel executor's ``(batch, bundle)`` fan-out.  Tree-Construction
    scans stay serial by design (each batch's pushdowns reshape what the
    next batch classifies, leaving no precomputable verdicts), so 2P's
    parallelism lives entirely in this search scan.
    """
    kernel = kernel if kernel is not None else resolve_kernels()
    with tracer.span("tree-search"):
        blink_contractions = 0
        for u in np.flatnonzero(tree.blink != VIRTUAL_ROOT).tolist():
            deadline.check()
            target = int(tree.blink[u])
            ru = tree.find(u)
            rb = tree.find(target)
            if ru != rb and tree.is_ancestor(rb, ru):
                tree.contract_path(ru, rb)
                blink_contractions += 1
        tracer.add("blink-contractions", blink_contractions)

        contractions = 0
        with tracer.span("search-scan", iteration=scan_index):
            edges_classified = 0
            if stream is not None:
                batches = stream(
                    kernel, graph.scan_edges(), "classify",
                    lambda: kernel.publish_snapshot(tree),
                )
            else:
                batches = ((batch, None) for batch in graph.scan_edges())
            for batch, bundle in batches:
                deadline.check()
                us = tree.find_many(batch[:, 0].astype(np.int64))
                vs = tree.find_many(batch[:, 1].astype(np.int64))
                keep = (us != vs) & (tree.depth[vs] < tree.depth[us])
                if not keep.any():
                    continue
                keepidx = np.flatnonzero(keep)
                pairs = np.column_stack((us[keepidx], vs[keepidx]))
                edges_classified += pairs.shape[0]
                if bundle is None:
                    contractions += kernel.search_scan(tree, pairs)
                else:
                    contractions += kernel.search_scan(
                        tree, pairs, bundle=bundle, keepidx=keepidx
                    )
            tracer.add("contractions", contractions)
            tracer.add("edges-classified", edges_classified)
            for key, value in kernel.drain_counters().items():
                tracer.add(key, value)
    return 1


class TwoPhaseSCC(SCCAlgorithm):
    """Paper Algorithm 3: Tree-Construction followed by Tree-Search."""

    name = "2P-SCC"

    def _run(
        self,
        graph: DiskGraph,
        memory: MemoryModel,
        deadline: Deadline,
        tracer: Tracer,
        kernel: Optional[ScanKernels] = None,
    ) -> Tuple[np.ndarray, int, List[IterationStats], Dict[str, object]]:
        kernel = kernel if kernel is not None else resolve_kernels()
        n = graph.num_nodes
        memory.require_node_arrays(3)  # BR+-Tree: parent, depth, blink
        if n == 0:
            return np.empty(0, dtype=np.int64), 0, [], {}

        resume = self._take_resume()
        construction_resume: Optional[Tuple[BRPlusTree, int, bool]] = None
        phase = "construction"
        construction_scans = 0
        search_scans = 0
        tree: Optional[BRPlusTree] = None
        if resume is not None:
            tree = BRPlusTree.from_state(resume.arrays)
            phase = str(resume.meta["phase"])
            construction_scans = int(resume.meta["scans"])  # type: ignore[arg-type]
            if phase == "construction":
                construction_resume = (
                    tree, construction_scans, bool(resume.meta["updated"])
                )

        if phase == "search-done":
            # The crash hit after the search scan completed: the
            # restored tree already holds the final contraction.
            assert tree is not None
            search_scans = int(resume.meta["search_scans"])  # type: ignore[arg-type,union-attr]
        else:
            def construction_boundary(
                t: BRPlusTree, scans: int, updated: bool
            ) -> None:
                self._scan_boundary(
                    arrays=t.state_arrays(),
                    meta={
                        "phase": "construction",
                        "scans": scans,
                        "updated": updated,
                    },
                )

            tree, construction_scans = tree_construction(
                graph, deadline, tracer=tracer, kernel=kernel,
                boundary=construction_boundary if self._boundary_active else None,
                resume=construction_resume,
                progress=lambda scans: self._note_progress(
                    scans, n, graph.num_edges
                ),
            )
            search_scans = tree_search(
                graph, tree, deadline, tracer=tracer,
                scan_index=construction_scans + 1, kernel=kernel,
                stream=self._scan_stream,
            )
            self._note_progress(
                construction_scans + search_scans, n, graph.num_edges
            )
            if self._boundary_active:
                self._scan_boundary(
                    arrays=tree.state_arrays(),
                    meta={
                        "phase": "search-done",
                        "scans": construction_scans,
                        "search_scans": search_scans,
                    },
                )
        labels, _ = tree.scc_labels()

        iterations = construction_scans + search_scans
        per_iteration = [
            IterationStats(
                iteration=i + 1,
                nodes_reduced=0,
                edges_reduced=0,
                live_nodes=n,
                live_edges=graph.num_edges,
            )
            for i in range(iterations)
        ]
        extras = {
            "construction_scans": construction_scans,
            "search_scans": search_scans,
        }
        return labels, iterations, per_iteration, extras
