"""Cross-validation helpers for SCC partitions.

Partitions are compared up to label renaming; the ground truth is the
in-memory Tarjan implementation.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.graph.digraph import Digraph
from repro.inmemory.tarjan import tarjan_scc


def canonical_partition(labels: np.ndarray) -> np.ndarray:
    """Rename labels to first-appearance order so partitions compare."""
    labels = np.asarray(labels, dtype=np.int64)
    seen: dict[int, int] = {}
    out = np.empty_like(labels)
    for index, label in enumerate(labels.tolist()):
        out[index] = seen.setdefault(label, len(seen))
    return out


def partitions_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Whether two labelings induce the same partition of the nodes."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        return False
    return bool(np.array_equal(canonical_partition(a), canonical_partition(b)))


def certify_scc_partition(graph: Digraph, labels: np.ndarray) -> None:
    """Certify that ``labels`` is *the* SCC partition — without Tarjan.

    A partition equals the SCC decomposition iff

    1. every group is strongly connected (every member reaches every
       other member inside the graph), and
    2. the condensation induced by the partition is acyclic (no two
       groups are mutually reachable, so no group could be larger).

    Both are checked directly: (1) by forward and backward BFS inside
    each group restricted to intra-group edges, (2) by a topological
    sort of the quotient graph.  Raises :class:`ValidationError` with a
    specific reason on failure.

    This is an independent *certifying checker*: it shares no code with
    any SCC algorithm in the package, so agreement is strong evidence
    of correctness.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape[0] != graph.num_nodes:
        raise ValidationError("labels must cover every node")
    if graph.num_nodes == 0:
        return
    num_groups = int(labels.max()) + 1

    edges = graph.edges.astype(np.int64)
    mapped = labels[edges] if edges.size else edges.reshape(0, 2)

    # --- condition 2: quotient graph must be a DAG.
    from repro.exceptions import GraphFormatError
    from repro.inmemory.toposort import topological_sort

    inter = mapped[:, 0] != mapped[:, 1] if mapped.size else np.zeros(0, bool)
    quotient = Digraph(num_groups, mapped[inter] if mapped.size else None)
    try:
        topological_sort(quotient)
    except GraphFormatError as exc:
        raise ValidationError(
            "partition is too fine: two groups are mutually reachable "
            "(quotient graph has a cycle)"
        ) from exc

    # --- condition 1: each group strongly connected on intra edges.
    intra = mapped[:, 0] == mapped[:, 1] if mapped.size else np.zeros(0, bool)
    intra_edges = edges[intra] if mapped.size else edges
    subgraph = Digraph(graph.num_nodes, intra_edges)
    reverse = subgraph.reverse()
    sizes = np.bincount(labels, minlength=num_groups)
    seeds = np.full(num_groups, -1, dtype=np.int64)
    seeds[labels] = np.arange(graph.num_nodes, dtype=np.int64)

    for group in np.flatnonzero(sizes >= 2).tolist():
        seed = int(seeds[group])
        for direction in (subgraph, reverse):
            indptr, indices = direction.indptr, direction.indices
            seen = {seed}
            stack = [seed]
            while stack:
                node = stack.pop()
                for child in indices[indptr[node] : indptr[node + 1]]:
                    child = int(child)
                    if child not in seen:
                        seen.add(child)
                        stack.append(child)
            if len(seen) != int(sizes[group]):
                raise ValidationError(
                    f"partition is too coarse: group {group} is not "
                    f"strongly connected ({len(seen)} of {sizes[group]} "
                    "members reachable from a seed)"
                )


def validate_against_tarjan(graph: Digraph, labels: np.ndarray) -> None:
    """Raise :class:`ValidationError` unless ``labels`` matches Tarjan.

    ``graph`` must be the in-memory image of the input the labels were
    computed for.
    """
    truth, _ = tarjan_scc(graph)
    if not partitions_equal(truth, labels):
        truth_c = canonical_partition(truth)
        mine_c = canonical_partition(np.asarray(labels))
        differing = int(np.count_nonzero(truth_c != mine_c))
        raise ValidationError(
            f"SCC partition mismatch: {differing} of {graph.num_nodes} "
            "nodes labelled inconsistently with Tarjan"
        )
