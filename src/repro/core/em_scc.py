"""EM-SCC: the contraction-based external-memory baseline.

Cosgaya-Lozano and Zeh's heuristic (paper Section 4): repeatedly
partition the on-disk graph into memory-sized pieces, find the SCCs of
each piece with an in-memory algorithm, contract them, and rewrite the
graph smaller; once everything fits in memory, finish in-memory.

The paper's critique is that this loop need not terminate: an SCC that
straddles partitions may never be contracted (Case-1) and a DAG larger
than memory cannot shrink at all (Case-2).  This implementation
faithfully exhibits both failure modes by raising
:class:`~repro.exceptions.NonTermination` when a full pass makes no
progress while the graph still exceeds memory.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.constants import EDGE_BYTES, NODE_DTYPE
from repro.core.base import Deadline, IterationStats, SCCAlgorithm
from repro.exceptions import NonTermination
from repro.graph.digraph import Digraph
from repro.graph.diskgraph import DiskGraph
from repro.inmemory.kosaraju import kosaraju_scc
from repro.io.edgefile import EdgeFile
from repro.io.faults import SimulatedCrash
from repro.io.memory import MemoryModel
from repro.kernels import ScanKernels, resolve_kernels
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.spanning.unionfind import DisjointSet


class EMSCC(SCCAlgorithm):
    """The contraction heuristic of Cosgaya-Lozano & Zeh (EM-SCC).

    Parameters
    ----------
    max_iterations:
        Abort threshold standing in for "runs forever"; the paper's
        experiments simply report that EM-SCC "cannot stop in most
        cases".
    """

    name = "EM-SCC"

    def __init__(self, max_iterations: int = 64) -> None:
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        self.max_iterations = max_iterations

    # ------------------------------------------------------------------
    def _run(
        self,
        graph: DiskGraph,
        memory: MemoryModel,
        deadline: Deadline,
        tracer: Tracer,
        kernel: Optional[ScanKernels] = None,
    ) -> Tuple[np.ndarray, int, List[IterationStats], Dict[str, object]]:
        kernel = kernel if kernel is not None else resolve_kernels()
        n = graph.num_nodes
        if n == 0:
            return np.empty(0, dtype=np.int64), 0, [], {}

        resume = self._take_resume()
        if resume is not None:
            ds = DisjointSet.from_arrays(
                resume.arrays["ds_parent"], resume.arrays["ds_size"]
            )
            live = resume.arrays["live"].astype(bool)
            iteration = int(resume.meta["iteration"])  # type: ignore[arg-type]
            current, owns_current = self._resume_edge_file(graph, resume.meta)
            per_iteration = [
                IterationStats.from_dict(row)
                for row in resume.meta.get("per_iteration", [])  # type: ignore[union-attr]
            ]
        else:
            ds = DisjointSet(n)
            live = np.ones(n, dtype=bool)
            current = graph.edge_file
            owns_current = False
            per_iteration = []
            iteration = 0

        # Edges a partition may hold: the memory left after one node
        # array (the contraction map).
        partition_blocks = memory.blocks_per_batch(1)

        try:
            while True:
                deadline.check()
                live_count = int(np.count_nonzero(live))
                in_memory_bytes = (
                    live_count * memory.node_bytes + current.num_edges * EDGE_BYTES
                )
                if in_memory_bytes <= memory.capacity:
                    with tracer.span("finish-in-memory"):
                        self._finish_in_memory(current, ds, live, kernel)
                    break
                if iteration >= self.max_iterations:
                    raise NonTermination(self.name, iteration)

                iteration += 1
                live_before = live_count
                edges_before = current.num_edges

                progress = False
                with tracer.span("iteration", iteration=iteration):
                    partitions = 0
                    contracted = 0
                    with tracer.span("partition-scan", iteration=iteration):
                        edges_classified = 0
                        for batch in current.scan(
                            batch_blocks=partition_blocks
                        ):
                            deadline.check()
                            partitions += 1
                            edges_classified += batch.shape[0]
                            if self._contract_partition(
                                batch, ds, live, kernel
                            ):
                                progress = True
                                contracted += 1
                        tracer.add("partitions", partitions)
                        tracer.add("partitions-contracted", contracted)
                        tracer.add("edges-classified", edges_classified)
                        for key, value in kernel.drain_counters().items():
                            tracer.add(key, value)

                    current, owns_current = self._rewrite(
                        graph, ds, live, current, owns_current, iteration,
                        deadline, tracer,
                    )
                    tracer.add(
                        "edges-eliminated", edges_before - current.num_edges
                    )
                live_after = int(np.count_nonzero(live))
                per_iteration.append(
                    IterationStats(
                        iteration=iteration,
                        nodes_reduced=live_before - live_after,
                        edges_reduced=edges_before - current.num_edges,
                        live_nodes=live_after,
                        live_edges=current.num_edges,
                    )
                )
                self._note_progress(iteration, live_after, current.num_edges)
                if not progress:
                    # Case-1/Case-2 of Section 4: stuck while too large.
                    raise NonTermination(self.name, iteration)
                if self._boundary_active:
                    self._scan_boundary(
                        arrays={
                            "ds_parent": ds.parent,
                            "ds_size": ds.size,
                            "live": live,
                        },
                        meta={
                            "iteration": iteration,
                            "current_path": current.path,
                            "owns_current": owns_current,
                            "per_iteration": [
                                row.to_dict() for row in per_iteration
                            ],
                        },
                    )
        except SimulatedCrash:
            # A simulated power loss: the working file stays on disk —
            # the last durable checkpoint references it for resume.
            raise
        except BaseException:
            if owns_current:
                current.unlink()
            raise
        if owns_current:
            current.unlink()

        labels, _ = ds.labels()
        return labels, iteration, per_iteration, {}

    # ------------------------------------------------------------------
    @staticmethod
    def _contract_partition(
        batch: np.ndarray,
        ds: DisjointSet,
        live: np.ndarray,
        kernel: Optional[ScanKernels] = None,
    ) -> bool:
        """Contract the SCCs of one memory-sized partition."""
        kernel = kernel if kernel is not None else resolve_kernels()
        us = ds.find_many(batch[:, 0].astype(np.int64))
        vs = ds.find_many(batch[:, 1].astype(np.int64))
        keep = us != vs
        us = us[keep]
        vs = vs[keep]
        if us.size == 0:
            return False
        nodes, comp_edges = kernel.compact_pairs(us, vs)
        local = Digraph(int(nodes.size), comp_edges)
        labels, count = kosaraju_scc(local)
        if count == nodes.size:
            return False
        order = np.argsort(labels, kind="stable")
        boundaries = np.searchsorted(labels[order], np.arange(count + 1))
        progress = False
        for label in range(count):
            members = nodes[order[boundaries[label] : boundaries[label + 1]]]
            if members.size < 2:
                continue
            rep = int(members[0])
            kernel.absorb_members(ds, live, members[1:], rep)
            progress = True
        return progress

    @staticmethod
    def _finish_in_memory(
        current: EdgeFile,
        ds: DisjointSet,
        live: np.ndarray,
        kernel: Optional[ScanKernels] = None,
    ) -> None:
        """Load the remaining graph and finish with in-memory Kosaraju."""
        kernel = kernel if kernel is not None else resolve_kernels()
        # Sound here only: the caller's budget check proved the remaining
        # graph fits in M before finishing in-memory.
        edges = current.read_all()  # repro: allow[MEM001]
        if edges.shape[0] == 0:
            return
        us = ds.find_many(edges[:, 0].astype(np.int64))
        vs = ds.find_many(edges[:, 1].astype(np.int64))
        keep = us != vs
        us, vs = us[keep], vs[keep]
        if us.size == 0:
            return
        nodes, comp_edges = kernel.compact_pairs(us, vs)
        local = Digraph(int(nodes.size), comp_edges)
        labels, count = kosaraju_scc(local)
        order = np.argsort(labels, kind="stable")
        boundaries = np.searchsorted(labels[order], np.arange(count + 1))
        for label in range(count):
            members = nodes[order[boundaries[label] : boundaries[label + 1]]]
            if members.size < 2:
                continue
            rep = int(members[0])
            kernel.absorb_members(ds, live, members[1:], rep)

    def _rewrite(
        self,
        graph: DiskGraph,
        ds: DisjointSet,
        live: np.ndarray,
        current: EdgeFile,
        owns_current: bool,
        iteration: int,
        deadline: Optional[Deadline] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> Tuple[EdgeFile, bool]:
        """Compress the on-disk graph after a contraction pass."""
        ctx = self._parallel

        def batches() -> Iterator[np.ndarray]:
            if ctx is not None:
                # The union-find is frozen for this scan: publish its
                # resolved root map once and let workers map and drop
                # self-loops (no liveness filter in the EM rewrite).
                n = live.shape[0]
                root = ds.find_many(np.arange(n, dtype=np.int64))
                stream = ctx.map_frozen(
                    current.scan(), root=root, live=None, check_live=False
                )
            else:
                stream = ((batch, None) for batch in current.scan())
            for batch, mapped in stream:
                if deadline is not None:
                    deadline.check()
                if mapped is not None:
                    us, vs = mapped["us"], mapped["vs"]
                    if us.size:
                        yield np.column_stack((us, vs)).astype(NODE_DTYPE)
                    continue
                us = ds.find_many(batch[:, 0].astype(np.int64))
                vs = ds.find_many(batch[:, 1].astype(np.int64))
                keep = us != vs
                if keep.any():
                    yield np.column_stack((us[keep], vs[keep])).astype(NODE_DTYPE)

        reduced = graph.derive_edge_file(f"em{iteration}")
        with tracer.span("rewrite-scan", iteration=iteration):
            for batch in batches():
                reduced.append(batch)
            reduced.flush()
            if ctx is not None:
                for key, value in ctx.drain_counters().items():
                    tracer.add(key, value)
        if owns_current:
            # Checkpoint-safe disposal: the last durable checkpoint may
            # still reference this file (see _retire_scratch).
            self._retire_scratch(current)
        return reduced, True
