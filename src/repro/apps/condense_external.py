"""Out-of-core condensation: build the SCC DAG on disk.

Once a semi-external SCC algorithm has produced per-node labels, the
applications (reachability indexing, topological sort, bisimulation)
want the *condensation* — and for a graph whose edge set does not fit
in memory, the condensation's edge set may not either.  This module
builds it with the package's external-memory primitives only:

1. one sequential pass maps every edge ``(u, v)`` to
   ``(label(u), label(v))``, dropping intra-SCC edges;
2. an external merge sort groups the mapped edges;
3. one more pass streams out the sorted run with adjacent duplicates
   collapsed.

Total cost: ``scan(|E|) + sort(|E'|)`` block I/Os, all tallied in the
input graph's counter.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.constants import NODE_DTYPE
from repro.graph.diskgraph import DiskGraph
from repro.io.atomic import replace_file
from repro.io.edgefile import EdgeFile
from repro.io.extsort import external_sort_edges
from repro.io.memory import MemoryModel


def condense_to_disk(
    graph: DiskGraph,
    labels: np.ndarray,
    out_path: Optional[str] = None,
    memory: Optional[MemoryModel] = None,
    deduplicate: bool = True,
    workers: int = 0,
) -> DiskGraph:
    """Build the condensation of ``graph`` as a new on-disk graph.

    Parameters
    ----------
    graph:
        The original semi-external graph.
    labels:
        SCC label per node (from any algorithm in :mod:`repro.core`).
    out_path:
        Path for the condensation's edge file
        (default ``<input>.condensed``).
    memory:
        Budget for the external sort (default: the paper's default for
        the input's node count).
    deduplicate:
        Collapse parallel inter-SCC edges (the usual condensation);
        switch off to keep multiplicities.
    workers:
        Forwarded to :func:`repro.io.extsort.external_sort_edges` —
        parallel run formation for the dedup sort, identical bytes and
        counted I/O either way.

    Returns
    -------
    DiskGraph
        The condensation: ``num_nodes`` = number of SCCs, edges on disk
        at ``out_path``.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape[0] != graph.num_nodes:
        raise ValueError("labels must cover every node")
    num_sccs = int(labels.max()) + 1 if labels.size else 0
    out_path = out_path or graph.edge_file.path + ".condensed"
    if memory is None:
        memory = MemoryModel(graph.num_nodes, block_size=graph.block_size)

    # --- pass 1: map endpoints, drop intra-SCC edges.
    mapped = EdgeFile.create(
        out_path + ".mapped", counter=graph.counter, block_size=graph.block_size
    )
    for batch in graph.scan_edges():
        sources = labels[batch[:, 0].astype(np.int64)]
        targets = labels[batch[:, 1].astype(np.int64)]
        keep = sources != targets
        if keep.any():
            mapped.append(
                np.column_stack((sources[keep], targets[keep])).astype(NODE_DTYPE)
            )
    mapped.flush()

    if not deduplicate:
        mapped.close()
        replace_file(mapped.path, out_path)
        condensed_file = EdgeFile(
            out_path, counter=graph.counter, block_size=graph.block_size
        )
        return DiskGraph(num_sccs, condensed_file)

    # --- pass 2: external sort groups duplicates adjacently.
    sorted_file = external_sort_edges(
        mapped, order="source", memory=memory, out_path=out_path + ".sorted",
        workers=workers,
    )
    mapped.unlink()

    # --- pass 3: stream out with adjacent-duplicate collapse.
    condensed = EdgeFile.create(
        out_path, counter=graph.counter, block_size=graph.block_size
    )
    previous_last: Optional[np.ndarray] = None
    for batch in sorted_file.scan():
        if previous_last is not None:
            batch = np.concatenate([previous_last.reshape(1, 2), batch])
        distinct = np.ones(batch.shape[0], dtype=bool)
        distinct[1:] = (batch[1:] != batch[:-1]).any(axis=1)
        unique = batch[distinct]
        # Hold the last record back: the next block may repeat it.
        if unique.shape[0]:
            condensed.append(unique[:-1])
            previous_last = unique[-1].copy()
    if previous_last is not None:
        condensed.append(previous_last.reshape(1, 2))
    condensed.flush()
    sorted_file.unlink()
    return DiskGraph(num_sccs, condensed)
