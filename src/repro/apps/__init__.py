"""Motivating applications from the paper's introduction.

Computing SCCs is a preprocessing step; these modules are the
downstream consumers the paper cites:

* :mod:`~repro.apps.reachability` — a GRAIL-style interval index over
  the condensation for reachability queries (Yildirim et al., cited as
  the paper's flagship motivation).
* :mod:`~repro.apps.bisimulation` — DAG bisimulation partitioning in
  reverse topological order (Hellings et al.'s external bisimulation,
  which "needs to find all SCCs in a preprocessing step").
"""

from repro.apps.bisimulation import bisimulation_partition
from repro.apps.condense_external import condense_to_disk
from repro.apps.reachability import ReachabilityIndex
from repro.apps.toposort import TopoSortResult, semi_external_toposort

__all__ = [
    "ReachabilityIndex",
    "bisimulation_partition",
    "condense_to_disk",
    "semi_external_toposort",
    "TopoSortResult",
]
