"""GRAIL-style reachability index over the SCC condensation.

The paper motivates SCC computation with reachability query processing:
"almost all algorithms to process reachability queries over a general
directed graph G first convert G into a DAG by contracting an SCC into
a node ... As an example, the GRAIL index needs to be built on DAG."

This module is that consumer: given any SCC labelling (from Tarjan or
from the semi-external algorithms), it condenses the graph and builds
GRAIL's randomised interval labels.  Two nodes in one SCC are trivially
mutually reachable; across SCCs the interval labels give a
false-positive-free *negative* filter, and remaining candidates fall
back to a pruned DFS over the condensation.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.graph.digraph import Digraph
from repro.inmemory.condensation import CondensedGraph, condense


class ReachabilityIndex:
    """Interval-labelled reachability over a digraph.

    Parameters
    ----------
    graph:
        The input digraph.
    labels:
        Optional precomputed SCC labels (e.g. from
        :func:`repro.compute_sccs`); Tarjan is run when omitted.
    num_traversals:
        Number of random post-order traversals (GRAIL's ``d``); more
        traversals filter more negatives.
    seed:
        Randomness for the traversal orders.
    """

    def __init__(
        self,
        graph: Digraph,
        labels: Optional[np.ndarray] = None,
        num_traversals: int = 3,
        seed: int = 0,
    ) -> None:
        if num_traversals <= 0:
            raise ValueError("num_traversals must be positive")
        if labels is not None:
            num_sccs = int(np.asarray(labels).max()) + 1 if len(labels) else 0
            self.condensation: CondensedGraph = condense(graph, labels, num_sccs)
        else:
            self.condensation = condense(graph)
        self._dag = self.condensation.dag
        self._rng = np.random.default_rng(seed)
        self._lows: List[np.ndarray] = []
        self._posts: List[np.ndarray] = []
        for _ in range(num_traversals):
            low, post = self._label_once()
            self._lows.append(low)
            self._posts.append(post)

    # ------------------------------------------------------------------
    def _label_once(self) -> tuple[np.ndarray, np.ndarray]:
        """One randomised post-order interval labelling of the DAG."""
        dag = self._dag
        n = dag.num_nodes
        low = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
        post = np.zeros(n, dtype=np.int64)
        visited = np.zeros(n, dtype=bool)
        counter = 1

        roots = np.flatnonzero(dag.in_degree() == 0)
        order = self._rng.permutation(roots) if roots.size else np.arange(n)
        indptr = dag.indptr
        indices = dag.indices
        for root in list(order) + list(range(n)):
            root = int(root)
            if visited[root]:
                continue
            stack: list[tuple[int, bool]] = [(root, False)]
            while stack:
                node, processed = stack.pop()
                if processed:
                    children = indices[indptr[node] : indptr[node + 1]]
                    child_low = (
                        int(low[children].min()) if children.size else counter
                    )
                    low[node] = min(child_low, counter)
                    post[node] = counter
                    counter += 1
                    continue
                if visited[node]:
                    continue
                visited[node] = True
                stack.append((node, True))
                children = indices[indptr[node] : indptr[node + 1]]
                if children.size:
                    for child in self._rng.permutation(children):
                        stack.append((int(child), False))
        return low, post

    # ------------------------------------------------------------------
    def _maybe_reaches(self, a: int, b: int) -> bool:
        """Interval filter: False means definitely not reachable."""
        for low, post in zip(self._lows, self._posts):
            if not (low[a] <= low[b] and post[b] <= post[a]):
                return False
        return True

    def _check_node(self, node: int, role: str) -> int:
        """Validate a query node id, returning it as a plain int.

        Out-of-range ids (including queries against an empty graph) are
        a caller error and must fail with a clean :class:`ValueError`,
        never an index fault — the service layer maps this onto its
        ``out_of_range`` protocol error.
        """
        node = int(node)
        num_nodes = len(self.condensation.labels)
        if node < 0 or node >= num_nodes:
            raise ValueError(
                f"{role} node {node} out of range for a graph with "
                f"{num_nodes} node(s)"
            )
        return node

    def reaches(
        self,
        source: int,
        target: int,
        check: Optional[Callable[[], None]] = None,
    ) -> bool:
        """Whether ``source`` can reach ``target`` in the original graph.

        ``check``, when given, is invoked periodically during the
        fallback DFS (e.g. :meth:`repro.core.base.Deadline.check`) so a
        long pruned traversal can be cancelled mid-flight; whatever it
        raises propagates to the caller.
        """
        source = self._check_node(source, "source")
        target = self._check_node(target, "target")
        a = int(self.condensation.labels[source])
        b = int(self.condensation.labels[target])
        if a == b:
            return True
        if not self._maybe_reaches(a, b):
            return False
        # Pruned DFS over the condensation, using the filter at every hop.
        dag = self._dag
        indptr = dag.indptr
        indices = dag.indices
        visited = {a}
        stack = [a]
        expansions = 0
        while stack:
            if check is not None:
                expansions += 1
                if expansions % 64 == 0:
                    check()
            node = stack.pop()
            if node == b:
                return True
            for child in indices[indptr[node] : indptr[node + 1]]:
                child = int(child)
                if child not in visited and self._maybe_reaches(child, b):
                    visited.add(child)
                    stack.append(child)
        return False

    @property
    def num_sccs(self) -> int:
        """Size of the condensation the index is built on."""
        return self.condensation.num_sccs
