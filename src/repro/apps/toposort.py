"""Semi-external topological sort — the paper's second motivating app.

"In a topological sort, nodes in a directed graph are ranked according
to a partial order specified by the edges.  If there are cycles in the
graph, all nodes in a cycle are considered as equal rank and merged
into one.  This is done by finding all SCCs in the graph."

This module completes that pipeline under the same semi-external rules
as the SCC algorithms: node-indexed arrays fit in memory, edges are
only scanned.  Given a :class:`~repro.graph.diskgraph.DiskGraph` and
SCC labels (from any of the five algorithms), it assigns every
supernode a *layer* by iterated peeling:

* layer 0 = supernodes with no incoming inter-SCC edges,
* layer k+1 = supernodes whose every incoming edge leaves a layer <= k.

Each peel is one sequential scan of ``E(G)``, so the whole sort costs
``depth(DAG) * |E|/B`` block reads — the same bound family as the
paper's tree construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import NonTermination
from repro.graph.diskgraph import DiskGraph
from repro.io.counter import IOStats


@dataclass
class TopoSortResult:
    """Layered topological order of a graph's condensation."""

    #: SCC label of every original node (as supplied or computed).
    labels: np.ndarray
    #: Topological layer of every SCC (0 = sources).
    scc_layers: np.ndarray
    #: Topological layer of every original node (via its SCC).
    node_layers: np.ndarray
    #: Number of peeling scans (= number of layers).
    scans: int
    #: Block I/Os consumed by the sort.
    io: IOStats

    def order(self) -> np.ndarray:
        """Original node ids sorted by (layer, node id) — a valid
        topological order of the condensation expanded to nodes."""
        return np.lexsort((np.arange(self.node_layers.size), self.node_layers))

    def reverse_order(self) -> np.ndarray:
        """The reverse topological order external bisimulation expects."""
        return self.order()[::-1]


def semi_external_toposort(
    graph: DiskGraph,
    labels: Optional[np.ndarray] = None,
    max_scans: Optional[int] = None,
) -> TopoSortResult:
    """Topologically sort ``graph``'s condensation by peeling scans.

    Parameters
    ----------
    graph:
        The semi-external input graph.
    labels:
        SCC labels per node.  When omitted they are computed first with
        1PB-SCC (whose I/O joins the same counter).
    max_scans:
        Safety cap on peeling scans (default: number of SCCs + 1).
    """
    before = graph.counter.snapshot()
    if labels is None:
        from repro.core.one_phase_batch import OnePhaseBatchSCC

        labels = OnePhaseBatchSCC().run(graph).labels
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape[0] != graph.num_nodes:
        raise ValueError("labels must cover every node")
    num_sccs = int(labels.max()) + 1 if labels.size else 0

    layer = np.zeros(num_sccs, dtype=np.int64)
    settled = np.zeros(num_sccs, dtype=bool)
    if max_scans is None:
        max_scans = num_sccs + 1

    scans = 0
    remaining = num_sccs
    while remaining > 0:
        if scans >= max_scans:
            raise NonTermination("semi-external-toposort", scans)
        scans += 1
        # A supernode is blocked if any incoming inter-SCC edge leaves
        # an unsettled supernode.
        blocked = np.zeros(num_sccs, dtype=bool)
        for batch in graph.scan_edges():
            sources = labels[batch[:, 0].astype(np.int64)]
            targets = labels[batch[:, 1].astype(np.int64)]
            inter = sources != targets
            sources = sources[inter]
            targets = targets[inter]
            unsettled_source = ~settled[sources]
            blocked[targets[unsettled_source]] = True
        ready = ~settled & ~blocked
        if not ready.any():
            raise NonTermination("semi-external-toposort", scans)
        layer[ready] = scans - 1
        settled |= ready
        remaining -= int(ready.sum())

    return TopoSortResult(
        labels=labels,
        scc_layers=layer,
        node_layers=layer[labels] if labels.size else np.zeros(0, np.int64),
        scans=scans,
        io=graph.counter.since(before),
    )
