"""Bisimulation partitioning over the SCC condensation.

Hellings et al.'s external-memory bisimulation (cited in the paper's
introduction) assumes its input DAG arrives in reverse topological
order, which "needs to find all SCCs in a preprocessing step".  This
module is that pipeline stage: condense the graph, then compute the
maximal bisimulation of the DAG by processing nodes in reverse
topological order — a node's class is determined by the multiset of its
successors' classes (plus an optional node label).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.graph.digraph import Digraph
from repro.inmemory.condensation import condense
from repro.inmemory.toposort import topological_sort


def bisimulation_partition(
    graph: Digraph,
    labels: Optional[np.ndarray] = None,
    node_labels: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, int]:
    """Compute bisimulation classes for every node of ``graph``.

    Parameters
    ----------
    graph:
        Input digraph (cycles allowed — they are condensed first; all
        members of one SCC share a bisimulation class here because the
        condensation collapses them).
    labels:
        Optional precomputed SCC labels.
    node_labels:
        Optional per-node categorical labels that bisimilar nodes must
        share; SCC members must carry equal labels for the condensation
        to be label-consistent (enforced).

    Returns
    -------
    classes, num_classes:
        ``classes[v]`` is the bisimulation class of original node ``v``.
    """
    if labels is not None:
        num_sccs = int(np.asarray(labels).max()) + 1 if len(labels) else 0
        condensation = condense(graph, labels, num_sccs)
    else:
        condensation = condense(graph)
    dag = condensation.dag
    scc_of = condensation.labels

    if node_labels is not None:
        node_labels = np.asarray(node_labels)
        if node_labels.shape[0] != graph.num_nodes:
            raise ValueError("node_labels must cover every node")
        scc_label = np.zeros(dag.num_nodes, dtype=np.int64)
        for scc in range(dag.num_nodes):
            members = np.flatnonzero(scc_of == scc)
            values = np.unique(node_labels[members])
            if values.size > 1:
                raise ValueError(
                    f"SCC {scc} mixes node labels {values.tolist()}; "
                    "bisimulation over the condensation requires "
                    "label-uniform SCCs"
                )
            scc_label[scc] = values[0]
    else:
        scc_label = np.zeros(dag.num_nodes, dtype=np.int64)

    # Reverse topological order: successors are classified before their
    # predecessors, so one pass suffices.
    order = topological_sort(dag)[::-1]
    indptr = dag.indptr
    indices = dag.indices
    classes = np.full(dag.num_nodes, -1, dtype=np.int64)
    signature_to_class: Dict[tuple, int] = {}
    for node in order.tolist():
        successors = indices[indptr[node] : indptr[node + 1]]
        signature = (
            int(scc_label[node]),
            tuple(sorted(set(int(classes[s]) for s in successors))),
        )
        if signature not in signature_to_class:
            signature_to_class[signature] = len(signature_to_class)
        classes[node] = signature_to_class[signature]

    return classes[scc_of], len(signature_to_class)
