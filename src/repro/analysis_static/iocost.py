"""I/O-complexity inference: counted-scan cost through the call graph.

The paper's headline bound is ``O(scan(|E|) * h)`` counted block
transfers per algorithm — a *constant number of sequential edge scans
per contraction round*.  Two shapes of code silently break it:

* **SCAN002 — nested edge scans.**  A scan started while another scan
  is in flight multiplies the passes: ``O(|E|^2 / B)`` transfers, the
  exact blow-up Table 2 of the paper exists to rule out.  The pass
  finds scans nested *lexically* (a scan loop inside a scan loop) and
  *interprocedurally* (a scan-loop body calling, at any call-graph
  depth, a function that scans).
* **SCAN003 — scans in unbounded ``while`` retry loops.**  A scan
  inside ``while True:`` (or a ``while`` whose test provably never
  changes) has no static bound at all.  A loop is accepted as bounded
  when it carries a *termination witness*: either a name in its test
  has a reaching definition from inside the loop body (the test can
  change), or the body guards an exit — ``break``/``raise``/``return``
  under an ``if`` whose test compares something (the
  ``iteration >= max_iterations`` idiom every algorithm here uses).

:func:`cost_report` renders the same facts positively: for every
scanning function in the algorithm packages, the inferred counted-I/O
class — ``O(scan(|E|))``, ``O(h * scan(|E|))``, or the flagged
``O(|E|^2 / B)`` — so the docs can cite inferred costs against the
paper's Table 2 bounds instead of asserting them.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis_static.dataflow import (
    SCAN_METHODS,
    FunctionInfo,
    ProgramIndex,
    reaching_definitions,
)
from repro.analysis_static.engine import ModuleSource, Violation
from repro.analysis_static.rules import ProgramRule, _dir_parts

__all__ = ["NestedScanRule", "UnboundedScanLoopRule", "cost_report"]

#: Packages whose functions carry the per-round scan-count contract.
_COST_SCOPES = ("core", "apps", "spanning")


def _in_cost_scope(relpath: str) -> bool:
    dirs = _dir_parts(relpath)
    return any(scope in dirs for scope in _COST_SCOPES)


def _is_scan_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in SCAN_METHODS
    )


def _shallow_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function bodies."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _scan_loops(func_node: ast.AST) -> List[ast.For]:
    """Lexical ``for ... in <x>.scan()``-family loops of one function."""
    return [
        node
        for node in _shallow_walk(func_node)
        if isinstance(node, ast.For) and _is_scan_call(node.iter)
    ]


def _body_walk(statements: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    for stmt in statements:
        yield stmt
        yield from _shallow_walk(stmt)


def _contains_scan_activity(
    statements: Sequence[ast.stmt], index: ProgramIndex, caller: FunctionInfo
) -> Optional[ast.AST]:
    """First node under ``statements`` that starts a counted edge scan."""
    for node in _body_walk(statements):
        if isinstance(node, ast.Call) and index.call_scans(node, caller):
            return node
    return None


# ----------------------------------------------------------------------
# SCAN002
# ----------------------------------------------------------------------


class NestedScanRule(ProgramRule):
    """SCAN002: an edge scan started inside another edge scan."""

    rule_id = "SCAN002"
    title = "nested edge scan (O(|E|^2/B) counted transfers)"
    rationale = (
        "the paper's bound is O(scan(|E|)) block transfers per pass; a "
        "scan nested inside a scan loop — directly or through any "
        "callee — multiplies passes into the O(|E|^2/B) regime the "
        "semi-external algorithms exist to avoid"
    )

    def applies_to(self, relpath: str) -> bool:
        """Only the algorithm packages carry the per-pass scan bound."""
        return _in_cost_scope(relpath)

    def check_program(
        self, modules: Sequence[ModuleSource]
    ) -> List[Violation]:
        """Flag scans reachable from inside a scan-loop body."""
        index = ProgramIndex((m.relpath, m.tree) for m in modules)
        out: List[Violation] = []
        for info in index.functions:
            if not self.applies_to(info.relpath):
                continue
            for loop in _scan_loops(info.node):
                out.extend(self._check_loop(loop, info, index))
        return out

    def _check_loop(
        self, loop: ast.For, info: FunctionInfo, index: ProgramIndex
    ) -> Iterator[Violation]:
        seen: Set[int] = set()
        for node in _body_walk(loop.body):
            if isinstance(node, ast.For) and _is_scan_call(node.iter):
                if id(node.iter) not in seen:
                    seen.add(id(node.iter))
                    yield self.violation(
                        node, info.relpath,
                        f"edge scan nested inside the scan loop at line "
                        f"{loop.lineno} ({info.qualname}): O(|E|^2/B) "
                        "counted transfers; restructure into sequential "
                        "passes",
                    )
            elif isinstance(node, ast.Call) and id(node) not in seen:
                if index.call_scans(node, info):
                    seen.add(id(node))
                    callee = self._callee_label(node)
                    yield self.violation(
                        node, info.relpath,
                        f"call to {callee} starts an edge scan inside "
                        f"the scan loop at line {loop.lineno} "
                        f"({info.qualname}): O(|E|^2/B) counted "
                        "transfers; hoist it out of the scan",
                    )

    @staticmethod
    def _callee_label(call: ast.Call) -> str:
        try:
            return f"'{ast.unparse(call.func)}()'"
        except Exception:  # pragma: no cover - unparse is total on exprs
            return "a scanning function"


# ----------------------------------------------------------------------
# SCAN003
# ----------------------------------------------------------------------


def _test_names(test: ast.expr) -> Set[str]:
    return {
        node.id for node in ast.walk(test) if isinstance(node, ast.Name)
    }


def _test_is_constant_true(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


def _has_guarded_exit(loop: ast.While) -> bool:
    """A comparison-guarded ``break``/``raise``/``return`` in the body.

    This is the ``if iteration >= max_iterations: raise NonTermination``
    idiom: statically checkable evidence that someone bounded the loop.
    """
    for node in _body_walk(loop.body):
        if not isinstance(node, ast.If):
            continue
        if not any(isinstance(sub, ast.Compare) for sub in ast.walk(node.test)):
            continue
        for branch in (node.body, node.orelse):
            for sub in _body_walk(branch):
                if isinstance(sub, (ast.Break, ast.Raise, ast.Return)):
                    return True
    return False


class UnboundedScanLoopRule(ProgramRule):
    """SCAN003: a counted edge scan inside an unbounded ``while`` loop."""

    rule_id = "SCAN003"
    title = "edge scan inside an unbounded while loop"
    rationale = (
        "a scan re-issued by an unbounded retry loop has no counted-I/O "
        "bound at all; every while loop around a scan must carry a "
        "termination witness (a test the body can change, or a "
        "comparison-guarded break/raise/return)"
    )

    def applies_to(self, relpath: str) -> bool:
        """Only the algorithm packages carry the per-pass scan bound."""
        return _in_cost_scope(relpath)

    def check_program(
        self, modules: Sequence[ModuleSource]
    ) -> List[Violation]:
        """Flag while loops around scans that lack a termination witness."""
        index = ProgramIndex((m.relpath, m.tree) for m in modules)
        out: List[Violation] = []
        for info in index.functions:
            if not self.applies_to(info.relpath):
                continue
            for loop in _shallow_walk(info.node):
                if not isinstance(loop, ast.While):
                    continue
                scan_site = _contains_scan_activity(loop.body, index, info)
                if scan_site is None:
                    continue
                if self._bounded(loop, info):
                    continue
                out.append(
                    self.violation(
                        loop, info.relpath,
                        f"while loop in {info.qualname} re-issues a "
                        f"counted edge scan (line "
                        f"{getattr(scan_site, 'lineno', loop.lineno)}) "
                        "but has no termination witness: make the test "
                        "depend on loop progress or guard an exit with "
                        "an iteration bound",
                    )
                )
        return out

    # ------------------------------------------------------------------
    def _bounded(self, loop: ast.While, info: FunctionInfo) -> bool:
        if _has_guarded_exit(loop):
            return True
        test = loop.test
        if _test_is_constant_true(test):
            return False
        # Attribute or call tests can change without any local
        # assignment — treat as bounded (conservative: no finding).
        if any(
            isinstance(node, (ast.Attribute, ast.Call))
            for node in ast.walk(test)
        ):
            return True
        names = _test_names(test)
        if not names:
            return False
        cfg = info.cfg
        head = cfg.loop_heads.get(id(loop))
        members = cfg.loop_blocks.get(id(loop), set())
        if head is None:
            return True  # not this function's loop; stay silent
        reaching = reaching_definitions(cfg)
        for name, src in reaching.get(head, set()):
            if name in names and src in members:
                return True
        return False


# ----------------------------------------------------------------------
# the cost report
# ----------------------------------------------------------------------


def _classify(
    info: FunctionInfo, index: ProgramIndex
) -> Optional[Tuple[str, str]]:
    """``(cost class, note)`` for one function, ``None`` if it never scans."""
    if not index.scans_edges(info):
        return None
    loops = _scan_loops(info.node)
    for loop in loops:
        for node in _body_walk(loop.body):
            if isinstance(node, ast.For) and _is_scan_call(node.iter):
                return ("O(|E|^2/B)", "nested scan — exceeds paper bound")
            if isinstance(node, ast.Call) and index.call_scans(node, info):
                return ("O(|E|^2/B)", "scan via call inside scan loop")
    # A scan under any enclosing while/for loop pays the h factor.
    for outer in _shallow_walk(info.node):
        if not isinstance(outer, (ast.While, ast.For)):
            continue
        if isinstance(outer, ast.For) and _is_scan_call(outer.iter):
            continue
        body = outer.body
        for node in _body_walk(body):
            if isinstance(node, ast.For) and _is_scan_call(node.iter):
                return ("O(h * scan(|E|))", "scan per contraction round")
            if isinstance(node, ast.Call) and index.call_scans(node, info):
                return ("O(h * scan(|E|))", "scan per contraction round")
    if loops:
        return ("O(scan(|E|))", "single sequential pass")
    return ("O(scan(|E|))", "delegates to a scanning callee")


def cost_report(modules: Sequence[ModuleSource]) -> str:
    """Per-function counted-I/O cost classes for the algorithm packages.

    The report covers every function in ``repro/core``, ``repro/apps``
    and ``repro/spanning`` whose call graph reaches a counted edge
    scan, classified against the paper's ``O(scan(|E|) * h)`` bound.
    """
    index = ProgramIndex((m.relpath, m.tree) for m in modules)
    rows: List[Tuple[str, str, str, str]] = []
    for info in sorted(
        index.functions, key=lambda f: (f.relpath, f.qualname)
    ):
        if not _in_cost_scope(info.relpath):
            continue
        classified = _classify(info, index)
        if classified is None:
            continue
        cost, note = classified
        rows.append((info.relpath, info.qualname, cost, note))
    lines = [
        "Counted-I/O cost inference (paper bound: O(scan(|E|) * h) "
        "per algorithm)",
        "",
    ]
    if not rows:
        lines.append("no scanning functions found in the analyzed paths")
        return "\n".join(lines)
    width_mod = max(len(row[0]) for row in rows)
    width_fn = max(len(row[1]) for row in rows)
    width_cost = max(len(row[2]) for row in rows)
    for relpath, qualname, cost, note in rows:
        lines.append(
            f"{relpath:<{width_mod}}  {qualname:<{width_fn}}  "
            f"{cost:<{width_cost}}  {note}"
        )
    return "\n".join(lines)
