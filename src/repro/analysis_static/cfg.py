"""Function-level control-flow graphs over Python AST.

The whole-program passes (:mod:`~repro.analysis_static.iocost`,
:mod:`~repro.analysis_static.locks`,
:mod:`~repro.analysis_static.atomicity`) need more than lexical AST
walks: "every path between stage and rename reaches ``abort_replace``"
and "this attribute is only ever touched while ``self._lock`` is held"
are *path* properties.  This module builds the graph they run on.

Design points, chosen to keep the analyses honest without a full
interpreter:

* **Block granularity.**  Statements are grouped into basic blocks;
  path queries ask whether a path *avoids blocks containing* a call,
  never where inside a block the call sits.  This deliberately forgives
  intra-block orderings (an exception raised by the statement *after*
  ``abort_replace`` in the same handler block is treated as covered).
* **Exception edges.**  Every block that contains at least one call
  expression (:attr:`BasicBlock.may_raise`) gets one exception
  successor: the dispatch block of the innermost enclosing ``try``, or
  the function exit when there is none.  Statements without calls are
  assumed not to raise — the standard static-analysis approximation.
* **``finally`` approximation.**  A ``finally`` suite is built once;
  its exit over-approximates by branching to both the normal
  continuation and the exceptional exit.  Extra paths can only make
  the crash-window pass *more* suspicious, never less.
* **Lock regions.**  ``with <expr>:`` items are recorded per block as
  the unparsed item text (:attr:`BasicBlock.held_with`); the lockset
  dataflow in :mod:`~repro.analysis_static.dataflow` layers
  ``acquire()``/``release()`` on top.
* **Header expressions.**  The test of an ``if``/``while``, the
  iterable of a ``for`` and the context expressions of a ``with`` are
  materialized as synthetic ``ast.Expr`` statements in the controlling
  block, so per-block scans (anchors, calls, commit barriers) see them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

__all__ = ["BasicBlock", "ControlFlowGraph", "build_cfg"]


@dataclass
class BasicBlock:
    """One straight-line group of statements in a function CFG."""

    #: Position in :attr:`ControlFlowGraph.blocks`.
    index: int
    #: Statements anchored in this block (synthetic header ``Expr``
    #: nodes included; compound statements live in their own subgraphs).
    statements: List[ast.stmt] = field(default_factory=list)
    #: Indices of normal-flow successor blocks.
    successors: Set[int] = field(default_factory=set)
    #: Index of the block control reaches if a statement here raises
    #: (the innermost ``try`` dispatch block, or the exit block).
    exc_successor: Optional[int] = None
    #: Whether any statement in the block contains a call expression —
    #: the gate on following :attr:`exc_successor`.
    may_raise: bool = False
    #: Unparsed ``with`` context expressions lexically held here.
    held_with: FrozenSet[str] = frozenset()

    def walk(self) -> Iterator[ast.AST]:
        """Yield every AST node of every statement in the block."""
        for stmt in self.statements:
            yield from ast.walk(stmt)


class ControlFlowGraph:
    """The CFG of one function: blocks, entry/exit, and loop membership."""

    def __init__(self, func: ast.AST) -> None:
        #: The ``FunctionDef``/``AsyncFunctionDef`` this graph models.
        self.func = func
        self.blocks: List[BasicBlock] = []
        self.entry: int = 0
        self.exit: int = 0
        #: ``id(loop AST node) -> block indices forming the loop body``
        #: (used to ask "is this definition inside that loop?").
        self.loop_blocks: Dict[int, Set[int]] = {}
        #: ``id(loop AST node) -> index of the loop's header block``.
        self.loop_heads: Dict[int, int] = {}
        #: Block-index sets, one per ``except`` handler body, so passes
        #: can treat a recovery handler as a single region.
        self.handler_regions: List[Set[int]] = []

    # ------------------------------------------------------------------
    def new_block(self) -> BasicBlock:
        """Append and return a fresh empty block."""
        block = BasicBlock(index=len(self.blocks))
        self.blocks.append(block)
        return block

    def block_of(self, node: ast.AST) -> Optional[int]:
        """Index of the block anchoring ``node``, or ``None``."""
        target = id(node)
        for block in self.blocks:
            for stmt in block.statements:
                for sub in ast.walk(stmt):
                    if id(sub) == target:
                        return block.index
        return None

    def reachable_from(
        self,
        start: int,
        avoid: Optional[Set[int]] = None,
        follow_exceptions: bool = True,
    ) -> Set[int]:
        """Blocks reachable from ``start`` without entering ``avoid``.

        ``start`` itself is always in the result (reachability is
        reflexive); ``avoid`` blocks are never *traversed* but may be
        reported if ``start`` is one of them.
        """
        avoid = avoid or set()
        seen = {start}
        stack = [start]
        while stack:
            index = stack.pop()
            if index != start and index in avoid:
                continue
            block = self.blocks[index]
            nexts = list(block.successors)
            if follow_exceptions and block.may_raise and (
                block.exc_successor is not None
            ):
                nexts.append(block.exc_successor)
            for nxt in nexts:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen


class _Builder:
    """Recursive-descent CFG construction for one function body."""

    def __init__(self, func: ast.AST) -> None:
        self.cfg = ControlFlowGraph(func)
        entry = self.cfg.new_block()
        self.cfg.entry = entry.index
        exit_block = self.cfg.new_block()
        self.cfg.exit = exit_block.index
        # (head block index, after block index) for break/continue.
        self._loops: List[Tuple[int, int]] = []
        # Exception dispatch target stack (innermost last).
        self._handlers: List[int] = []
        # Lexically held `with` expressions.
        self._held: List[str] = []

    # ------------------------------------------------------------------
    def build(self) -> ControlFlowGraph:
        body = list(getattr(self.cfg.func, "body", []))
        last = self._sequence(body, self.cfg.blocks[self.cfg.entry])
        self._edge(last, self.cfg.exit)
        self._finalize()
        return self.cfg

    # ------------------------------------------------------------------
    def _edge(self, src: Optional[BasicBlock], dst: int) -> None:
        if src is not None:
            src.successors.add(dst)

    def _fresh(self) -> BasicBlock:
        block = self.cfg.new_block()
        block.held_with = frozenset(self._held)
        block.exc_successor = self._exc_target()
        return block

    def _exc_target(self) -> int:
        return self._handlers[-1] if self._handlers else self.cfg.exit

    @staticmethod
    def _header_expr(value: ast.expr, anchor: ast.stmt) -> ast.stmt:
        """Materialize a compound statement's header as a plain ``Expr``."""
        expr = ast.Expr(value=value)
        return ast.copy_location(expr, anchor)

    # ------------------------------------------------------------------
    def _sequence(
        self, statements: List[ast.stmt], current: Optional[BasicBlock]
    ) -> Optional[BasicBlock]:
        """Build ``statements`` starting in ``current``.

        Returns the open block control falls out of, or ``None`` when
        every path diverted (return/raise/break/continue).
        """
        for stmt in statements:
            if current is None:
                # Unreachable code still gets a detached block so that
                # block_of() finds every statement.
                current = self._fresh()
            if isinstance(stmt, (ast.If,)):
                current = self._build_if(stmt, current)
            elif isinstance(stmt, ast.While):
                current = self._build_while(stmt, current)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                current = self._build_for(stmt, current)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                current = self._build_with(stmt, current)
            elif isinstance(stmt, ast.Try):
                current = self._build_try(stmt, current)
            elif isinstance(stmt, ast.Return):
                current.statements.append(stmt)
                self._edge(current, self.cfg.exit)
                current = None
            elif isinstance(stmt, ast.Raise):
                current.statements.append(stmt)
                self._edge(current, self._exc_target())
                current = None
            elif isinstance(stmt, ast.Break):
                current.statements.append(stmt)
                if self._loops:
                    self._edge(current, self._loops[-1][1])
                current = None
            elif isinstance(stmt, ast.Continue):
                current.statements.append(stmt)
                if self._loops:
                    self._edge(current, self._loops[-1][0])
                current = None
            else:
                # Simple statement (nested function/class defs included:
                # their bodies are separate CFGs, never inlined here).
                current.statements.append(stmt)
        return current

    # ------------------------------------------------------------------
    def _build_if(self, stmt: ast.If, current: BasicBlock) -> BasicBlock:
        current.statements.append(self._header_expr(stmt.test, stmt))
        after = self._fresh()
        then_entry = self._fresh()
        self._edge(current, then_entry.index)
        then_end = self._sequence(stmt.body, then_entry)
        self._edge(then_end, after.index)
        if stmt.orelse:
            else_entry = self._fresh()
            self._edge(current, else_entry.index)
            else_end = self._sequence(stmt.orelse, else_entry)
            self._edge(else_end, after.index)
        else:
            self._edge(current, after.index)
        return after

    def _build_while(self, stmt: ast.While, current: BasicBlock) -> BasicBlock:
        head = self._fresh()
        head.statements.append(self._header_expr(stmt.test, stmt))
        self._edge(current, head.index)
        after = self._fresh()
        body_entry = self._fresh()
        self._edge(head, body_entry.index)
        self._edge(head, after.index)
        self._loops.append((head.index, after.index))
        mark = len(self.cfg.blocks)
        body_end = self._sequence(stmt.body, body_entry)
        self._loops.pop()
        self._edge(body_end, head.index)
        if stmt.orelse:
            else_end = self._sequence(stmt.orelse, self._fresh_from(head))
            self._edge(else_end, after.index)
        members = {body_entry.index}
        members.update(range(mark, len(self.cfg.blocks)))
        members.discard(after.index)
        self.cfg.loop_blocks[id(stmt)] = members
        self.cfg.loop_heads[id(stmt)] = head.index
        return after

    def _fresh_from(self, pred: BasicBlock) -> BasicBlock:
        block = self._fresh()
        self._edge(pred, block.index)
        return block

    def _build_for(self, stmt: ast.stmt, current: BasicBlock) -> BasicBlock:
        head = self._fresh()
        # The header is modeled as `target = iter(...)`: one synthetic
        # statement that both exposes the iterable's calls and defines
        # the loop variable for reaching-definitions.
        header = ast.Assign(
            targets=[stmt.target],  # type: ignore[attr-defined]
            value=stmt.iter,  # type: ignore[attr-defined]
        )
        head.statements.append(ast.copy_location(header, stmt))
        self._edge(current, head.index)
        after = self._fresh()
        body_entry = self._fresh()
        self._edge(head, body_entry.index)
        self._edge(head, after.index)
        self._loops.append((head.index, after.index))
        mark = len(self.cfg.blocks)
        body_end = self._sequence(list(stmt.body), body_entry)  # type: ignore[attr-defined]
        self._loops.pop()
        self._edge(body_end, head.index)
        orelse = list(getattr(stmt, "orelse", []))
        if orelse:
            else_end = self._sequence(orelse, self._fresh_from(head))
            self._edge(else_end, after.index)
        members = {body_entry.index}
        members.update(range(mark, len(self.cfg.blocks)))
        members.discard(after.index)
        self.cfg.loop_blocks[id(stmt)] = members
        self.cfg.loop_heads[id(stmt)] = head.index
        return after

    def _build_with(self, stmt: ast.stmt, current: BasicBlock) -> BasicBlock:
        items = list(stmt.items)  # type: ignore[attr-defined]
        for item in items:
            if item.optional_vars is not None:
                bind = ast.Assign(
                    targets=[item.optional_vars], value=item.context_expr
                )
                current.statements.append(ast.copy_location(bind, stmt))
            else:
                current.statements.append(
                    self._header_expr(item.context_expr, stmt)
                )
        held = [ast.unparse(item.context_expr) for item in items]
        self._held.extend(held)
        body_entry = self._fresh()
        self._edge(current, body_entry.index)
        body_end = self._sequence(list(stmt.body), body_entry)  # type: ignore[attr-defined]
        for _ in held:
            self._held.pop()
        after = self._fresh()
        self._edge(body_end, after.index)
        return after

    def _build_try(self, stmt: ast.Try, current: BasicBlock) -> BasicBlock:
        after = self._fresh()
        dispatch = self._fresh()

        # --- body, with exceptions routed to this try's dispatch.
        self._handlers.append(dispatch.index)
        body_entry = self._fresh()
        self._edge(current, body_entry.index)
        body_end = self._sequence(stmt.body, body_entry)
        self._handlers.pop()

        # --- else runs only after a clean body.
        if stmt.orelse:
            body_end = self._sequence(stmt.orelse, self._fresh_from_opt(body_end))

        # --- finally is built once; its exit over-approximates.
        if stmt.finalbody:
            final_entry = self._fresh()
            final_end = self._sequence(stmt.finalbody, final_entry)
            self._edge(body_end, final_entry.index)
            self._edge(final_end, after.index)
            # Re-raise continuation: the finally block may be left on
            # the exceptional path too.
            self._edge(final_end, self._exc_target())
            normal_join = final_entry.index
        else:
            self._edge(body_end, after.index)
            normal_join = after.index

        # --- handlers hang off the dispatch block.
        matched_all = False
        for handler in stmt.handlers:
            handler_entry = self._fresh()
            self._edge(dispatch, handler_entry.index)
            mark = len(self.cfg.blocks)
            handler_end = self._sequence(handler.body, handler_entry)
            region = {handler_entry.index}
            region.update(range(mark, len(self.cfg.blocks)))
            self.cfg.handler_regions.append(region)
            self._edge(handler_end, normal_join)
            if self._catches_everything(handler):
                matched_all = True
        if not matched_all:
            # An exception no handler matches propagates outward
            # (through finally when present).
            if stmt.finalbody:
                self._edge(dispatch, normal_join)
            else:
                self._edge(dispatch, self._exc_target())
        return after

    @staticmethod
    def _catches_everything(handler: ast.ExceptHandler) -> bool:
        """Whether the handler matches any exception (bare/BaseException)."""
        if handler.type is None:
            return True
        node = handler.type
        if isinstance(node, ast.Attribute):
            return node.attr == "BaseException"
        return isinstance(node, ast.Name) and node.id == "BaseException"

    def _fresh_from_opt(self, pred: Optional[BasicBlock]) -> BasicBlock:
        block = self._fresh()
        if pred is not None:
            self._edge(pred, block.index)
        return block

    # ------------------------------------------------------------------
    def _finalize(self) -> None:
        """Stamp exception metadata once the block graph is complete.

        Blocks carry the exception target of the handler context active
        when they were created (:meth:`_fresh`); here only ``may_raise``
        and the default target for the entry/exit blocks remain.
        """
        for block in self.cfg.blocks:
            block.may_raise = any(
                isinstance(node, ast.Call) for node in block.walk()
            )
            if block.exc_successor is None:
                block.exc_successor = self.cfg.exit


def build_cfg(func: ast.AST) -> ControlFlowGraph:
    """Build the :class:`ControlFlowGraph` of one function definition."""
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise TypeError("build_cfg expects a function definition node")
    return _Builder(func).build()
