"""Runtime contract layer: ``@invariant``-checked debug mode.

The static rules prove *shape* properties of the source; this module
checks the corresponding *state* properties while the algorithms run.
Both enforce the same discipline (see ``docs/contracts.md``), so a
property test exercising :class:`~repro.spanning.brtree.BRPlusTree`
under ``REPRO_CHECK_INVARIANTS=1`` validates exactly the contracts the
linter cannot see statically — parent/depth consistency, the single
strictly-shallower backward link, drank monotonicity.

The layer is free when disabled: :func:`invariant` wraps methods with a
single environment check, and checkers only run when
``REPRO_CHECK_INVARIANTS`` is set to a truthy value.
"""

from __future__ import annotations

import functools
import os
from typing import Any, Callable, TypeVar

from repro.exceptions import ContractViolation

#: Environment variable gating the runtime checks.
ENV_VAR = "REPRO_CHECK_INVARIANTS"

_FALSY = frozenset({"", "0", "false", "no", "off"})

_Method = TypeVar("_Method", bound=Callable[..., Any])


def invariants_enabled() -> bool:
    """Whether runtime invariant checking is switched on.

    Controlled by the ``REPRO_CHECK_INVARIANTS`` environment variable;
    any value other than ``""``, ``0``, ``false``, ``no`` or ``off``
    (case-insensitive) enables the checks.
    """
    return os.environ.get(ENV_VAR, "").strip().lower() not in _FALSY


def require(condition: object, message: str) -> None:
    """Raise :class:`~repro.exceptions.ContractViolation` unless true."""
    if not condition:
        raise ContractViolation(message)


def invariant(*checker_names: str) -> Callable[[_Method], _Method]:
    """Decorate a method to run named checker methods after it returns.

    Each name in ``checker_names`` must be a zero-argument method on the
    same object; the checkers run — in order — only when
    :func:`invariants_enabled` is true, and raise
    :class:`~repro.exceptions.ContractViolation` on breakage.  The
    wrapped method's return value is passed through untouched.
    """

    def decorate(method: _Method) -> _Method:
        @functools.wraps(method)
        def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
            result = method(self, *args, **kwargs)
            if invariants_enabled():
                for name in checker_names:
                    getattr(self, name)()
            return result

        return wrapper  # type: ignore[return-value]

    return decorate
