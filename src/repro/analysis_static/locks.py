"""Lock-discipline race detection over per-class lock models.

The prefetch layer shares a ``PageCache`` between the caller and the
``BlockPrefetcher`` daemon thread, and the ROADMAP's multi-process scan
sharding will add more shared state.  The discipline this pass enforces
is the standard one:

    an attribute that is ever *written under a lock* belongs to that
    lock, and every other access — read or write — must hold it too.

For each class the pass collects the lock attributes (``self.X =
threading.Lock()`` / ``RLock`` / ``Condition`` / ``Semaphore``), runs
the must-hold lockset dataflow (:func:`~repro.analysis_static.dataflow.
held_locksets`) over every method CFG, and records which ``self.*``
attributes are accessed under which held locks.  Attributes with at
least one lock-guarded write form the *guarded set*; any access to a
guarded attribute from a block whose lockset is disjoint from the
attribute's guards raises:

* **THR001** — unguarded *write*: two racing writers corrupt state.
* **THR002** — unguarded *read*: a torn or stale read of state the
  class itself says needs the lock.

``__init__``/``__del__`` run before/after the object is shared and are
exempt, as are accesses to the lock attributes themselves.  Classes
with no lock attribute produce nothing — the pass only holds code to
the discipline it opted into.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis_static.cfg import build_cfg
from repro.analysis_static.dataflow import held_locksets
from repro.analysis_static.engine import Violation
from repro.analysis_static.rules import Rule

__all__ = ["LockModel", "UnguardedReadRule", "UnguardedWriteRule", "build_lock_models"]

#: Constructors whose result makes an attribute a lock.
_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"})

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "add", "discard", "remove", "pop",
        "popitem", "clear", "update", "setdefault", "appendleft",
        "popleft", "move_to_end", "sort", "reverse",
    }
)

#: Methods exempt from the discipline (object not yet / no longer shared).
_EXEMPT_METHODS = frozenset({"__init__", "__del__", "__post_init__"})


def _is_lock_factory(value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = (
        func.id if isinstance(func, ast.Name)
        else func.attr if isinstance(func, ast.Attribute)
        else ""
    )
    return name in _LOCK_FACTORIES


def _self_attr(node: ast.expr) -> Optional[str]:
    """``X`` when ``node`` is exactly ``self.X``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _Access:
    """One read or write of ``self.<attr>`` inside a method."""

    __slots__ = ("attr", "is_write", "node", "method", "held")

    def __init__(
        self,
        attr: str,
        is_write: bool,
        node: ast.AST,
        method: str,
        held: FrozenSet[str],
    ) -> None:
        self.attr = attr
        self.is_write = is_write
        self.node = node
        self.method = method
        self.held = held


class LockModel:
    """The lock discipline of one class, extracted from its AST."""

    def __init__(self, class_node: ast.ClassDef) -> None:
        #: The class this model describes.
        self.class_node = class_node
        #: Names of ``self.*`` attributes holding lock objects.
        self.lock_attrs: Set[str] = set()
        #: Every ``self.*`` access observed outside exempt methods.
        self.accesses: List[_Access] = []
        #: ``attr -> lock attrs held at some write of it``.
        self.guards: Dict[str, Set[str]] = {}
        self._extract()

    # ------------------------------------------------------------------
    def _methods(self) -> Iterator[ast.FunctionDef]:
        for item in self.class_node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield item

    def _extract(self) -> None:
        for method in self._methods():
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                if not _is_lock_factory(node.value):
                    continue
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        self.lock_attrs.add(attr)
        if not self.lock_attrs:
            return
        for method in self._methods():
            if method.name in _EXEMPT_METHODS:
                continue
            self._collect_accesses(method)
        for access in self.accesses:
            if not access.is_write:
                continue
            if access.held:
                self.guards.setdefault(access.attr, set()).update(access.held)

    # ------------------------------------------------------------------
    def _collect_accesses(self, method: ast.FunctionDef) -> None:
        cfg = build_cfg(method)
        locksets = held_locksets(cfg)
        for block in cfg.blocks:
            held = self._held_lock_attrs(locksets[block.index])
            for stmt in block.statements:
                for attr, is_write, node in self._stmt_accesses(stmt):
                    if attr in self.lock_attrs:
                        continue
                    self.accesses.append(
                        _Access(attr, is_write, node, method.name, held)
                    )

    def _held_lock_attrs(self, lockset: FrozenSet[str]) -> FrozenSet[str]:
        """Class lock attrs held, from lock expression strings."""
        held: Set[str] = set()
        for expr in lockset:
            if expr.startswith("self."):
                attr = expr[len("self."):].split(".")[0].split("(")[0]
                if attr in self.lock_attrs:
                    held.add(attr)
        return frozenset(held)

    def _stmt_accesses(
        self, stmt: ast.stmt
    ) -> Iterator[Tuple[str, bool, ast.AST]]:
        """``(attr, is_write, node)`` for each ``self.*`` touch in ``stmt``."""
        mutated = {id(node) for _attr, node in _mutator_receivers(stmt)}
        for node in ast.walk(stmt):
            if isinstance(node, ast.Attribute):
                attr = _self_attr(node)
                if attr is None:
                    continue
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    yield attr, True, node
                else:
                    yield attr, id(node) in mutated, node
            elif isinstance(node, (ast.Subscript,)):
                # `self.X[k] = v` / `del self.X[k]` mutate self.X.
                attr = _self_attr(node.value)
                if attr is not None and isinstance(
                    node.ctx, (ast.Store, ast.Del)
                ):
                    yield attr, True, node

    # ------------------------------------------------------------------
    def violations(self) -> Iterator[Tuple[str, _Access]]:
        """Yield ``(rule_id, access)`` for each discipline breach."""
        if not self.guards:
            return
        for access in self.accesses:
            guards = self.guards.get(access.attr)
            if not guards:
                continue
            if access.held & guards:
                continue
            yield ("THR001" if access.is_write else "THR002"), access


def _mutator_receivers(stmt: ast.stmt) -> Iterator[Tuple[str, ast.AST]]:
    """``(attr, self.attr node)`` mutated via ``self.X.append(...)`` etc."""
    for node in ast.walk(stmt):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in _MUTATORS:
            continue
        attr = _self_attr(func.value)
        if attr is not None:
            yield attr, func.value


def build_lock_models(tree: ast.AST) -> List[LockModel]:
    """Extract a :class:`LockModel` for every lock-owning class."""
    models = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            model = LockModel(node)
            if model.lock_attrs:
                models.append(model)
    return models


class _LockRule(Rule):
    """Shared machinery for the two lock-discipline rules."""

    _want_write = True

    def applies_to(self, relpath: str) -> bool:
        """Any module may define a lock-owning class."""
        return True

    def check(self, tree: ast.AST, relpath: str) -> List[Violation]:
        """Run the per-class lock models and keep this rule's breaches."""
        out: List[Violation] = []
        for model in build_lock_models(tree):
            for rule_id, access in model.violations():
                is_write = rule_id == "THR001"
                if is_write != self._want_write:
                    continue
                guards = sorted(model.guards.get(access.attr, ()))
                kind = "write to" if is_write else "read of"
                out.append(
                    self.violation(
                        access.node, relpath,
                        f"{kind} '{model.class_node.name}.{access.attr}' in "
                        f"{access.method}() without holding "
                        f"'self.{guards[0] if guards else '?'}' — other "
                        "accesses of this attribute are lock-guarded",
                    )
                )
        return out


class UnguardedWriteRule(_LockRule):
    """THR001: a write to lock-guarded shared state without the lock."""

    rule_id = "THR001"
    title = "unguarded write to lock-protected attribute"
    rationale = (
        "the attribute is written under a lock elsewhere in the class; "
        "a writer that skips the lock races the prefetch daemon thread "
        "and corrupts shared cache state"
    )
    _want_write = True


class UnguardedReadRule(_LockRule):
    """THR002: a read of lock-guarded shared state without the lock."""

    rule_id = "THR002"
    title = "unguarded read of lock-protected attribute"
    rationale = (
        "the attribute is written under a lock; reading it without the "
        "lock can observe torn or stale state mid-update"
    )
    _want_write = False
