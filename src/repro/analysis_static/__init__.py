"""Semi-external contract analyzer: static rules + runtime invariants.

The paper's claims rest on discipline the type system cannot express:
core algorithms hold only O(|V|) state, and every disk transfer is a
counted sequential block scan through :mod:`repro.io`.  This package
makes that discipline checkable:

* :mod:`~repro.analysis_static.rules` — pluggable AST rules (IO001,
  IO002, MEM001, SCAN001, API001, CPU001) run by the
  :class:`~repro.analysis_static.engine.Analyzer` and the
  ``repro-scc lint`` CLI subcommand;
* :mod:`~repro.analysis_static.cfg` /
  :mod:`~repro.analysis_static.dataflow` — function-level control-flow
  graphs with reaching definitions, must-hold locksets, and call-graph
  scan summaries, powering the whole-program passes:
  :mod:`~repro.analysis_static.iocost` (SCAN002/SCAN003 I/O-complexity
  inference plus the ``--cost-report``),
  :mod:`~repro.analysis_static.locks` (THR001/THR002 lock-discipline
  race detection), and :mod:`~repro.analysis_static.atomicity` (IO003
  crash-window analysis of the staged-replace protocol);
* :mod:`~repro.analysis_static.sarif` /
  :mod:`~repro.analysis_static.baseline` — SARIF 2.1.0 emission for CI
  code scanning and the committed accepted-findings baseline;
* :mod:`~repro.analysis_static.contracts` — the
  ``REPRO_CHECK_INVARIANTS``-gated runtime layer used by
  :class:`~repro.spanning.brtree.BRPlusTree`.

See ``docs/contracts.md`` for the rule catalogue and the
``# repro: allow[RULE]`` suppression pragma.
"""

from __future__ import annotations

from repro.analysis_static.contracts import (
    ENV_VAR,
    invariant,
    invariants_enabled,
    require,
)
from repro.analysis_static.engine import (
    Analyzer,
    ModuleSource,
    Violation,
    analyze_paths,
    module_relpath,
    pragma_allowances,
)
from repro.analysis_static.rules import (
    ALL_RULES,
    DEFAULT_ALLOWLIST,
    BareRenameRule,
    CoreAPIRule,
    EdgeMaterializationRule,
    NestedScanRule,
    PerEdgeBoxingRule,
    ProgramRule,
    RawIORule,
    Rule,
    SequentialScanRule,
    StagingProtocolRule,
    ThreadSocketDisciplineRule,
    UnboundedScanLoopRule,
    UnguardedReadRule,
    UnguardedWriteRule,
)

__all__ = [
    "ALL_RULES",
    "Analyzer",
    "BareRenameRule",
    "CoreAPIRule",
    "DEFAULT_ALLOWLIST",
    "ENV_VAR",
    "EdgeMaterializationRule",
    "ModuleSource",
    "NestedScanRule",
    "PerEdgeBoxingRule",
    "ProgramRule",
    "RawIORule",
    "Rule",
    "SequentialScanRule",
    "StagingProtocolRule",
    "ThreadSocketDisciplineRule",
    "UnboundedScanLoopRule",
    "UnguardedReadRule",
    "UnguardedWriteRule",
    "Violation",
    "analyze_paths",
    "invariant",
    "invariants_enabled",
    "module_relpath",
    "pragma_allowances",
    "require",
]
