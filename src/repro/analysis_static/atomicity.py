"""Exception-safety analysis for the staged-replace protocol (IO003).

``repro.io.atomic`` defines the crash-consistent swap: write a staging
file, fsync it, ``replace_file`` it over the target (rename +
directory fsync), or ``abort_replace`` on failure.  The protocol's
contract is that *no path strands a staging file*: once a function
starts staging, every continuation — normal completion, early return,
or an exception — must reach a commit barrier.

The pass runs on each function's CFG:

* **Anchors** are assignments that start a stage: an ``Assign`` whose
  target name contains ``staging`` or whose right-hand side embeds a
  ``"staging"`` string constant.  Restricting anchors to assignments
  keeps cleanup code (globs over ``*.staging``, recovery helpers) out
  of scope.
* **Commit barriers** are blocks containing a call to
  ``replace_file``, ``abort_replace`` or ``recover_staging``.  When a
  barrier sits inside an ``except`` handler, the handler's whole block
  region counts as committed — the handler is the recovery path, and
  intra-handler ordering is forgiven the same way intra-block ordering
  is.
* A violation (**IO003**) is an anchor from which the function exit is
  reachable — following normal edges and exception edges out of
  call-bearing blocks — without traversing a commit barrier.  The
  anchor block's own exception edge is exempt: within that block the
  staging file may not exist yet, which mirrors the CFG's block-level
  granularity.

Functions that merely *receive* staging paths (a staging-named
parameter) implement the protocol rather than use it and are skipped;
``repro/io/atomic.py`` itself is excluded the same way.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Sequence, Set

from repro.analysis_static.cfg import ControlFlowGraph
from repro.analysis_static.dataflow import FunctionInfo, _walk_functions
from repro.analysis_static.engine import Violation
from repro.analysis_static.rules import Rule, _path_parts

__all__ = ["StagingProtocolRule"]

_STAGING_NAME = re.compile(r"staging", re.IGNORECASE)

#: Calls that end a staging window (commit or roll back).
_COMMIT_CALLS = frozenset({"replace_file", "abort_replace", "recover_staging"})


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_staging_anchor(stmt: ast.stmt) -> bool:
    """Whether ``stmt`` is an assignment that starts a staging window."""
    if not isinstance(stmt, ast.Assign):
        return False
    for target in stmt.targets:
        for node in ast.walk(target):
            if isinstance(node, ast.Name) and _STAGING_NAME.search(node.id):
                return True
            if isinstance(node, ast.Attribute) and _STAGING_NAME.search(
                node.attr
            ):
                return True
    for node in ast.walk(stmt.value):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and _STAGING_NAME.search(node.value)
        ):
            return True
    return False


def _has_staging_parameter(func: ast.AST) -> bool:
    args = getattr(func, "args", None)
    if args is None:
        return False
    every = (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    )
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            every.append(extra)
    return any(_STAGING_NAME.search(arg.arg) for arg in every)


def _commit_blocks(cfg: ControlFlowGraph) -> Set[int]:
    """Blocks ending a staging window, handler regions expanded whole."""
    direct = {
        block.index
        for block in cfg.blocks
        if any(
            isinstance(node, ast.Call) and _call_name(node) in _COMMIT_CALLS
            for node in block.walk()
        )
    }
    expanded = set(direct)
    for region in cfg.handler_regions:
        if region & direct:
            expanded |= region
    return expanded


class StagingProtocolRule(Rule):
    """IO003: a staging file strandable by an uncovered path."""

    rule_id = "IO003"
    title = "staging path can strand without replace/abort"
    rationale = (
        "the atomic-swap contract requires every path from staging a "
        "file to reach replace_file or abort_replace; a strandable "
        "path leaks staging files and defeats crash recovery"
    )

    def applies_to(self, relpath: str) -> bool:
        """Everywhere except the module that implements the protocol."""
        return _path_parts(relpath)[-2:] != ("io", "atomic.py")

    def check(self, tree: ast.AST, relpath: str) -> List[Violation]:
        """Flag staging anchors from which the exit escapes uncommitted."""
        out: List[Violation] = []
        for info in _walk_functions(relpath, tree):
            out.extend(self._check_function(info, relpath))
        return out

    def _check_function(
        self, info: FunctionInfo, relpath: str
    ) -> Iterator[Violation]:
        node = info.node
        if _has_staging_parameter(node):
            return
        has_anchor = any(
            _is_staging_anchor(stmt)
            for stmt in ast.walk(node)
            if isinstance(stmt, ast.Assign)
        )
        if not has_anchor:
            return
        cfg = info.cfg
        commits = _commit_blocks(cfg)
        reported: Set[int] = set()
        for block in cfg.blocks:
            anchor = self._block_anchor(block.statements)
            if anchor is None or block.index in reported:
                continue
            if block.index in commits:
                continue  # staged and committed within one block
            if self._escapes(cfg, block.index, commits):
                reported.add(block.index)
                yield self.violation(
                    anchor, relpath,
                    f"staging window opened in {info.qualname} can reach "
                    "the function exit without replace_file or "
                    "abort_replace; wrap the stage in try/except "
                    "BaseException with abort_replace, and commit on "
                    "every return path",
                )

    @staticmethod
    def _block_anchor(statements: Sequence[ast.stmt]) -> Optional[ast.stmt]:
        for stmt in statements:
            if _is_staging_anchor(stmt):
                return stmt
        return None

    @staticmethod
    def _escapes(
        cfg: ControlFlowGraph, anchor: int, commits: Set[int]
    ) -> bool:
        """Whether the exit is reachable from ``anchor`` avoiding commits.

        Traversal starts at the anchor block's *normal* successors: the
        anchor block's own exception edge is forgiven (the staging file
        may not exist yet when that block raises), matching the CFG's
        intra-block tolerance.
        """
        for start in cfg.blocks[anchor].successors:
            if start in commits:
                continue
            reach = cfg.reachable_from(start, avoid=commits)
            if cfg.exit in reach:
                return True
        return False
