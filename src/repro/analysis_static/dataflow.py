"""Dataflow analyses and call-graph summaries over function CFGs.

Three reusable pieces sit here, consumed by the rule passes:

* :func:`reaching_definitions` — the classic forward may-analysis over
  a :class:`~repro.analysis_static.cfg.ControlFlowGraph`: which
  ``(name, defining block)`` pairs can reach each block's entry.  The
  I/O-cost pass uses it to decide whether a ``while`` test can ever
  change (a definition from inside the loop body reaches the head).
* :func:`held_locksets` — a forward *must*-analysis computing, for each
  block, the set of lock expressions guaranteed held on entry: the
  lexical ``with`` regions recorded by the CFG builder, joined by
  intersection across predecessors, plus explicit ``.acquire()`` /
  ``.release()`` calls.  The lock-discipline pass runs on its output.
* :class:`ProgramIndex` — every function definition of the analyzed
  module set, keyed for bare-name call resolution, with a transitive
  "performs a counted edge scan" summary computed to fixpoint.  Calls
  are resolved by name (``self.foo()`` → methods named ``foo``,
  preferring the lexically enclosing class, then the same module, then
  anywhere) — deliberately over-approximate, never silent.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis_static.cfg import ControlFlowGraph, build_cfg

__all__ = [
    "FunctionInfo",
    "ProgramIndex",
    "SCAN_METHODS",
    "assigned_names",
    "held_locksets",
    "reaching_definitions",
]

#: Method names whose call constitutes a counted edge scan.
SCAN_METHODS: FrozenSet[str] = frozenset({"scan", "scan_edges", "iter_edges"})

#: A definition site: (variable name, index of the defining block).
Definition = Tuple[str, int]


# ----------------------------------------------------------------------
# definition extraction
# ----------------------------------------------------------------------

def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt)


def assigned_names(node: ast.AST) -> Set[str]:
    """Every plain name bound by assignments anywhere under ``node``.

    Covers ``=``/``:=``/augmented assignment, ``for`` targets, ``with
    ... as`` targets and ``except ... as`` names; attribute and
    subscript stores are not *names* and are excluded by design.
    """
    names: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                names.update(_target_names(target))
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
            names.update(_target_names(sub.target))
        elif isinstance(sub, ast.NamedExpr):
            names.update(_target_names(sub.target))
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            names.update(_target_names(sub.target))
        elif isinstance(sub, (ast.With, ast.AsyncWith)):
            for item in sub.items:
                if item.optional_vars is not None:
                    names.update(_target_names(item.optional_vars))
        elif isinstance(sub, ast.ExceptHandler) and sub.name:
            names.add(sub.name)
    return names


def _block_defs(cfg: ControlFlowGraph, index: int) -> Set[str]:
    """Names defined by the statements of one block (shallow walk)."""
    defs: Set[str] = set()
    for stmt in cfg.blocks[index].statements:
        defs.update(assigned_names(stmt))
    return defs


# ----------------------------------------------------------------------
# reaching definitions (forward, may)
# ----------------------------------------------------------------------

def reaching_definitions(cfg: ControlFlowGraph) -> Dict[int, Set[Definition]]:
    """Map each block index to the definitions reaching its *entry*.

    A definition is ``(name, block_index_of_the_def)``.  Within a
    block, a later definition of a name kills earlier ones, so the
    block's OUT set carries at most one defining block per redefined
    name (its own) plus every surviving incoming definition.
    """
    gen: Dict[int, Set[str]] = {
        block.index: _block_defs(cfg, block.index) for block in cfg.blocks
    }
    in_sets: Dict[int, Set[Definition]] = {b.index: set() for b in cfg.blocks}
    out_sets: Dict[int, Set[Definition]] = {b.index: set() for b in cfg.blocks}
    preds: Dict[int, Set[int]] = {b.index: set() for b in cfg.blocks}
    for block in cfg.blocks:
        targets = set(block.successors)
        if block.may_raise and block.exc_successor is not None:
            targets.add(block.exc_successor)
        for dst in targets:
            preds[dst].add(block.index)

    changed = True
    while changed:
        changed = False
        for block in cfg.blocks:
            index = block.index
            new_in: Set[Definition] = set()
            for pred in preds[index]:
                new_in |= out_sets[pred]
            new_out = {
                (name, src) for name, src in new_in if name not in gen[index]
            }
            new_out |= {(name, index) for name in gen[index]}
            if new_in != in_sets[index] or new_out != out_sets[index]:
                in_sets[index] = new_in
                out_sets[index] = new_out
                changed = True
    return in_sets


# ----------------------------------------------------------------------
# locksets (forward, must)
# ----------------------------------------------------------------------

def _lock_call_target(node: ast.AST) -> Optional[Tuple[str, str]]:
    """``("<expr>", "acquire"|"release")`` for explicit lock calls."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("acquire", "release")
    ):
        return ast.unparse(node.func.value), node.func.attr
    return None


def held_locksets(cfg: ControlFlowGraph) -> Dict[int, FrozenSet[str]]:
    """For each block, the lock expressions *guaranteed* held inside it.

    Starts from the lexical ``with`` regions stamped on the blocks,
    adds explicit ``X.acquire()``/``X.release()`` transfer within a
    block, and joins predecessors by intersection (must-hold).  The
    result is what each block's statements run under, i.e. the block's
    own ``with`` items are included.
    """
    all_locks: Set[str] = set()
    transfers: Dict[int, Tuple[Set[str], Set[str]]] = {}
    for block in cfg.blocks:
        acquired: Set[str] = set()
        released: Set[str] = set()
        for node in block.walk():
            target = _lock_call_target(node)
            if target is None:
                continue
            expr, op = target
            all_locks.add(expr)
            if op == "acquire":
                acquired.add(expr)
                released.discard(expr)
            else:
                released.add(expr)
                acquired.discard(expr)
        transfers[block.index] = (acquired, released)
        all_locks.update(block.held_with)

    universe = frozenset(all_locks)
    in_sets: Dict[int, FrozenSet[str]] = {
        b.index: universe for b in cfg.blocks
    }
    in_sets[cfg.entry] = frozenset()
    preds: Dict[int, Set[int]] = {b.index: set() for b in cfg.blocks}
    for block in cfg.blocks:
        targets = set(block.successors)
        if block.may_raise and block.exc_successor is not None:
            targets.add(block.exc_successor)
        for dst in targets:
            preds[dst].add(block.index)

    def out_of(index: int) -> FrozenSet[str]:
        acquired, released = transfers[index]
        block = cfg.blocks[index]
        # `with` items are scoped lexically: held inside the block, and
        # propagated only to successors that share the region.
        held = (set(in_sets[index]) | acquired | set(block.held_with))
        return frozenset(held - released)

    changed = True
    while changed:
        changed = False
        for block in cfg.blocks:
            index = block.index
            if index == cfg.entry:
                continue
            incoming: Optional[Set[str]] = None
            for pred in preds[index]:
                candidate = set(out_of(pred))
                # A with-held lock does not survive past its region:
                # drop predecessors' lexical holds the successor block
                # is not itself inside.
                candidate -= set(cfg.blocks[pred].held_with) - set(
                    block.held_with
                )
                incoming = (
                    candidate if incoming is None else incoming & candidate
                )
            new_in = frozenset(incoming) if incoming is not None else frozenset()
            if new_in != in_sets[index]:
                in_sets[index] = new_in
                changed = True

    return {
        b.index: frozenset(in_sets[b.index] | b.held_with)
        for b in cfg.blocks
    }


# ----------------------------------------------------------------------
# the program index: functions, calls, scan summaries
# ----------------------------------------------------------------------

@dataclass
class FunctionInfo:
    """One function definition with its location and lazy CFG."""

    #: ``repro/...``-rooted module path the function lives in.
    relpath: str
    #: Dotted name inside the module (``Class.method`` or ``func``).
    qualname: str
    #: The defining AST node.
    node: ast.AST
    #: Name of the immediately enclosing class, if any.
    owner_class: Optional[str] = None
    _cfg: Optional[ControlFlowGraph] = field(default=None, repr=False)

    @property
    def name(self) -> str:
        """The bare (unqualified) function name."""
        return getattr(self.node, "name", "")

    @property
    def cfg(self) -> ControlFlowGraph:
        """The function's CFG, built on first use and cached."""
        if self._cfg is None:
            self._cfg = build_cfg(self.node)
        return self._cfg


def _walk_functions(
    relpath: str, tree: ast.AST
) -> Iterator[FunctionInfo]:
    stack: List[Tuple[ast.AST, Tuple[str, ...], Optional[str]]] = [
        (tree, (), None)
    ]
    while stack:
        node, prefix, owner = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = ".".join(prefix + (child.name,))
                yield FunctionInfo(
                    relpath=relpath, qualname=qual, node=child,
                    owner_class=owner,
                )
                stack.append((child, prefix + (child.name,), owner))
            elif isinstance(child, ast.ClassDef):
                stack.append((child, prefix + (child.name,), child.name))
            else:
                stack.append((child, prefix, owner))


def _called_names(node: ast.AST) -> Iterator[Tuple[str, ast.Call]]:
    """Bare callee names of every call under ``node``."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if isinstance(func, ast.Name):
            yield func.id, sub
        elif isinstance(func, ast.Attribute):
            yield func.attr, sub


def _scans_directly(node: ast.AST) -> bool:
    for name, _call in _called_names(node):
        if name in SCAN_METHODS:
            return True
    return False


class ProgramIndex:
    """Call-graph summaries over every module handed to the analyzer.

    Parameters
    ----------
    modules:
        ``(relpath, tree)`` pairs — typically every parsed module of an
        ``analyze_paths`` run, so call edges resolve across files.
    """

    def __init__(self, modules: Iterable[Tuple[str, ast.AST]]) -> None:
        self.functions: List[FunctionInfo] = []
        for relpath, tree in modules:
            self.functions.extend(_walk_functions(relpath, tree))
        self._by_name: Dict[str, List[FunctionInfo]] = {}
        for info in self.functions:
            self._by_name.setdefault(info.name, []).append(info)
        self._scan_summary: Optional[Dict[int, bool]] = None

    # ------------------------------------------------------------------
    def resolve(
        self, name: str, caller: Optional[FunctionInfo] = None
    ) -> List[FunctionInfo]:
        """Functions a bare callee ``name`` may refer to.

        Same-class methods win, then same-module functions, then any
        function in the program with that name.
        """
        candidates = self._by_name.get(name, [])
        if not candidates or caller is None:
            return list(candidates)
        same_class = [
            c for c in candidates
            if c.owner_class is not None
            and c.owner_class == caller.owner_class
            and c.relpath == caller.relpath
        ]
        if same_class:
            return same_class
        same_module = [c for c in candidates if c.relpath == caller.relpath]
        return same_module or list(candidates)

    # ------------------------------------------------------------------
    def scans_edges(self, info: FunctionInfo) -> bool:
        """Whether ``info`` performs an edge scan, directly or via calls."""
        return self._scan_summaries().get(id(info.node), False)

    def call_scans(self, call: ast.Call, caller: FunctionInfo) -> bool:
        """Whether one call site may trigger an edge scan.

        True for direct ``.scan()``-family calls and for calls resolved
        to a function whose summary scans.
        """
        func = call.func
        name = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else ""
        )
        if name in SCAN_METHODS:
            return True
        return any(
            self.scans_edges(callee) for callee in self.resolve(name, caller)
        )

    def _scan_summaries(self) -> Dict[int, bool]:
        if self._scan_summary is not None:
            return self._scan_summary
        summary: Dict[int, bool] = {
            id(info.node): _scans_directly(info.node)
            for info in self.functions
        }
        # Propagate through the (name-resolved) call graph to fixpoint.
        changed = True
        while changed:
            changed = False
            for info in self.functions:
                if summary[id(info.node)]:
                    continue
                for name, _call in _called_names(info.node):
                    if name in SCAN_METHODS:
                        continue  # counted by _scans_directly already
                    if any(
                        summary.get(id(callee.node), False)
                        for callee in self.resolve(name, info)
                    ):
                        summary[id(info.node)] = True
                        changed = True
                        break
        self._scan_summary = summary
        return summary
