"""Analyzer engine: file discovery, pragma handling, and allowlists.

The engine is rule-agnostic: it parses each module once, asks every
registered :class:`~repro.analysis_static.rules.Rule` that *applies* to
the module for its violations, and then filters out anything excused by

* an inline pragma — ``# repro: allow[IO001]`` (or a comma-separated
  list, or ``allow[*]``) on the flagged line, or
* an allowlist entry — a mapping from a ``repro/...``-rooted module
  path to the rule ids excused for that whole module.

Paths are normalised so that rules can scope themselves by package
(``repro/io/``, ``repro/core/`` ...) regardless of where the source
tree lives on disk.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence

_PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_*,\s]+)\]")


@dataclass(frozen=True, order=True)
class Violation:
    """One contract violation anchored at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def module_relpath(path: str) -> str:
    """Normalise ``path`` to a ``repro/...``-rooted posix relative path.

    Falls back to the normalised input when the path does not contain a
    ``repro`` package component (e.g. lint fixtures in a temp dir) — rule
    scoping then works off whatever directory names the path does have.
    """
    norm = os.path.normpath(str(path)).replace(os.sep, "/")
    parts = [part for part in norm.split("/") if part]
    if "repro" in parts:
        return "/".join(parts[parts.index("repro"):])
    return "/".join(parts)


def pragma_allowances(source: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the rule ids excused on that line.

    The pragma form is ``# repro: allow[RULE]`` with an optional
    comma-separated rule list; ``*`` excuses every rule on the line.
    """
    allowances: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match:
            rules = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            if rules:
                allowances[lineno] = rules
    return allowances


class Analyzer:
    """Run contract rules over source files with pragma/allowlist filtering.

    Parameters
    ----------
    rules:
        Rule instances to run; the full registry
        (:data:`~repro.analysis_static.rules.ALL_RULES`) when omitted.
    allowlist:
        Mapping of ``repro/...``-rooted module paths to excused rule ids;
        :data:`~repro.analysis_static.rules.DEFAULT_ALLOWLIST` when
        omitted.  Pass ``{}`` to disable all module-level exceptions.
    """

    def __init__(
        self,
        rules: Optional[Sequence[object]] = None,
        allowlist: Optional[Mapping[str, FrozenSet[str]]] = None,
    ) -> None:
        from repro.analysis_static.rules import ALL_RULES, DEFAULT_ALLOWLIST

        self.rules = list(rules) if rules is not None else [cls() for cls in ALL_RULES]
        self.allowlist: Dict[str, FrozenSet[str]] = dict(
            DEFAULT_ALLOWLIST if allowlist is None else allowlist
        )
        #: Number of files inspected by the last :meth:`analyze_paths` call.
        self.files_checked = 0

    # ------------------------------------------------------------------
    def _allowed_for(self, relpath: str) -> FrozenSet[str]:
        allowed: set = set()
        for suffix, rules in self.allowlist.items():
            if relpath == suffix or relpath.endswith("/" + suffix):
                allowed.update(rules)
        return frozenset(allowed)

    def analyze_source(self, source: str, relpath: str) -> List[Violation]:
        """Check one module given as source text; returns sorted violations."""
        tree = ast.parse(source, filename=relpath)
        pragmas = pragma_allowances(source)
        module_allowed = self._allowed_for(relpath)
        violations: List[Violation] = []
        for rule in self.rules:
            if rule.rule_id in module_allowed:
                continue
            if not rule.applies_to(relpath):
                continue
            for violation in rule.check(tree, relpath):
                line_allowed = pragmas.get(violation.line, frozenset())
                if violation.rule in line_allowed or "*" in line_allowed:
                    continue
                violations.append(violation)
        return sorted(violations)

    def analyze_file(self, path: str) -> List[Violation]:
        """Check one module on disk; returns sorted violations."""
        # The analyzer reads source text, not graph data, so this is not
        # a counted disk transfer.
        with open(path, "r", encoding="utf-8") as handle:  # repro: allow[IO001]
            source = handle.read()
        return self.analyze_source(source, module_relpath(path))

    def analyze_paths(self, paths: Iterable[str]) -> List[Violation]:
        """Check every ``*.py`` file under ``paths`` (files or directories)."""
        files: List[str] = []
        for path in paths:
            if os.path.isdir(path):
                for dirpath, dirnames, filenames in os.walk(path):
                    dirnames.sort()
                    for filename in sorted(filenames):
                        if filename.endswith(".py"):
                            files.append(os.path.join(dirpath, filename))
            else:
                files.append(path)
        self.files_checked = len(files)
        violations: List[Violation] = []
        for filename in files:
            violations.extend(self.analyze_file(filename))
        return sorted(violations)


def analyze_paths(paths: Iterable[str]) -> List[Violation]:
    """Convenience wrapper: run the default rule set over ``paths``."""
    return Analyzer().analyze_paths(paths)
