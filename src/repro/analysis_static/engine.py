"""Analyzer engine: file discovery, pragma handling, and allowlists.

The engine is rule-agnostic: it parses each module once, asks every
registered :class:`~repro.analysis_static.rules.Rule` that *applies* to
the module for its violations, and then filters out anything excused by

* an inline pragma — ``# repro: allow[IO001]`` (or a comma-separated
  list, or ``allow[*]``) on any physical line of the flagged
  *statement* (multi-line calls included), or
* an allowlist entry — a mapping from a ``repro/...``-rooted module
  path to the rule ids excused for that whole module.

Rules come in two shapes: per-module :class:`~repro.analysis_static.
rules.Rule` passes, and whole-program :class:`~repro.analysis_static.
rules.ProgramRule` passes that receive every parsed module of the run
at once (as :class:`ModuleSource` records) so call edges resolve
across files.

Paths are normalised so that rules can scope themselves by package
(``repro/io/``, ``repro/core/`` ...) regardless of where the source
tree lives on disk.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence

_PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_*,\s]+)\]")


@dataclass(frozen=True, order=True)
class Violation:
    """One contract violation anchored at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def module_relpath(path: str) -> str:
    """Normalise ``path`` to a ``repro/...``-rooted posix relative path.

    Falls back to the normalised input when the path does not contain a
    ``repro`` package component (e.g. lint fixtures in a temp dir) — rule
    scoping then works off whatever directory names the path does have.
    """
    norm = os.path.normpath(str(path)).replace(os.sep, "/")
    parts = [part for part in norm.split("/") if part]
    if "repro" in parts:
        return "/".join(parts[parts.index("repro"):])
    return "/".join(parts)


def pragma_allowances(source: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the rule ids excused on that line.

    The pragma form is ``# repro: allow[RULE]`` with an optional
    comma-separated rule list; ``*`` excuses every rule on the line.
    """
    allowances: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match:
            rules = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            if rules:
                allowances[lineno] = rules
    return allowances


def _statement_extents(tree: ast.AST) -> List[tuple]:
    """``(first line, last line)`` spans pragmas stretch across.

    Simple statements span their full physical extent.  Compound
    statements (loops, ``with``, ``try``, function/class defs)
    contribute only their *header* lines — a pragma inside a loop body
    must not excuse the whole loop.
    """
    extents: List[tuple] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        end = getattr(node, "end_lineno", None) or start
        body = getattr(node, "body", None)
        if body and isinstance(body, list) and isinstance(body[0], ast.stmt):
            end = max(start, body[0].lineno - 1)
        if end > start:
            extents.append((start, end))
    return extents


def _expand_pragmas(
    tree: ast.AST, pragmas: Dict[int, FrozenSet[str]]
) -> Dict[int, FrozenSet[str]]:
    """Stretch line pragmas across their whole (multi-line) statement.

    A ``# repro: allow[...]`` on any physical line of a statement
    excuses the listed rules on every line of that statement, so a
    pragma can sit on the closing paren of a multi-line call while the
    violation anchors at the call's first line.
    """
    if not pragmas:
        return pragmas
    merged: Dict[int, FrozenSet[str]] = dict(pragmas)
    for start, end in _statement_extents(tree):
        rules: set = set()
        for line in range(start, end + 1):
            rules.update(pragmas.get(line, frozenset()))
        if not rules:
            continue
        for line in range(start, end + 1):
            merged[line] = merged.get(line, frozenset()) | frozenset(rules)
    return merged


@dataclass
class ModuleSource:
    """One parsed module: what whole-program rules consume."""

    #: ``repro/...``-rooted posix path used for scoping and reporting.
    relpath: str
    #: The module's source text (used for pragma filtering).
    source: str
    #: The parsed AST.
    tree: ast.AST

    @classmethod
    def from_source(cls, source: str, relpath: str) -> "ModuleSource":
        """Parse ``source`` into a :class:`ModuleSource`."""
        return cls(
            relpath=relpath,
            source=source,
            tree=ast.parse(source, filename=relpath),
        )


class Analyzer:
    """Run contract rules over source files with pragma/allowlist filtering.

    Parameters
    ----------
    rules:
        Rule instances to run; the full registry
        (:data:`~repro.analysis_static.rules.ALL_RULES`) when omitted.
    allowlist:
        Mapping of ``repro/...``-rooted module paths to excused rule ids;
        :data:`~repro.analysis_static.rules.DEFAULT_ALLOWLIST` when
        omitted.  Pass ``{}`` to disable all module-level exceptions.
    """

    def __init__(
        self,
        rules: Optional[Sequence[object]] = None,
        allowlist: Optional[Mapping[str, FrozenSet[str]]] = None,
    ) -> None:
        from repro.analysis_static.rules import ALL_RULES, DEFAULT_ALLOWLIST

        self.rules = list(rules) if rules is not None else [cls() for cls in ALL_RULES]
        self.allowlist: Dict[str, FrozenSet[str]] = dict(
            DEFAULT_ALLOWLIST if allowlist is None else allowlist
        )
        #: Number of files inspected by the last :meth:`analyze_paths` call.
        self.files_checked = 0

    # ------------------------------------------------------------------
    def _allowed_for(self, relpath: str) -> FrozenSet[str]:
        allowed: set = set()
        for suffix, rules in self.allowlist.items():
            if relpath == suffix or relpath.endswith("/" + suffix):
                allowed.update(rules)
        return frozenset(allowed)

    def analyze_modules(
        self, modules: Sequence[ModuleSource]
    ) -> List[Violation]:
        """Check a batch of parsed modules; returns sorted violations.

        Per-module rules see each module independently; whole-program
        rules (:class:`~repro.analysis_static.rules.ProgramRule`) see
        the entire batch at once so call edges resolve across files.
        Pragma and allowlist filtering applies uniformly to both.
        """
        from repro.analysis_static.rules import ProgramRule

        filters: Dict[str, tuple] = {}
        for module in modules:
            pragmas = _expand_pragmas(
                module.tree, pragma_allowances(module.source)
            )
            filters[module.relpath] = (pragmas, self._allowed_for(module.relpath))

        def admit(violation: Violation) -> bool:
            pragmas, module_allowed = filters.get(
                violation.path, ({}, frozenset())
            )
            if violation.rule in module_allowed:
                return False
            line_allowed = pragmas.get(violation.line, frozenset())
            return not (
                violation.rule in line_allowed or "*" in line_allowed
            )

        violations: List[Violation] = []
        for rule in self.rules:
            if isinstance(rule, ProgramRule):
                violations.extend(
                    v for v in rule.check_program(modules) if admit(v)
                )
                continue
            for module in modules:
                _pragmas, module_allowed = filters[module.relpath]
                if rule.rule_id in module_allowed:
                    continue
                if not rule.applies_to(module.relpath):
                    continue
                violations.extend(
                    v for v in rule.check(module.tree, module.relpath) if admit(v)
                )
        return sorted(violations)

    def analyze_source(self, source: str, relpath: str) -> List[Violation]:
        """Check one module given as source text; returns sorted violations."""
        return self.analyze_modules([ModuleSource.from_source(source, relpath)])

    def analyze_file(self, path: str) -> List[Violation]:
        """Check one module on disk; returns sorted violations."""
        return self.analyze_modules([self._load_module(path)])

    @staticmethod
    def _load_module(path: str) -> ModuleSource:
        # The analyzer reads source text, not graph data, so this is not
        # a counted disk transfer.
        with open(path, "r", encoding="utf-8") as handle:  # repro: allow[IO001]
            source = handle.read()
        return ModuleSource.from_source(source, module_relpath(path))

    def load_paths(self, paths: Iterable[str]) -> List[ModuleSource]:
        """Parse every ``*.py`` file under ``paths`` (files or dirs)."""
        files: List[str] = []
        for path in paths:
            if os.path.isdir(path):
                for dirpath, dirnames, filenames in os.walk(path):
                    dirnames.sort()
                    for filename in sorted(filenames):
                        if filename.endswith(".py"):
                            files.append(os.path.join(dirpath, filename))
            else:
                files.append(path)
        self.files_checked = len(files)
        return [self._load_module(filename) for filename in files]

    def analyze_paths(self, paths: Iterable[str]) -> List[Violation]:
        """Check every ``*.py`` file under ``paths`` (files or directories)."""
        return self.analyze_modules(self.load_paths(paths))


def analyze_paths(paths: Iterable[str]) -> List[Violation]:
    """Convenience wrapper: run the default rule set over ``paths``."""
    return Analyzer().analyze_paths(paths)
