"""Baseline files: accepted pre-existing findings, matched structurally.

A baseline is a committed JSON file listing findings the tree already
contains and has consciously accepted (typically when a new rule lands
against old code).  ``repro-scc lint`` subtracts baselined findings
before deciding its exit code, so CI fails only on *new* findings.

Matching is by ``(path, rule, message)`` — deliberately excluding the
line/column, so unrelated edits above a baselined finding do not
resurrect it.  Identical findings are matched with multiplicity: two
equal violations need two baseline entries.

The file format is a JSON object with a ``findings`` array, each entry
``{"path": ..., "rule": ..., "message": ...}``, sorted for stable
diffs.  :func:`write_baseline` produces it from live findings;
:func:`apply_baseline` splits a finding list into (new, baselined).
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.analysis_static.engine import Violation

__all__ = [
    "apply_baseline",
    "load_baseline",
    "render_baseline",
    "write_baseline",
]

#: The structural identity baselines match on.
Key = Tuple[str, str, str]


def _key(violation: Violation) -> Key:
    return (violation.path, violation.rule, violation.message)


def load_baseline(path: str) -> Counter:
    """Load a baseline file into a multiset of finding keys."""
    with open(path, "r", encoding="utf-8") as handle:  # repro: allow[IO001]
        payload = json.load(handle)
    counts: Counter = Counter()
    for entry in payload.get("findings", []):
        counts[(entry["path"], entry["rule"], entry["message"])] += 1
    return counts


def apply_baseline(
    violations: Sequence[Violation], baseline: Counter
) -> Tuple[List[Violation], List[Violation]]:
    """Split findings into ``(new, baselined)`` against a baseline.

    Matching consumes baseline entries with multiplicity, in the sorted
    order of the findings.
    """
    remaining = Counter(baseline)
    fresh: List[Violation] = []
    excused: List[Violation] = []
    for violation in sorted(violations):
        key = _key(violation)
        if remaining[key] > 0:
            remaining[key] -= 1
            excused.append(violation)
        else:
            fresh.append(violation)
    return fresh, excused


def render_baseline(violations: Sequence[Violation]) -> str:
    """Serialize findings as baseline-file JSON (sorted, trailing newline)."""
    findings: List[Dict[str, str]] = [
        {"path": path, "rule": rule, "message": message}
        for path, rule, message in sorted(
            _key(violation) for violation in violations
        )
    ]
    payload = {
        "comment": (
            "Accepted pre-existing repro-scc lint findings; matched by "
            "(path, rule, message). Regenerate with "
            "'repro-scc lint --write-baseline'."
        ),
        "findings": findings,
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_baseline(path: str, violations: Sequence[Violation]) -> None:
    """Write ``violations`` to ``path`` in baseline-file format."""
    with open(path, "w", encoding="utf-8") as handle:  # repro: allow[IO001]
        handle.write(render_baseline(violations))
