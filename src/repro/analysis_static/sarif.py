"""SARIF 2.1.0 emission for ``repro-scc lint`` findings.

SARIF (Static Analysis Results Interchange Format) is the exchange
format GitHub code scanning ingests: uploading the log annotates pull
requests inline at the flagged lines.  :func:`to_sarif` maps the
analyzer's :class:`~repro.analysis_static.engine.Violation` records to
one SARIF ``run`` — rule metadata from the registered rule classes
becomes the driver's ``rules`` array, each violation one ``result``
with a ``physicalLocation``.

The module also carries :data:`SARIF_SUBSET_SCHEMA`, a hand-reduced
JSON-Schema slice of the official SARIF 2.1.0 schema covering exactly
the fields emitted here, and :func:`validate_sarif`, a dependency-free
validator for it — so CI can assert conformance without installing
``jsonschema`` (the full-schema check still runs locally when
``jsonschema`` happens to be available; see the SARIF test module).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Sequence

from repro.analysis_static.engine import Violation

__all__ = ["SARIF_SUBSET_SCHEMA", "to_sarif", "to_sarif_json", "validate_sarif"]

#: The schema URI stamped into emitted logs.
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: A faithful subset of the SARIF 2.1.0 schema: every field this module
#: emits, with the spec's types, requiredness, and enums.  Used by
#: :func:`validate_sarif`; kept small enough to eyeball against the
#: official schema.
SARIF_SUBSET_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string"},
        "version": {"enum": ["2.1.0"]},
        "runs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "informationUri": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                    "properties": {
                                                        "text": {
                                                            "type": "string"
                                                        }
                                                    },
                                                },
                                                "fullDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                    "properties": {
                                                        "text": {
                                                            "type": "string"
                                                        }
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {"type": "integer"},
                                "level": {
                                    "enum": [
                                        "none", "note", "warning", "error"
                                    ]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {
                                        "text": {"type": "string"}
                                    },
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {
                                                                "type": (
                                                                    "string"
                                                                )
                                                            },
                                                            "uriBaseId": {
                                                                "type": (
                                                                    "string"
                                                                )
                                                            },
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": (
                                                                    "integer"
                                                                ),
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": (
                                                                    "integer"
                                                                ),
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def to_sarif(
    violations: Sequence[Violation],
    rules: Iterable[object] = (),
    tool_name: str = "repro-scc-lint",
) -> Dict[str, Any]:
    """Render violations as one SARIF 2.1.0 log dict.

    ``rules`` supplies rule metadata objects (``rule_id``/``title``/
    ``rationale`` attributes, i.e. :class:`~repro.analysis_static.
    rules.Rule` instances); rules referenced by a violation but absent
    from ``rules`` still get a bare registry entry so ``ruleIndex``
    stays valid.
    """
    catalog: List[Dict[str, Any]] = []
    rule_index: Dict[str, int] = {}
    for rule in rules:
        rule_id = getattr(rule, "rule_id", "")
        if not rule_id or rule_id in rule_index:
            continue
        rule_index[rule_id] = len(catalog)
        entry: Dict[str, Any] = {"id": rule_id}
        title = getattr(rule, "title", "")
        rationale = getattr(rule, "rationale", "")
        if title:
            entry["shortDescription"] = {"text": title}
        if rationale:
            entry["fullDescription"] = {"text": rationale}
        catalog.append(entry)
    for violation in violations:
        if violation.rule not in rule_index:
            rule_index[violation.rule] = len(catalog)
            catalog.append({"id": violation.rule})

    results: List[Dict[str, Any]] = []
    for violation in violations:
        results.append(
            {
                "ruleId": violation.rule,
                "ruleIndex": rule_index[violation.rule],
                "level": "error",
                "message": {"text": violation.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": violation.path,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": max(1, violation.line),
                                "startColumn": max(1, violation.col),
                            },
                        }
                    }
                ],
            }
        )

    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "rules": catalog,
                    }
                },
                "results": results,
            }
        ],
    }


def to_sarif_json(
    violations: Sequence[Violation],
    rules: Iterable[object] = (),
    tool_name: str = "repro-scc-lint",
) -> str:
    """The SARIF log serialized as pretty-printed JSON."""
    return json.dumps(
        to_sarif(violations, rules=rules, tool_name=tool_name),
        indent=2,
        sort_keys=True,
    )


# ----------------------------------------------------------------------
# dependency-free subset-schema validation
# ----------------------------------------------------------------------


def _type_ok(value: Any, type_name: str) -> bool:
    if type_name == "object":
        return isinstance(value, dict)
    if type_name == "array":
        return isinstance(value, list)
    if type_name == "string":
        return isinstance(value, str)
    if type_name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if type_name == "number":
        return (
            isinstance(value, (int, float)) and not isinstance(value, bool)
        )
    if type_name == "boolean":
        return isinstance(value, bool)
    return True  # pragma: no cover - unused type names


def _validate(value: Any, schema: Mapping[str, Any], where: str) -> List[str]:
    errors: List[str] = []
    if "enum" in schema:
        if value not in schema["enum"]:
            errors.append(f"{where}: {value!r} not in {schema['enum']!r}")
        return errors
    type_name = schema.get("type")
    if type_name and not _type_ok(value, type_name):
        errors.append(f"{where}: expected {type_name}, got {type(value).__name__}")
        return errors
    if type_name == "object":
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{where}: missing required property '{key}'")
        properties = schema.get("properties", {})
        for key, sub in properties.items():
            if key in value:
                errors.extend(_validate(value[key], sub, f"{where}.{key}"))
    elif type_name == "array":
        item_schema = schema.get("items")
        if item_schema:
            for position, item in enumerate(value):
                errors.extend(
                    _validate(item, item_schema, f"{where}[{position}]")
                )
    elif type_name == "integer":
        minimum = schema.get("minimum")
        if minimum is not None and value < minimum:
            errors.append(f"{where}: {value} < minimum {minimum}")
    return errors


def validate_sarif(log: Mapping[str, Any]) -> List[str]:
    """Validate ``log`` against :data:`SARIF_SUBSET_SCHEMA`.

    Returns a list of human-readable problems — empty when the log
    conforms.  This is a structural subset check (types, requiredness,
    enums, minimums), not a full JSON-Schema engine; the SARIF test
    module additionally runs the real schema when ``jsonschema`` is
    installed.
    """
    return _validate(dict(log), SARIF_SUBSET_SCHEMA, "$")
