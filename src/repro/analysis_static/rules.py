"""The contract rules enforcing the paper's I/O and memory discipline.

Each rule is an AST pass scoped to the packages whose discipline it
guards (scoping is by directory name, so lint fixtures in temporary
trees behave like the real packages they imitate):

* **IO001** — no raw file I/O (``open``, ``os.read``, ``np.loadtxt``,
  ``mmap`` ...) outside ``repro/io/``: every disk transfer must flow
  through the :class:`~repro.io.counter.IOCounter`-accounted devices,
  or the ``# of I/Os`` columns of the evaluation silently stop meaning
  anything.
* **MEM001** — no O(|E|) materialization inside ``repro/core/`` and
  ``repro/spanning/``: the semi-external claim is that algorithms hold
  only O(|V|) state (BR⁺-Tree = 3|V|, BR-Tree = 2|V|).
* **IO002** — no bare ``os.replace``/``os.rename`` (or ``shutil.move``)
  outside ``repro/io/atomic.py``: file swaps must go through the
  staged-fsync-replace protocol, or a crash between rename and fsync
  can leave a file the durability story no longer covers.
* **SCAN001** — edge files are consumed by forward block iteration
  only; computed-offset ``seek`` lives solely in ``repro/io/blocks.py``.
* **API001** — public functions in ``repro/core/`` consume
  ``DiskGraph``/``EdgeFile`` objects, never raw paths, so nothing can
  open a side channel around the counted devices.
* **CPU001** — no per-edge ``int()``/``.tolist()`` boxing inside
  ``repro/core/`` edge-scan loops: batches go to a
  ``repro.kernels`` backend as arrays (the one sanctioned per-edge
  loop set lives in ``repro/kernels/scalar.py``, outside this rule's
  scope).
* **THR003** — ``multiprocessing`` (and ``shared_memory``) imports only
  inside ``repro/parallel/``, and every created shared-memory segment
  must unlink on a ``finally`` path: worker fan-out goes through the
  deterministic pool, and crashed runs must not leak ``/dev/shm``.
* **THR004** — thread and socket machinery is confined to
  ``repro/service/`` and ``repro/obs/`` (the daemon and the
  observability plane are the only long-lived concurrent components),
  and every queue anywhere is constructed with an explicit bound: an
  unbounded queue is a hidden O(∞) buffer that turns overload into an
  out-of-memory crash instead of back-pressure.

Three whole-program passes live in sibling modules and register here
too (imported at the bottom of this file to break the import cycle):

* **SCAN002/SCAN003** (:mod:`~repro.analysis_static.iocost`) —
  call-graph I/O-complexity inference: nested edge scans and scans in
  unbounded ``while`` retry loops.
* **THR001/THR002** (:mod:`~repro.analysis_static.locks`) —
  lock-discipline race detection over per-class lock models.
* **IO003** (:mod:`~repro.analysis_static.atomicity`) — crash-window
  analysis of the staged-replace protocol.

New rules subclass :class:`Rule` (or :class:`ProgramRule` when they
need the whole module set) and register in :data:`ALL_RULES`.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Iterator, List, Sequence, Tuple, Type

from repro.analysis_static.engine import ModuleSource, Violation

#: Module-level exceptions to the rules, keyed by ``repro/...``-rooted
#: path.  Keep this list short, and justify every entry:
DEFAULT_ALLOWLIST: Dict[str, FrozenSet[str]] = {
    # The SNAP text-interchange boundary: converting text dumps to and
    # from the binary layout is this module's entire purpose, and it
    # runs once at import/export time, outside any counted
    # semi-external run.
    "repro/graph/io_text.py": frozenset({"IO001"}),
    # The trace writer persists observability records (JSONL spans and
    # the summary sidecar).  These are diagnostics about a run, not part
    # of it — charging them to the block counter would corrupt the very
    # I/O tallies the trace exists to report.
    "repro/obs/trace.py": frozenset({"IO001"}),
    # The metrics writer is the same class of sink: JSONL snapshots and
    # the Prometheus textfile describe the run's counted I/O and must
    # never be part of it — the regression gate's metrics re-run pins
    # that transparency.
    "repro/obs/sampler.py": frozenset({"IO001"}),
    # The one sanctioned lookahead reader: the background prefetcher
    # seeks once to position its private handle and runs the repo's only
    # permitted reader thread.  Its reads are deferred-accounted by the
    # consumer at dequeue time (BlockDevice.account_prefetched_read), so
    # the counted I/O stays identical to a synchronous scan.
    "repro/io/prefetch.py": frozenset({"SCAN001"}),
}


def _path_parts(relpath: str) -> Tuple[str, ...]:
    return tuple(part for part in relpath.split("/") if part)


def _dir_parts(relpath: str) -> Tuple[str, ...]:
    return _path_parts(relpath)[:-1]


def _terminal_name(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


class Rule:
    """One pluggable contract rule: a scoped AST pass.

    Subclasses set :attr:`rule_id`, :attr:`title` and :attr:`rationale`
    and implement :meth:`applies_to` and :meth:`check`.
    """

    #: Stable identifier named in lint output and ``allow[...]`` pragmas.
    rule_id: str = "RULE000"
    #: One-line human description.
    title: str = ""
    #: Why the rule preserves the paper's model (shown by ``--list-rules``).
    rationale: str = ""

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule checks the module at ``relpath``."""
        raise NotImplementedError

    def check(self, tree: ast.AST, relpath: str) -> List[Violation]:
        """Return this rule's violations in the parsed module."""
        raise NotImplementedError

    def violation(self, node: ast.AST, relpath: str, message: str) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            path=relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            message=message,
        )


class ProgramRule(Rule):
    """A rule that analyzes every module of the run at once.

    Subclasses implement :meth:`check_program` over the full parsed
    module set (call edges resolve across files); :meth:`applies_to`
    governs which modules the rule may *emit* for, not which it sees.
    :meth:`check` adapts single-module engine paths by wrapping the one
    module as a batch.
    """

    def check(self, tree: ast.AST, relpath: str) -> List[Violation]:
        """Run :meth:`check_program` over this one module."""
        return self.check_program(
            [ModuleSource(relpath=relpath, source="", tree=tree)]
        )

    def check_program(
        self, modules: Sequence[ModuleSource]
    ) -> List[Violation]:
        """Return violations across the whole module batch."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# IO001
# ----------------------------------------------------------------------

_RAW_OS_CALLS = frozenset(
    {"open", "fdopen", "read", "write", "pread", "pwrite", "lseek", "sendfile"}
)
_RAW_NUMPY_CALLS = frozenset(
    {"loadtxt", "savetxt", "genfromtxt", "fromfile", "memmap"}
)
_RAW_PATH_METHODS = frozenset(
    {"read_text", "read_bytes", "write_text", "write_bytes"}
)


class RawIORule(Rule):
    """IO001: raw file I/O outside ``repro/io/``."""

    rule_id = "IO001"
    title = "raw file I/O outside repro/io/"
    rationale = (
        "every disk transfer must flow through the IOCounter-accounted "
        "BlockDevice/EdgeFile so the reported # of I/Os stays faithful"
    )

    def applies_to(self, relpath: str) -> bool:
        """Everywhere except inside the ``io`` package itself."""
        return "io" not in _dir_parts(relpath)

    def check(self, tree: ast.AST, relpath: str) -> List[Violation]:
        """Flag calls that move bytes to or from disk behind the counter."""
        remedy = "; route the transfer through repro.io (IOCounter-accounted)"
        out: List[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                out.append(
                    self.violation(node, relpath, "raw open() call" + remedy)
                )
                continue
            if not isinstance(func, ast.Attribute):
                continue
            base = _terminal_name(func.value)
            if base == "os" and func.attr in _RAW_OS_CALLS:
                out.append(
                    self.violation(node, relpath, f"raw os.{func.attr}() call" + remedy)
                )
            elif base in ("np", "numpy") and func.attr in _RAW_NUMPY_CALLS:
                out.append(
                    self.violation(
                        node, relpath, f"raw numpy {func.attr}() file access" + remedy
                    )
                )
            elif base == "io" and func.attr == "open":
                out.append(
                    self.violation(node, relpath, "raw io.open() call" + remedy)
                )
            elif base == "mmap" and func.attr == "mmap":
                out.append(
                    self.violation(
                        node,
                        relpath,
                        "mmap bypasses block-granular accounting" + remedy,
                    )
                )
            elif func.attr == "tofile":
                out.append(
                    self.violation(node, relpath, "raw ndarray.tofile() call" + remedy)
                )
            elif func.attr in _RAW_PATH_METHODS:
                out.append(
                    self.violation(
                        node, relpath, f"raw Path.{func.attr}() call" + remedy
                    )
                )
        return out


# ----------------------------------------------------------------------
# IO002
# ----------------------------------------------------------------------

_RENAME_OS_CALLS = frozenset({"replace", "rename", "renames"})


class BareRenameRule(Rule):
    """IO002: bare file renames outside the atomic-rewrite module.

    ``os.replace`` alone is not crash-safe: the staged bytes may still
    sit in the page cache when power is lost, and the directory entry
    swap itself needs a directory fsync to be durable.
    :mod:`repro.io.atomic` wraps the full stage -> fsync -> replace ->
    dir-fsync protocol (plus the sidecar manifest that
    ``recover_staging`` cleans up), so every rename in the tree must go
    through it.  Deliberate exceptions are excused line-by-line with
    ``# repro: allow[IO002]`` or a :data:`DEFAULT_ALLOWLIST` entry.
    """

    rule_id = "IO002"
    title = "bare os.replace/os.rename outside repro/io/atomic.py"
    rationale = (
        "file swaps must use the staged fsync+replace protocol of "
        "repro.io.atomic; a bare rename can lose data on power failure "
        "and bypasses torn-write recovery"
    )

    def applies_to(self, relpath: str) -> bool:
        """Everywhere except the one module that implements the protocol."""
        parts = _path_parts(relpath)
        return not (parts and parts[-1] == "atomic.py" and "io" in parts[:-1])

    def check(self, tree: ast.AST, relpath: str) -> List[Violation]:
        """Flag ``os.replace``/``os.rename``/``shutil.move`` calls."""
        remedy = (
            "; swap files via repro.io.atomic.replace_file (staged "
            "fsync + atomic replace + directory fsync)"
        )
        out: List[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            base = _terminal_name(func.value)
            if base == "os" and func.attr in _RENAME_OS_CALLS:
                out.append(
                    self.violation(
                        node, relpath,
                        f"bare os.{func.attr}() call" + remedy,
                    )
                )
            elif base == "shutil" and func.attr == "move":
                out.append(
                    self.violation(
                        node, relpath, "bare shutil.move() call" + remedy
                    )
                )
        return out


# ----------------------------------------------------------------------
# MEM001
# ----------------------------------------------------------------------

_EDGE_NAME_RE = re.compile(r"(^|_)edges?($|_)")
_SCAN_METHODS = frozenset({"scan", "scan_edges", "iter_edges"})
_CONTAINER_FACTORIES = frozenset(
    {"list", "set", "dict", "defaultdict", "OrderedDict", "Counter", "deque"}
)
_ACCUMULATE_METHODS = frozenset(
    {"add", "append", "extend", "update", "setdefault", "insert", "appendleft"}
)


def _is_scan_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _SCAN_METHODS
    )


def _is_edge_expr(node: ast.AST) -> bool:
    if _is_scan_call(node):
        return True
    name = _terminal_name(node)
    return bool(name) and _EDGE_NAME_RE.search(name) is not None


def _scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Yield the nodes of one scope, skipping nested function/class bodies."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class EdgeMaterializationRule(Rule):
    """MEM001: O(|E|) materialization inside the algorithm packages."""

    rule_id = "MEM001"
    title = "O(|E|) materialization in repro/core/ or repro/spanning/"
    rationale = (
        "semi-external algorithms may hold only O(|V|) state; the edge "
        "set is streamed block-by-block, never resident"
    )

    def applies_to(self, relpath: str) -> bool:
        """Only the algorithm packages carry the O(|V|) memory contract."""
        dirs = _dir_parts(relpath)
        return "core" in dirs or "spanning" in dirs

    def check(self, tree: ast.AST, relpath: str) -> List[Violation]:
        """Flag whole-edge-list materialization and per-edge accumulation."""
        out: List[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in ("list", "sorted", "tuple")
                and node.args
                and _is_edge_expr(node.args[0])
            ):
                out.append(
                    self.violation(
                        node,
                        relpath,
                        f"{func.id}() over an edge iterator materializes "
                        "O(|E|) state; stream per-block batches instead",
                    )
                )
            elif isinstance(func, ast.Attribute) and func.attr == "read_all":
                out.append(
                    self.violation(
                        node,
                        relpath,
                        "read_all() loads the whole edge list into memory; "
                        "consume edges with scan()",
                    )
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "tolist"
                and _is_edge_expr(func.value)
            ):
                out.append(
                    self.violation(
                        node,
                        relpath,
                        "tolist() on an edge array materializes O(|E|) "
                        "Python objects; keep edges in per-block batches",
                    )
                )
        out.extend(self._scan_loop_accumulation(tree, relpath))
        return out

    # ------------------------------------------------------------------
    def _scan_loop_accumulation(
        self, tree: ast.AST, relpath: str
    ) -> List[Violation]:
        """Flag containers grown across a full edge scan (per-edge keyed)."""
        out: List[Violation] = []
        scopes = [tree] if isinstance(tree, ast.Module) else []
        scopes.extend(
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            scan_loops = [
                node
                for node in _scope_walk(scope)
                if isinstance(node, ast.For) and _is_scan_call(node.iter)
            ]
            if not scan_loops:
                continue
            inside: set = set()
            for loop in scan_loops:
                for node in ast.walk(loop):
                    inside.add(id(node))
            containers: set = set()
            for node in _scope_walk(scope):
                if id(node) in inside:
                    continue
                targets: List[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                if value is None:
                    continue
                is_container = isinstance(
                    value,
                    (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp),
                ) or (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in _CONTAINER_FACTORIES
                )
                if not is_container:
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        containers.add(target.id)
            if not containers:
                continue
            for loop in scan_loops:
                for node in ast.walk(loop):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _ACCUMULATE_METHODS
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id in containers
                    ):
                        out.append(
                            self.violation(
                                node,
                                relpath,
                                f"'{node.func.value.id}' accumulates per-edge "
                                "state across a full edge scan (O(|E|) "
                                "growth); keep only O(|V|) state",
                            )
                        )
                    elif isinstance(node, (ast.Assign, ast.AugAssign)):
                        assign_targets = (
                            node.targets
                            if isinstance(node, ast.Assign)
                            else [node.target]
                        )
                        for target in assign_targets:
                            if (
                                isinstance(target, ast.Subscript)
                                and isinstance(target.value, ast.Name)
                                and target.value.id in containers
                            ):
                                out.append(
                                    self.violation(
                                        node,
                                        relpath,
                                        f"'{target.value.id}' is keyed "
                                        "per-edge inside a full edge scan "
                                        "(O(|E|) growth); keep only O(|V|) "
                                        "state",
                                    )
                                )
        return out


# ----------------------------------------------------------------------
# SCAN001
# ----------------------------------------------------------------------


class SequentialScanRule(Rule):
    """SCAN001: seeks and lookahead readers outside their sanctioned homes.

    Two access patterns can silently break the "forward block scans
    only" discipline the tallies rely on: computed-offset ``seek``
    (random access), and a concurrent reader thread (a lookahead side
    channel whose reads nothing accounts for).  Seeks belong solely to
    ``repro/io/blocks.py``; the one sanctioned reader thread lives in
    ``repro/io/prefetch.py`` (allowlisted), whose reads are
    deferred-accounted by the consuming scan.
    """

    rule_id = "SCAN001"
    title = "seek/lookahead access outside repro/io/{blocks,prefetch}.py"
    rationale = (
        "the I/O model charges sequential block scans; arbitrary seeks "
        "and unaccounted reader threads are the random/side-channel "
        "accesses the paper's algorithms exist to avoid"
    )

    def applies_to(self, relpath: str) -> bool:
        """Everywhere except the one block device that legitimately seeks."""
        parts = _path_parts(relpath)
        return not (parts and parts[-1] == "blocks.py" and "io" in parts[:-1])

    def check(self, tree: ast.AST, relpath: str) -> List[Violation]:
        """Flag ``.seek()`` calls and reader-thread construction."""
        # The service daemon's worker threads are not lookahead readers:
        # they answer queries from resident state and reach disk only
        # through counted devices.  Their thread discipline (confinement
        # + bounded queues) is THR004's job, so this rule leaves the
        # service package to it.
        in_service = "service" in _dir_parts(relpath)
        out: List[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "seek":
                out.append(
                    self.violation(
                        node,
                        relpath,
                        "seek() breaks the forward-scan discipline; consume "
                        "edge files via block iteration (EdgeFile.scan)",
                    )
                )
            elif _terminal_name(func) == "Thread" and not in_service:
                out.append(
                    self.violation(
                        node,
                        relpath,
                        "spawning a thread opens an unaccounted lookahead "
                        "side channel; repro/io/prefetch.py hosts the one "
                        "sanctioned (consumer-accounted) reader thread",
                    )
                )
        return out


# ----------------------------------------------------------------------
# API001
# ----------------------------------------------------------------------

_PATH_PARAM_RE = re.compile(
    r"^(path|paths|filename|file_name|filepath|file_path|fname|pathname)$"
    r"|(^path_)|(_path$)|(_filename$)"
)
_GRAPH_TYPES = ("DiskGraph", "EdgeFile", "BlockDevice", "Digraph")


class CoreAPIRule(Rule):
    """API001: public ``repro/core/`` functions must not take raw paths."""

    rule_id = "API001"
    title = "public core API accepting a raw file path"
    rationale = (
        "core entry points consume DiskGraph/EdgeFile so every byte they "
        "touch is counted; a raw path invites uncounted side channels"
    )

    def applies_to(self, relpath: str) -> bool:
        """Only the ``core`` package exposes the counted public API."""
        return "core" in _dir_parts(relpath)

    def check(self, tree: ast.AST, relpath: str) -> List[Violation]:
        """Flag path-like parameters on public functions and methods."""
        out: List[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            arguments = node.args
            params = list(arguments.posonlyargs) + list(arguments.args)
            params += list(arguments.kwonlyargs)
            for param in params:
                if param.arg in ("self", "cls"):
                    continue
                annotation = (
                    ast.unparse(param.annotation) if param.annotation else ""
                )
                if any(graph_type in annotation for graph_type in _GRAPH_TYPES):
                    continue
                path_like = bool(_PATH_PARAM_RE.search(param.arg))
                path_like = path_like or "PathLike" in annotation
                path_like = path_like or re.search(r"\bPath\b", annotation)
                if path_like:
                    out.append(
                        self.violation(
                            node,
                            relpath,
                            f"public function '{node.name}' takes raw path "
                            f"parameter '{param.arg}'; accept a DiskGraph/"
                            "EdgeFile so I/O stays counted",
                        )
                    )
        return out


# ----------------------------------------------------------------------
# CPU001
# ----------------------------------------------------------------------


class PerEdgeBoxingRule(Rule):
    """CPU001: per-edge Python boxing inside core edge-scan loops.

    The scan loops are the CPU hot path — every counted block funnels
    through them.  ``int(...)`` and ``.tolist()`` inside a
    ``for ... in <file>.scan(...)`` body box ndarray lanes into Python
    objects one edge at a time, which is the cost the vectorized
    kernels (``repro/kernels/``) exist to remove.  Core loops hand the
    whole batch to a :class:`~repro.kernels.base.ScanKernels` backend
    instead; the one sanctioned per-edge loop set is
    ``repro/kernels/scalar.py``, which this rule does not scope.
    Per-*batch* reductions that box a handful of scalars per block are
    excused line-by-line with ``# repro: allow[CPU001]``.
    """

    rule_id = "CPU001"
    title = "per-edge int()/.tolist() boxing inside a core edge-scan loop"
    rationale = (
        "edge batches must reach the repro.kernels backends as arrays; "
        "boxing each edge into Python ints inside the scan loop "
        "re-creates the per-edge CPU cost the vector kernels remove"
    )

    def applies_to(self, relpath: str) -> bool:
        """Only the ``core`` scan loops carry the batched-kernel contract."""
        return "core" in _dir_parts(relpath)

    def check(self, tree: ast.AST, relpath: str) -> List[Violation]:
        """Flag int()/.tolist() calls lexically inside edge-scan loops."""
        remedy = (
            "; hand the batch to a repro.kernels backend (the sanctioned "
            "per-edge loops live in repro/kernels/scalar.py)"
        )
        out: List[Violation] = []
        seen: set = set()
        for node in ast.walk(tree):
            if not (isinstance(node, ast.For) and _is_scan_call(node.iter)):
                continue
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Call) or id(inner) in seen:
                    continue
                func = inner.func
                if isinstance(func, ast.Name) and func.id == "int":
                    seen.add(id(inner))
                    out.append(
                        self.violation(
                            inner,
                            relpath,
                            "per-edge int() boxing inside an edge-scan loop"
                            + remedy,
                        )
                    )
                elif isinstance(func, ast.Attribute) and func.attr == "tolist":
                    seen.add(id(inner))
                    out.append(
                        self.violation(
                            inner,
                            relpath,
                            "per-edge .tolist() boxing inside an edge-scan "
                            "loop" + remedy,
                        )
                    )
        return out


# ----------------------------------------------------------------------
# THR003
# ----------------------------------------------------------------------

_MP_MODULES = ("multiprocessing", "multiprocessing.shared_memory")


def _enclosing_scopes(tree: ast.AST) -> List[Tuple[ast.AST, List[ast.AST]]]:
    """Pair each class/function/module scope with its lexical contents."""
    scopes: List[Tuple[ast.AST, List[ast.AST]]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            scopes.append((node, list(ast.walk(node))))
    return scopes


class ProcessDisciplineRule(Rule):
    """THR003: process fan-out outside ``repro/parallel/``; leaky shm.

    Two defects, one discipline:

    * **Containment** — ``multiprocessing`` (including
      ``shared_memory``) may be imported only inside ``repro/parallel/``.
      Every forked worker must go through the pool's deterministic
      striping and crash containment; an ad-hoc ``Process`` elsewhere is
      an unaccounted execution side channel, exactly as a stray
      ``Thread`` is to SCAN001.
    * **Lifetime** — a ``SharedMemory(..., create=True)`` segment is a
      kernel object that outlives its creator unless unlinked.  The
      creating class (or function) must also contain an ``.unlink()``
      call on a ``finally`` path — the shape
      :class:`repro.parallel.shm.SnapshotArena` implements — or the
      segment leaks ``/dev/shm`` space on every crashed run.
    """

    rule_id = "THR003"
    title = "multiprocessing outside repro/parallel/, or unlink-less shm"
    rationale = (
        "worker processes must go through the repro.parallel pool "
        "(deterministic striping, crash containment) and every created "
        "shared-memory segment needs a finally-path unlink, or crashed "
        "runs leak /dev/shm segments"
    )

    def applies_to(self, relpath: str) -> bool:
        """Everywhere: containment is scoped inside :meth:`check`."""
        return True

    def check(self, tree: ast.AST, relpath: str) -> List[Violation]:
        """Flag out-of-scope multiprocessing and unlink-less segments."""
        out: List[Violation] = []
        if "parallel" not in _dir_parts(relpath):
            out.extend(self._containment(tree, relpath))
        out.extend(self._shm_lifetime(tree, relpath))
        return out

    def _containment(self, tree: ast.AST, relpath: str) -> List[Violation]:
        remedy = (
            "; fork workers through repro.parallel (WorkerPool stripes "
            "deterministically and contains crashes)"
        )
        out: List[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in _MP_MODULES or alias.name.startswith(
                        "multiprocessing."
                    ):
                        out.append(
                            self.violation(
                                node, relpath,
                                f"import of {alias.name} outside "
                                "repro/parallel/" + remedy,
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module in _MP_MODULES or module.startswith(
                    "multiprocessing."
                ):
                    out.append(
                        self.violation(
                            node, relpath,
                            f"import from {module} outside repro/parallel/"
                            + remedy,
                        )
                    )
        return out

    def _shm_lifetime(self, tree: ast.AST, relpath: str) -> List[Violation]:
        creations = [
            node
            for node in ast.walk(tree)
            if isinstance(node, ast.Call)
            and _terminal_name(node.func) == "SharedMemory"
            and any(
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            )
        ]
        if not creations:
            return []
        scopes = _enclosing_scopes(tree)
        out: List[Violation] = []
        for creation in creations:
            # The narrowest class scope containing the creation (falling
            # back to function, then module) must also unlink on a
            # finally path — SnapshotArena's create-in-__init__ /
            # unlink-in-destroy split stays one lexical unit.
            enclosing = [
                (scope, nodes)
                for scope, nodes in scopes
                if any(node is creation for node in nodes)
            ]
            classes = [s for s in enclosing if isinstance(s[0], ast.ClassDef)]
            unit = classes[-1] if classes else enclosing[0]
            if not self._unlinks_in_finally(unit[0]):
                out.append(
                    self.violation(
                        creation, relpath,
                        "SharedMemory segment created without a "
                        "finally-path unlink() in the owning scope; a "
                        "crashed run leaks the /dev/shm segment",
                    )
                )
        return out

    @staticmethod
    def _unlinks_in_finally(scope: ast.AST) -> bool:
        for node in ast.walk(scope):
            if not isinstance(node, ast.Try) or not node.finalbody:
                continue
            for final_stmt in node.finalbody:
                for inner in ast.walk(final_stmt):
                    if (
                        isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Attribute)
                        and inner.func.attr == "unlink"
                    ):
                        return True
        return False


# ----------------------------------------------------------------------
# THR004
# ----------------------------------------------------------------------

_SOCKET_MODULES = ("socket", "socketserver")
_THREAD_FACTORIES = frozenset({"Thread", "Timer"})
_BOUNDED_QUEUE_TYPES = frozenset(
    {"Queue", "LifoQueue", "PriorityQueue", "JoinableQueue"}
)
#: Directory names whose modules may host threads and sockets.
_CONCURRENCY_HOMES = ("service", "obs")


class ThreadSocketDisciplineRule(Rule):
    """THR004: thread/socket containment and mandatory queue bounds.

    Two defects, one discipline:

    * **Containment** — ``threading.Thread``/``Timer`` construction and
      ``socket``/``socketserver`` imports are confined to
      ``repro/service/`` (the query daemon) and ``repro/obs/`` (the
      sampler/heartbeat/exposition plane).  Those are the repo's only
      long-lived concurrent components; a thread or listening socket
      anywhere else is an execution side channel with no owner for its
      lifecycle, shutdown, or back-pressure.
    * **Bounds** — every queue, *everywhere*, is constructed with an
      explicit capacity: a positional bound or ``maxsize=`` for
      ``queue.Queue``-family and ``multiprocessing`` queues, and
      ``SimpleQueue`` (unboundable by design) is rejected outright.  An
      unbounded queue converts overload into unbounded memory growth;
      a bounded one converts it into back-pressure the admission /
      shedding layers can see and act on.
    """

    rule_id = "THR004"
    title = "thread/socket outside repro/{service,obs}/, or unbounded queue"
    rationale = (
        "long-lived concurrency belongs to the service daemon and the "
        "observability plane, where shutdown and back-pressure have "
        "owners; and every queue needs an explicit maxsize, because an "
        "unbounded queue turns overload into an OOM crash instead of "
        "load shedding"
    )

    def applies_to(self, relpath: str) -> bool:
        """Everywhere: containment is scoped inside :meth:`check`."""
        return True

    def check(self, tree: ast.AST, relpath: str) -> List[Violation]:
        """Flag stray threads/sockets and unbounded queue construction."""
        out: List[Violation] = []
        dirs = _dir_parts(relpath)
        if not any(home in dirs for home in _CONCURRENCY_HOMES):
            out.extend(self._containment(tree, relpath))
        out.extend(self._queue_bounds(tree, relpath))
        return out

    def _containment(self, tree: ast.AST, relpath: str) -> List[Violation]:
        remedy = (
            "; long-lived concurrency lives in repro/service/ (daemon) "
            "or repro/obs/ (sampler/exposition)"
        )
        out: List[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in _SOCKET_MODULES:
                        out.append(
                            self.violation(
                                node, relpath,
                                f"import of {alias.name} outside the "
                                "sanctioned concurrency homes" + remedy,
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if (node.module or "") in _SOCKET_MODULES:
                    out.append(
                        self.violation(
                            node, relpath,
                            f"import from {node.module} outside the "
                            "sanctioned concurrency homes" + remedy,
                        )
                    )
            elif (
                isinstance(node, ast.Call)
                and _terminal_name(node.func) in _THREAD_FACTORIES
            ):
                out.append(
                    self.violation(
                        node, relpath,
                        f"{_terminal_name(node.func)}() construction outside "
                        "the sanctioned concurrency homes" + remedy,
                    )
                )
        return out

    def _queue_bounds(self, tree: ast.AST, relpath: str) -> List[Violation]:
        out: List[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _terminal_name(node.func)
            if name == "SimpleQueue":
                out.append(
                    self.violation(
                        node, relpath,
                        "SimpleQueue cannot be bounded; use Queue(maxsize=N) "
                        "so overload becomes back-pressure, not memory growth",
                    )
                )
            elif name in _BOUNDED_QUEUE_TYPES:
                bounded = bool(node.args) or any(
                    kw.arg == "maxsize" for kw in node.keywords
                )
                if not bounded:
                    out.append(
                        self.violation(
                            node, relpath,
                            f"{name}() constructed without an explicit "
                            "maxsize; an unbounded queue hides overload "
                            "until the process OOMs",
                        )
                    )
        return out


# The whole-program passes subclass ProgramRule above, so these imports
# must come after its definition; both import orders resolve because
# everything they need from this module is already bound by this line.
from repro.analysis_static.atomicity import StagingProtocolRule  # noqa: E402
from repro.analysis_static.iocost import (  # noqa: E402
    NestedScanRule,
    UnboundedScanLoopRule,
)
from repro.analysis_static.locks import (  # noqa: E402
    UnguardedReadRule,
    UnguardedWriteRule,
)

#: Every registered rule, in reporting order.
ALL_RULES: List[Type[Rule]] = [
    RawIORule,
    BareRenameRule,
    EdgeMaterializationRule,
    SequentialScanRule,
    CoreAPIRule,
    PerEdgeBoxingRule,
    ProcessDisciplineRule,
    ThreadSocketDisciplineRule,
    NestedScanRule,
    UnboundedScanLoopRule,
    UnguardedWriteRule,
    UnguardedReadRule,
    StagingProtocolRule,
]
