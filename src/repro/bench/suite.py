"""One-call reproduction of the paper's whole evaluation.

:func:`run_paper_suite` regenerates every experiment (Tables 1 and 3,
Figures 12–17) at a chosen scale, returning all records and optionally
writing per-experiment CSVs plus a text report.  The pytest benchmarks
under ``benchmarks/`` drive the same code paths one experiment at a
time; this module is for users who want the full sweep from a script or
the ``repro-scc bench`` command.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.bench.harness import BenchRecord, run_one
from repro.bench.reporting import format_series, format_table, write_csv
from repro.core.one_phase_batch import OnePhaseBatchSCC
from repro.graph.builders import induced_subgraph
from repro.io.memory import MemoryModel
from repro.workloads.params import params_for_class
from repro.workloads.realworld import (
    cit_patents_like,
    citeseerx_like,
    go_uniprot_like,
    webspam_like,
)

#: Paper x-axis values reused by several experiments.
PAPER_NODE_SWEEP = [30, 40, 50, 60, 70]  # millions
DEGREE_SWEEP = [3, 4, 5, 6, 7]
FRACTION_SWEEP = [0.2, 0.4, 0.6, 0.8, 1.0]


@dataclass
class SuiteConfig:
    """Knobs for a full-suite run."""

    scale: float = 2.5e-4
    time_limit: float = 30.0
    webspam_degree: float = 12.0
    seed: int = 0
    #: Algorithms for the fast sweeps.
    fast_algorithms: List[str] = field(
        default_factory=lambda: ["1PB-SCC", "1P-SCC"]
    )
    #: Baselines measured only at the cheapest point of each sweep.
    slow_algorithms: List[str] = field(
        default_factory=lambda: ["2P-SCC", "DFS-SCC"]
    )


@dataclass
class SuiteResult:
    """All records of a suite run, grouped by experiment id."""

    records: Dict[str, List[BenchRecord]] = field(default_factory=dict)

    def add(self, experiment: str, record: BenchRecord) -> None:
        """File a record under its experiment."""
        self.records.setdefault(experiment, []).append(record)

    def report(self) -> str:
        """Human-readable summary of every experiment."""
        sections = []
        for experiment in sorted(self.records):
            records = self.records[experiment]
            x_param = records[0].params.get("x_param") if records else None
            if x_param:
                body = format_series(records, x_param=str(x_param),
                                     metric="seconds")
                body += "\n\n" + format_series(records, x_param=str(x_param),
                                               metric="ios")
            else:
                body = format_table(records, metric="seconds")
                body += "\n\n" + format_table(records, metric="ios")
            sections.append(f"== {experiment} ==\n{body}")
        return "\n\n".join(sections)

    def write(self, outdir: str) -> None:
        """Write one CSV per experiment plus the text report."""
        os.makedirs(outdir, exist_ok=True)
        for experiment, records in self.records.items():
            write_csv(records, os.path.join(outdir, f"{experiment}.csv"))
        # Report text, written after the measured runs end.
        with open(os.path.join(outdir, "report.txt"), "w") as handle:  # repro: allow[IO001]
            handle.write(self.report() + "\n")


def _run(
    suite: SuiteResult,
    experiment: str,
    graph,
    algorithm,
    workload: str,
    config: SuiteConfig,
    x_param: Optional[str] = None,
    x_value=None,
    time_limit: Optional[float] = None,
) -> BenchRecord:
    params: Dict[str, object] = {}
    if x_param is not None:
        params = {"x_param": x_param, x_param: x_value}
    record = run_one(
        graph,
        algorithm,
        workload=workload,
        time_limit=time_limit or config.time_limit,
        params=params,
    )
    suite.add(experiment, record)
    return record


def run_table3(suite: SuiteResult, config: SuiteConfig) -> None:
    """Table 3: the three citation datasets, all four algorithms."""
    datasets = {
        "cit-patents": cit_patents_like(config.scale, config.seed),
        "go-uniprot": go_uniprot_like(config.scale, config.seed),
        "citeseerx": citeseerx_like(config.scale, config.seed),
    }
    for name, graph in datasets.items():
        for algorithm in config.fast_algorithms + config.slow_algorithms:
            limit = (
                config.time_limit * 4
                if algorithm == "DFS-SCC"
                else config.time_limit
            )
            _run(suite, "table3", graph, algorithm, name, config,
                 time_limit=limit)


def run_table1(suite: SuiteResult, config: SuiteConfig) -> None:
    """Table 1: 1PB-SCC reduction, optimizations on and off."""
    planted = webspam_like(0.4 * config.scale, config.seed,
                           config.webspam_degree)
    for acceptance, rejection in [(True, True), (False, False)]:
        algorithm = OnePhaseBatchSCC(
            enable_acceptance=acceptance, enable_rejection=rejection
        )
        record = _run(
            suite, "table1", planted.graph, algorithm,
            f"webspam[acc={acceptance},rej={rejection}]", config,
            time_limit=10 * config.time_limit,
        )
        record.params["acceptance"] = acceptance
        record.params["rejection"] = rejection


def run_fig12(suite: SuiteResult, config: SuiteConfig) -> None:
    """Fig. 12: webspam induced-subgraph size sweep."""
    planted = webspam_like(0.4 * config.scale, config.seed,
                           config.webspam_degree)
    graph = planted.graph
    rng = np.random.default_rng(config.seed)
    for fraction in FRACTION_SWEEP:
        if fraction >= 1.0:
            sub = graph
        else:
            nodes = rng.choice(
                graph.num_nodes,
                size=int(round(graph.num_nodes * fraction)),
                replace=False,
            )
            sub, _ = induced_subgraph(graph, nodes)
        algorithms = list(config.fast_algorithms)
        if fraction == FRACTION_SWEEP[0]:
            algorithms += config.slow_algorithms
        for algorithm in algorithms:
            _run(suite, "fig12", sub, algorithm,
                 f"webspam-{int(fraction * 100)}pct", config,
                 x_param="fraction", x_value=fraction)


def run_fig13(suite: SuiteResult, config: SuiteConfig) -> None:
    """Fig. 13: memory sweep; 1PB at every point, baselines at base."""
    planted = webspam_like(0.4 * config.scale, config.seed,
                           config.webspam_degree)
    graph = planted.graph
    base = MemoryModel.default_capacity(graph.num_nodes)
    for factor in (1.0, 1.5, 2.0, 2.5, 3.0):
        memory = MemoryModel(num_nodes=graph.num_nodes,
                             capacity=int(base * factor))
        record = run_one(
            graph, "1PB-SCC", workload=f"M{factor:g}x",
            memory=memory, time_limit=10 * config.time_limit,
            params={"x_param": "memory_factor", "memory_factor": factor},
        )
        suite.add("fig13", record)
    for algorithm in ["1P-SCC"] + config.slow_algorithms:
        record = run_one(
            graph, algorithm, workload="M1x",
            memory=MemoryModel(num_nodes=graph.num_nodes, capacity=base),
            time_limit=config.time_limit,
            params={"x_param": "memory_factor", "memory_factor": 1.0},
        )
        suite.add("fig13", record)


def run_fig14(suite: SuiteResult, config: SuiteConfig) -> None:
    """Fig. 14: node-count sweep per SCC class."""
    for scc_class in ("massive", "large", "small"):
        for millions in PAPER_NODE_SWEEP:
            planted = params_for_class(
                scc_class,
                paper_nodes=millions * 1_000_000,
                scale=config.scale,
                seed=config.seed,
            ).build()
            algorithms = list(config.fast_algorithms)
            if millions == PAPER_NODE_SWEEP[0]:
                algorithms += config.slow_algorithms
            for algorithm in algorithms:
                _run(suite, f"fig14-{scc_class}", planted.graph, algorithm,
                     f"{scc_class}-{millions}M", config,
                     x_param="paper_nodes_millions", x_value=millions)


def run_fig15(suite: SuiteResult, config: SuiteConfig) -> None:
    """Fig. 15: degree sweep per SCC class."""
    for scc_class in ("massive", "large", "small"):
        for degree in DEGREE_SWEEP:
            planted = params_for_class(
                scc_class, degree=degree, scale=config.scale, seed=config.seed
            ).build()
            algorithms = list(config.fast_algorithms)
            if degree == DEGREE_SWEEP[0]:
                algorithms += config.slow_algorithms
            for algorithm in algorithms:
                _run(suite, f"fig15-{scc_class}", planted.graph, algorithm,
                     f"{scc_class}-d{degree}", config,
                     x_param="degree", x_value=degree)


def run_fig16(suite: SuiteResult, config: SuiteConfig) -> None:
    """Fig. 16: SCC-size sweep per class (single-phase algorithms)."""
    sweeps = {
        "massive": [200_000, 300_000, 400_000, 500_000, 600_000],
        "large": [4_000, 6_000, 8_000, 10_000, 12_000],
        "small": [20, 30, 40, 50, 60],
    }
    for scc_class, sizes in sweeps.items():
        for size in sizes:
            kwargs = {"scale": config.scale, "seed": config.seed}
            if scc_class == "small":
                kwargs["scc_size"] = size
            else:
                kwargs["paper_scc_size"] = size
            planted = params_for_class(scc_class, **kwargs).build()
            for algorithm in config.fast_algorithms:
                _run(suite, f"fig16-{scc_class}", planted.graph, algorithm,
                     f"{scc_class}-s{size}", config,
                     x_param="scc_size", x_value=size)


def run_fig17(suite: SuiteResult, config: SuiteConfig) -> None:
    """Fig. 17: SCC-count sweep (Large and Small classes)."""
    sweeps = {"large": [30, 40, 50, 60, 70],
              "small": [6_000, 8_000, 10_000, 12_000, 14_000]}
    for scc_class, counts in sweeps.items():
        for count in counts:
            kwargs = {"scale": config.scale, "seed": config.seed}
            if scc_class == "small":
                kwargs["paper_num_sccs"] = count
            else:
                kwargs["num_sccs"] = count
            planted = params_for_class(scc_class, **kwargs).build()
            for algorithm in config.fast_algorithms:
                _run(suite, f"fig17-{scc_class}", planted.graph, algorithm,
                     f"{scc_class}-x{count}", config,
                     x_param="num_sccs", x_value=count)


EXPERIMENTS = {
    "table1": run_table1,
    "table3": run_table3,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "fig14": run_fig14,
    "fig15": run_fig15,
    "fig16": run_fig16,
    "fig17": run_fig17,
}


def run_paper_suite(
    config: Optional[SuiteConfig] = None,
    experiments: Optional[List[str]] = None,
    outdir: Optional[str] = None,
) -> SuiteResult:
    """Run the requested experiments (default: all) and collect records."""
    config = config or SuiteConfig()
    names = experiments or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiments {unknown}; "
                         f"choose from {sorted(EXPERIMENTS)}")
    suite = SuiteResult()
    for name in names:
        EXPERIMENTS[name](suite, config)
    if outdir:
        suite.write(outdir)
    return suite
