"""Run algorithms over workloads and collect comparable records.

A :class:`BenchRecord` captures exactly what the paper's evaluation
reports per (algorithm, dataset) cell: wall-clock time, number of block
I/Os, iteration count — or the failure mode (``INF`` for a timeout,
``DNF`` for non-termination), which the paper's figures are full of.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from repro.constants import DEFAULT_BLOCK_SIZE
from repro.core import ALGORITHMS, SCCAlgorithm, SCCResult
from repro.exceptions import AlgorithmTimeout, NonTermination
from repro.graph.digraph import Digraph
from repro.graph.diskgraph import DiskGraph
from repro.io.memory import MemoryModel
from repro.obs import Tracer, TraceWriter
from repro.obs.metrics import MetricsRegistry


@dataclass
class BenchRecord:
    """One (algorithm, workload) measurement."""

    algorithm: str
    workload: str
    status: str  # "ok", "INF" (timeout) or "DNF" (non-termination)
    seconds: Optional[float] = None
    ios: Optional[int] = None
    iterations: Optional[int] = None
    num_sccs: Optional[int] = None
    params: Dict[str, object] = field(default_factory=dict)
    result: Optional[SCCResult] = None
    #: Where this run's JSONL trace was written, when tracing was on.
    trace_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the run completed."""
        return self.status == "ok"

    def display_seconds(self) -> str:
        """Time cell as the paper prints it (``INF`` on timeout)."""
        if not self.ok:
            return self.status
        return f"{self.seconds:.2f}s"

    def display_ios(self) -> str:
        """I/O cell as the paper prints it."""
        if not self.ok:
            return self.status
        return f"{self.ios:,}"


def _resolve(algorithm: Union[str, SCCAlgorithm]) -> SCCAlgorithm:
    if isinstance(algorithm, str):
        return ALGORITHMS[algorithm]()
    return algorithm


def run_one(
    graph: Digraph,
    algorithm: Union[str, SCCAlgorithm],
    workload: str = "graph",
    memory: Optional[MemoryModel] = None,
    time_limit: Optional[float] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    workdir: Optional[str] = None,
    keep_result: bool = False,
    params: Optional[Dict[str, object]] = None,
    trace_path: Optional[str] = None,
    prefetch_depth: int = 0,
    cache_blocks: int = 0,
    kernels: str = "vector",
    fault_plan: Optional[str] = None,
    metrics: Optional[MetricsRegistry] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    workers: int = 0,
) -> BenchRecord:
    """Run one algorithm on one in-memory workload graph.

    The graph is materialised to disk inside ``workdir`` (a temporary
    directory when omitted) so the run's I/O pattern is real.  When
    ``trace_path`` is given the run is traced to that JSONL file (kept
    even on INF/DNF runs — partial traces are how timeouts are
    diagnosed) and recorded on the returned record.
    ``prefetch_depth``/``cache_blocks`` install the corresponding I/O
    policy on the run (see :meth:`SCCAlgorithm.run`) and are echoed into
    the record's ``params`` when nonzero, so result JSON rows are
    self-describing.  ``kernels`` picks the scan-kernel backend
    (``"vector"``/``"scalar"``) and is echoed the same way when it is
    not the default.  ``fault_plan`` injects deterministic I/O faults
    from a spec string (see :class:`repro.io.faults.FaultPlan`); the
    retried blocks are never charged as block I/O, so a faulted record's
    ``ios`` is comparable to a clean run's.  ``metrics`` attaches a live
    :class:`~repro.obs.metrics.MetricsRegistry` to the run (the
    regression gate uses this to prove the sampler is
    accounting-transparent).  ``checkpoint_dir``/``resume`` forward to
    :meth:`SCCAlgorithm.run`: with both set, a run that died
    mid-algorithm continues from its last scan-boundary checkpoint —
    this requires a *persistent* ``workdir``, since checkpoints
    reference the materialised edge file and reduction scratch living
    there (the reproduce runner keeps one workdir per sweep cell for
    exactly this reason).  ``workers`` forks that many scan worker
    processes (byte-identical results; echoed into ``params`` when
    nonzero so parallel records are self-describing).
    """
    algo = _resolve(algorithm)
    run_params = dict(params or {})
    if prefetch_depth:
        run_params.setdefault("prefetch_depth", prefetch_depth)
    if cache_blocks:
        run_params.setdefault("cache_blocks", cache_blocks)
    if kernels != "vector":
        run_params.setdefault("kernels", kernels)
    if fault_plan:
        run_params.setdefault("fault_plan", fault_plan)
    if workers:
        run_params.setdefault("workers", workers)
    record = BenchRecord(
        algorithm=algo.name, workload=workload, status="ok", params=run_params
    )
    cleanup: Optional[tempfile.TemporaryDirectory] = None
    if workdir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-bench-")
        workdir = cleanup.name
    try:
        disk = DiskGraph.from_digraph(
            graph,
            os.path.join(workdir, f"{workload}-{algo.name}.bin".replace("/", "_")),
            block_size=block_size,
        )
        tracer = None
        writer = None
        if trace_path is not None:
            writer = TraceWriter(
                trace_path,
                metadata={"algorithm": algo.name, "workload": workload},
            )
            tracer = Tracer(sink=writer)
            record.trace_path = trace_path
        try:
            result = algo.run(
                disk,
                memory=memory,
                time_limit=time_limit,
                tracer=tracer,
                prefetch_depth=prefetch_depth,
                cache_blocks=cache_blocks,
                kernels=kernels,
                fault_plan=fault_plan,
                metrics=metrics,
                checkpoint_dir=checkpoint_dir,
                resume=resume,
                workers=workers,
            )
            record.seconds = result.stats.wall_seconds
            record.ios = result.stats.io.total
            record.iterations = result.stats.iterations
            record.num_sccs = result.num_sccs
            if keep_result:
                record.result = result
        except AlgorithmTimeout:
            record.status = "INF"
        except NonTermination:
            record.status = "DNF"
        finally:
            if writer is not None:
                writer.close()
            disk.unlink()
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    return record


def run_matrix(
    graphs: Dict[str, Digraph],
    algorithms: Iterable[Union[str, SCCAlgorithm]],
    memory: Optional[MemoryModel] = None,
    time_limit: Optional[float] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    params: Optional[Dict[str, object]] = None,
) -> List[BenchRecord]:
    """Run every algorithm on every workload; return all records."""
    records: List[BenchRecord] = []
    for workload, graph in graphs.items():
        for algorithm in algorithms:
            records.append(
                run_one(
                    graph,
                    algorithm,
                    workload=workload,
                    memory=memory,
                    time_limit=time_limit,
                    block_size=block_size,
                    params=params,
                )
            )
    return records
