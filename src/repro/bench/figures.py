"""Plot-free figure rendering: ASCII bar charts for benchmark series.

The paper's figures are log-scale line plots; in a terminal-only
reproduction the same information is conveyed as horizontal bar charts,
one row per (x value, algorithm) with bars scaled logarithmically and
failure cells (``INF``/``DNF``) marked as the paper marks them.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

from repro.bench.harness import BenchRecord


def _bar(value: float, lo: float, hi: float, width: int) -> str:
    if hi <= lo:
        return "#" * width
    span = math.log10(hi) - math.log10(lo) if lo > 0 else 1.0
    frac = (math.log10(max(value, 1e-12)) - math.log10(lo)) / span if span else 1.0
    filled = max(1, int(round(frac * width)))
    return "#" * min(filled, width)


def ascii_series_chart(
    records: Iterable[BenchRecord],
    x_param: str,
    metric: str = "seconds",
    width: int = 40,
    title: str = "",
) -> str:
    """Render records as a log-scale ASCII bar chart grouped by x value.

    ``metric`` is ``"seconds"`` or ``"ios"``; failed runs render as the
    status string instead of a bar, as the paper plots its INF marks.
    """
    records = list(records)
    values: Dict[tuple, Optional[float]] = {}
    xs: List[object] = []
    algorithms: List[str] = []
    for record in records:
        x = record.params.get(x_param)
        if x not in xs:
            xs.append(x)
        if record.algorithm not in algorithms:
            algorithms.append(record.algorithm)
        if record.ok:
            value = record.seconds if metric == "seconds" else record.ios
            values[(x, record.algorithm)] = float(value)
        else:
            values[(x, record.algorithm)] = None

    finite = [v for v in values.values() if v is not None and v > 0]
    lo = min(finite) if finite else 1.0
    hi = max(finite) if finite else 1.0
    unit = "s" if metric == "seconds" else " I/Os"

    label_width = max(len(str(a)) for a in algorithms) if algorithms else 4
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for x in xs:
        lines.append(f"{x_param} = {x}")
        for algorithm in algorithms:
            if (x, algorithm) not in values:
                continue
            value = values[(x, algorithm)]
            if value is None:
                status = next(
                    r.status
                    for r in records
                    if r.params.get(x_param) == x and r.algorithm == algorithm
                )
                lines.append(f"  {algorithm:<{label_width}}  {status}")
            else:
                bar = _bar(value, lo, hi, width)
                shown = f"{value:.3f}{unit}" if metric == "seconds" else (
                    f"{int(value):,}{unit}"
                )
                lines.append(f"  {algorithm:<{label_width}}  {bar} {shown}")
        lines.append("")
    return "\n".join(lines).rstrip()
