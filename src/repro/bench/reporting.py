"""Render benchmark records as the paper's tables and figure series."""

from __future__ import annotations

import csv
from typing import Dict, Iterable, List

from repro.bench.harness import BenchRecord


def records_to_rows(records: Iterable[BenchRecord]) -> List[Dict[str, object]]:
    """Flatten records into dict rows (for CSV export or inspection)."""
    rows = []
    for record in records:
        row: Dict[str, object] = {
            "algorithm": record.algorithm,
            "workload": record.workload,
            "status": record.status,
            "seconds": record.seconds,
            "ios": record.ios,
            "iterations": record.iterations,
            "num_sccs": record.num_sccs,
        }
        if record.trace_path is not None:
            row["trace_path"] = record.trace_path
        row.update(record.params)
        rows.append(row)
    return rows


def write_csv(records: Iterable[BenchRecord], path: str) -> None:
    """Dump records to a CSV file (one row per record)."""
    rows = records_to_rows(records)
    if not rows:
        return
    fieldnames: List[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    # Benchmark-results output, written after the measured runs end.
    with open(path, "w", newline="", encoding="ascii") as handle:  # repro: allow[IO001]
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)


def _grid(records: Iterable[BenchRecord], metric: str) -> tuple[list, list, dict]:
    algorithms: List[str] = []
    workloads: List[str] = []
    cells: Dict[tuple, str] = {}
    for record in records:
        if record.algorithm not in algorithms:
            algorithms.append(record.algorithm)
        if record.workload not in workloads:
            workloads.append(record.workload)
        if metric == "seconds":
            cells[(record.workload, record.algorithm)] = record.display_seconds()
        else:
            cells[(record.workload, record.algorithm)] = record.display_ios()
    return algorithms, workloads, cells


def format_table(
    records: Iterable[BenchRecord],
    metric: str = "seconds",
    title: str = "",
) -> str:
    """A Table 3-style grid: workloads as rows, algorithms as columns."""
    records = list(records)
    algorithms, workloads, cells = _grid(records, metric)
    headers = ["workload"] + algorithms
    rows = [
        [workload] + [cells.get((workload, algo), "-") for algo in algorithms]
        for workload in workloads
    ]
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    records: Iterable[BenchRecord],
    x_param: str,
    metric: str = "seconds",
    title: str = "",
) -> str:
    """A figure-style series: one row per x value, algorithms as columns.

    ``x_param`` names the entry in each record's ``params`` dict that
    varies along the figure's x axis (e.g. ``num_nodes``, ``degree``).
    """
    records = list(records)
    algorithms: List[str] = []
    xs: List[object] = []
    cells: Dict[tuple, str] = {}
    for record in records:
        x = record.params.get(x_param)
        if record.algorithm not in algorithms:
            algorithms.append(record.algorithm)
        if x not in xs:
            xs.append(x)
        value = (
            record.display_seconds() if metric == "seconds" else record.display_ios()
        )
        cells[(x, record.algorithm)] = value
    headers = [x_param] + algorithms
    rows = [
        [x] + [cells.get((x, algo), "-") for algo in algorithms] for x in xs
    ]
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
