"""Benchmark harness: run algorithm × workload matrices, render tables.

The harness is what the ``benchmarks/`` suite drives; it can also be
used directly to reproduce any paper table or figure from a script.
"""

from repro.bench.figures import ascii_series_chart
from repro.bench.harness import BenchRecord, run_matrix, run_one
from repro.bench.reporting import (
    format_series,
    format_table,
    records_to_rows,
    write_csv,
)
from repro.bench.suite import SuiteConfig, SuiteResult, run_paper_suite

__all__ = [
    "BenchRecord",
    "run_one",
    "run_matrix",
    "format_table",
    "format_series",
    "records_to_rows",
    "write_csv",
    "ascii_series_chart",
    "SuiteConfig",
    "SuiteResult",
    "run_paper_suite",
]
