"""Graph representations: in-memory digraphs and disk-resident graphs.

* :class:`~repro.graph.digraph.Digraph` — an immutable in-memory
  directed graph with numpy CSR adjacency.  Used by the workload
  generators, by the in-memory SCC baselines, and inside 1PB-SCC's
  per-batch computation.
* :class:`~repro.graph.diskgraph.DiskGraph` — the semi-external view:
  ``|V|`` known up front, edges living in an
  :class:`~repro.io.edgefile.EdgeFile` that is only ever scanned.
"""

from repro.graph.builders import (
    add_random_edges,
    induced_subgraph,
    relabel_nodes,
)
from repro.graph.digraph import Digraph
from repro.graph.diskgraph import DiskGraph
from repro.graph.io_text import read_edge_list, write_edge_list

__all__ = [
    "Digraph",
    "DiskGraph",
    "add_random_edges",
    "induced_subgraph",
    "relabel_nodes",
    "read_edge_list",
    "write_edge_list",
]
