"""Persistent graph storage: binary edge file + JSON sidecar metadata.

The on-disk layout keeps the edge payload bit-identical to what
:class:`~repro.io.edgefile.EdgeFile` scans (so a stored graph can be
opened semi-externally with zero conversion), and puts everything else
— node count, provenance, free-form attributes — in a small
``<path>.meta`` JSON sidecar.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from repro.constants import DEFAULT_BLOCK_SIZE
from repro.exceptions import GraphFormatError
from repro.graph.digraph import Digraph
from repro.graph.diskgraph import DiskGraph
from repro.io.counter import IOCounter
from repro.io.edgefile import EdgeFile

_FORMAT = "repro-graph-v1"


def _meta_path(path: str) -> str:
    return path + ".meta"


def write_metadata(
    path: str,
    num_nodes: int,
    num_edges: int,
    attributes: Optional[Dict[str, Any]] = None,
) -> None:
    """Write the ``path.meta`` sidecar for an existing edge file.

    Use this to adopt an edge file produced out-of-core (e.g. by
    :func:`repro.apps.condense_external.condense_to_disk`) into the
    storage layout without loading it into memory.
    """
    meta = {
        "format": _FORMAT,
        "num_nodes": num_nodes,
        "num_edges": num_edges,
        "attributes": attributes or {},
    }
    # Metadata sidecar, O(1) bytes — not graph payload, never counted.
    with open(_meta_path(path), "w", encoding="ascii") as handle:  # repro: allow[IO001]
        json.dump(meta, handle, indent=2)


def save_graph(
    graph: Digraph,
    path: str,
    attributes: Optional[Dict[str, Any]] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> None:
    """Store ``graph`` at ``path`` (edges) and ``path.meta`` (metadata)."""
    edge_file = EdgeFile.from_array(path, graph.edges, block_size=block_size)
    edge_file.close()
    write_metadata(path, graph.num_nodes, graph.num_edges, attributes)


def read_metadata(path: str) -> Dict[str, Any]:
    """Read and validate the sidecar metadata for a stored graph."""
    meta_path = _meta_path(path)
    if not os.path.exists(meta_path):
        raise GraphFormatError(f"missing metadata sidecar {meta_path}")
    # Metadata sidecar, O(1) bytes — not graph payload, never counted.
    with open(meta_path, "r", encoding="ascii") as handle:  # repro: allow[IO001]
        meta = json.load(handle)
    if meta.get("format") != _FORMAT:
        raise GraphFormatError(
            f"{meta_path}: unknown format {meta.get('format')!r}"
        )
    if "num_nodes" not in meta:
        raise GraphFormatError(f"{meta_path}: num_nodes missing")
    return meta


def open_disk_graph(
    path: str,
    counter: Optional[IOCounter] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> DiskGraph:
    """Open a stored graph semi-externally (edges stay on disk)."""
    meta = read_metadata(path)
    edge_file = EdgeFile(path, counter=counter, block_size=block_size)
    graph = DiskGraph(int(meta["num_nodes"]), edge_file)
    if graph.num_edges != meta["num_edges"]:
        raise GraphFormatError(
            f"{path}: metadata says {meta['num_edges']} edges, "
            f"file holds {graph.num_edges}"
        )
    return graph


def load_graph(path: str) -> Digraph:
    """Load a stored graph fully into memory."""
    disk = open_disk_graph(path)
    try:
        return disk.to_digraph()
    finally:
        disk.close()
