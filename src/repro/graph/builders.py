"""Graph construction and transformation helpers.

These implement the manipulations the paper's experiments rely on:
extracting induced subgraphs (Fig. 12's 20 %–100 % node sweeps), adding
random edges ("for every graph, we add 10 % more edges"), and relabeling
nodes after contraction.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.digraph import Digraph


def induced_subgraph(
    graph: Digraph, nodes: np.ndarray
) -> Tuple[Digraph, np.ndarray]:
    """The subgraph induced by ``nodes``, relabelled to ``0..k-1``.

    Returns the subgraph and the array of original node ids, i.e.
    ``original[i]`` is the id in ``graph`` of the subgraph's node ``i``.
    """
    nodes = np.unique(np.asarray(nodes, dtype=np.int64))
    if nodes.size and (nodes[0] < 0 or nodes[-1] >= graph.num_nodes):
        raise ValueError("node ids out of range")
    keep = np.zeros(graph.num_nodes, dtype=bool)
    keep[nodes] = True
    new_id = np.full(graph.num_nodes, -1, dtype=np.int64)
    new_id[nodes] = np.arange(nodes.size, dtype=np.int64)

    edges = graph.edges.astype(np.int64)
    mask = keep[edges[:, 0]] & keep[edges[:, 1]]
    sub_edges = new_id[edges[mask]]
    return Digraph(int(nodes.size), sub_edges), nodes


def relabel_nodes(graph: Digraph, mapping: np.ndarray, num_new_nodes: int) -> Digraph:
    """Apply ``mapping`` (old id -> new id) to every edge endpoint.

    Edges whose endpoints map to the same node become self-loops and are
    dropped, matching the paper's early-acceptance contraction which
    "excludes all induced edges".
    """
    mapping = np.asarray(mapping, dtype=np.int64)
    if mapping.shape[0] != graph.num_nodes:
        raise ValueError("mapping must cover every node")
    edges = mapping[graph.edges.astype(np.int64)]
    keep = edges[:, 0] != edges[:, 1]
    return Digraph(num_new_nodes, edges[keep])


def add_random_edges(
    graph: Digraph,
    fraction: float,
    rng: Optional[np.random.Generator] = None,
) -> Digraph:
    """Add ``fraction * |E|`` uniformly random edges (paper Section 8).

    The paper densifies its real datasets this way to create more and
    larger SCCs before measuring.
    """
    if fraction < 0:
        raise ValueError("fraction must be non-negative")
    rng = rng if rng is not None else np.random.default_rng()
    extra = int(round(graph.num_edges * fraction))
    if extra == 0 or graph.num_nodes == 0:
        return Digraph(graph.num_nodes, graph.edges)
    new_edges = rng.integers(0, graph.num_nodes, size=(extra, 2), dtype=np.int64)
    new_edges = new_edges[new_edges[:, 0] != new_edges[:, 1]]
    return Digraph(
        graph.num_nodes, np.concatenate([graph.edges.astype(np.int64), new_edges])
    )


def random_node_sample(
    graph: Digraph,
    fraction: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """A uniform sample of ``fraction * |V|`` node ids (for Fig. 12 sweeps)."""
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    rng = rng if rng is not None else np.random.default_rng()
    count = max(1, int(round(graph.num_nodes * fraction)))
    return rng.choice(graph.num_nodes, size=count, replace=False)
