"""Plain-text edge-list serialisation.

A tiny interchange format — one ``u v`` pair per line, ``#`` comments —
compatible with the SNAP dumps the paper's real datasets ship as.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import GraphFormatError
from repro.graph.digraph import Digraph


def write_edge_list(graph: Digraph, path: str, header: bool = True) -> None:
    """Write ``graph`` as a SNAP-style text edge list."""
    with open(path, "w", encoding="ascii") as handle:
        if header:
            handle.write(f"# nodes: {graph.num_nodes} edges: {graph.num_edges}\n")
        for u, v in graph.edges:
            handle.write(f"{int(u)} {int(v)}\n")


def read_edge_list(path: str, num_nodes: Optional[int] = None) -> Digraph:
    """Read a SNAP-style text edge list into a :class:`Digraph`.

    When the file carries a ``# nodes: N`` header or ``num_nodes`` is
    given, that node count is used; otherwise it is inferred as
    ``max(id) + 1``.
    """
    sources = []
    targets = []
    header_nodes: Optional[int] = None
    with open(path, "r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if "nodes:" in line:
                    try:
                        header_nodes = int(line.split("nodes:")[1].split()[0])
                    except (IndexError, ValueError):
                        pass
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(f"{path}:{line_number}: expected 'u v'")
            try:
                sources.append(int(parts[0]))
                targets.append(int(parts[1]))
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{line_number}: non-integer endpoint"
                ) from exc

    if num_nodes is None:
        num_nodes = header_nodes
    if num_nodes is None:
        num_nodes = (max(max(sources), max(targets)) + 1) if sources else 0
    edges = (
        np.column_stack((sources, targets)).astype(np.int64)
        if sources
        else np.empty((0, 2), dtype=np.int64)
    )
    return Digraph(num_nodes, edges)
