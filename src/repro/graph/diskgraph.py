"""The semi-external graph view: node count in memory, edges on disk.

A :class:`DiskGraph` is what the paper's algorithms actually consume —
``|V|`` is known (and small enough that a few node arrays fit in
memory), while ``E(G)`` lives in an :class:`~repro.io.edgefile.EdgeFile`
and is accessed only through sequential scans.
"""

from __future__ import annotations

import os
from typing import Iterator, Optional

import numpy as np

from repro.constants import DEFAULT_BLOCK_SIZE
from repro.graph.digraph import Digraph
from repro.io.counter import IOCounter
from repro.io.edgefile import EdgeFile
from repro.io.extsort import reverse_edges


class DiskGraph:
    """A directed graph whose edge set resides on disk.

    Parameters
    ----------
    num_nodes:
        ``|V(G)|``.
    edge_file:
        The on-disk edge list.
    """

    def __init__(self, num_nodes: int, edge_file: EdgeFile) -> None:
        if num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        self.num_nodes = num_nodes
        self.edge_file = edge_file

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_digraph(
        cls,
        graph: Digraph,
        path: str,
        counter: Optional[IOCounter] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> "DiskGraph":
        """Materialise an in-memory graph onto disk."""
        edge_file = EdgeFile.from_array(
            path, graph.edges, counter=counter, block_size=block_size
        )
        return cls(graph.num_nodes, edge_file)

    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: np.ndarray,
        path: str,
        counter: Optional[IOCounter] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> "DiskGraph":
        """Materialise a raw edge array onto disk."""
        edge_file = EdgeFile.from_array(
            path, edges, counter=counter, block_size=block_size
        )
        return cls(num_nodes, edge_file)

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """``|E(G)|``."""
        return self.edge_file.num_edges

    @property
    def counter(self) -> IOCounter:
        """The shared I/O counter."""
        return self.edge_file.counter

    @property
    def block_size(self) -> int:
        """Disk block size ``B``."""
        return self.edge_file.block_size

    def __repr__(self) -> str:
        return (
            f"DiskGraph(n={self.num_nodes}, m={self.num_edges}, "
            f"path={self.edge_file.path!r})"
        )

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def scan_edges(self, batch_blocks: int = 1) -> Iterator[np.ndarray]:
        """Sequentially scan the edge set, charging block reads."""
        return self.edge_file.scan(batch_blocks=batch_blocks)

    def to_digraph(self) -> Digraph:
        """Load the whole graph into memory (one full scan)."""
        return Digraph(self.num_nodes, self.edge_file.read_all())

    def reversed_graph(self, path: Optional[str] = None) -> "DiskGraph":
        """Build the transposed graph on disk (one read + one write pass)."""
        reversed_file = reverse_edges(self.edge_file, out_path=path)
        return DiskGraph(self.num_nodes, reversed_file)

    def scratch_path(self, suffix: str) -> str:
        """A sibling path for temporary files derived from this graph."""
        return self.edge_file.path + "." + suffix

    def derive_edge_file(self, suffix: str) -> EdgeFile:
        """Create an empty scratch :class:`EdgeFile` next to this graph.

        The scratch file inherits the graph's counter, block size and
        I/O policy (page cache and prefetch depth), so the shrinking
        working files built by the reduction algorithms are cached and
        pipelined exactly like the input they were derived from.
        """
        return EdgeFile.create(
            self.scratch_path(suffix),
            counter=self.counter,
            block_size=self.block_size,
            cache=self.edge_file.cache,
            prefetch_depth=self.edge_file.prefetch_depth,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the backing edge file."""
        self.edge_file.close()

    def unlink(self) -> None:
        """Close and delete the backing edge file and known scratch files."""
        base = self.edge_file.path
        self.edge_file.unlink()
        for suffix in (".rev", ".sorted", ".staging"):
            candidate = base + suffix
            if os.path.exists(candidate):
                os.remove(candidate)

    def __enter__(self) -> "DiskGraph":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
