"""An immutable in-memory directed graph with CSR adjacency.

:class:`Digraph` stores edges as a dense ``(m, 2)`` array and builds a
compressed-sparse-row index on demand.  Nodes are the integers
``0 .. n-1``; parallel edges and self-loops are allowed (the paper's
synthetic generator produces both).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

import numpy as np

from repro.constants import NODE_DTYPE
from repro.exceptions import GraphFormatError


class Digraph:
    """A directed graph over nodes ``0 .. num_nodes - 1``.

    Parameters
    ----------
    num_nodes:
        Number of nodes; node ids must all be smaller than this.
    edges:
        ``(m, 2)`` integer array of ``(u, v)`` pairs (copied and cast to
        ``uint32``).  May be empty.
    """

    def __init__(self, num_nodes: int, edges: Optional[np.ndarray] = None) -> None:
        if num_nodes < 0:
            raise GraphFormatError("num_nodes must be non-negative")
        if edges is None:
            edges = np.empty((0, 2), dtype=NODE_DTYPE)
        edges = np.ascontiguousarray(edges, dtype=NODE_DTYPE)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise GraphFormatError("edges must have shape (m, 2)")
        if edges.size and int(edges.max()) >= num_nodes:
            raise GraphFormatError(
                f"edge endpoint {int(edges.max())} out of range for {num_nodes} nodes"
            )
        self._num_nodes = num_nodes
        self._edges = edges
        self._indptr: Optional[np.ndarray] = None
        self._indices: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """``|V(G)|``."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """``|E(G)|`` (counting parallel edges)."""
        return int(self._edges.shape[0])

    @property
    def edges(self) -> np.ndarray:
        """The ``(m, 2)`` edge array (do not mutate)."""
        return self._edges

    def __repr__(self) -> str:
        return f"Digraph(n={self.num_nodes}, m={self.num_edges})"

    # ------------------------------------------------------------------
    # CSR adjacency
    # ------------------------------------------------------------------
    def _build_csr(self) -> None:
        if self._indptr is not None:
            return
        sources = self._edges[:, 0].astype(np.int64)
        order = np.argsort(sources, kind="stable")
        counts = np.bincount(sources, minlength=self._num_nodes)
        self._indptr = np.concatenate(
            ([0], np.cumsum(counts, dtype=np.int64))
        )
        self._indices = self._edges[order, 1].astype(np.int64)

    @property
    def indptr(self) -> np.ndarray:
        """CSR row pointer (length ``n + 1``)."""
        self._build_csr()
        assert self._indptr is not None
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column indices, grouped by source node."""
        self._build_csr()
        assert self._indices is not None
        return self._indices

    def successors(self, node: int) -> np.ndarray:
        """Out-neighbours of ``node`` (with multiplicity)."""
        self._build_csr()
        assert self._indptr is not None and self._indices is not None
        return self._indices[self._indptr[node] : self._indptr[node + 1]]

    def out_degree(self, node: Optional[int] = None) -> np.ndarray | int:
        """Out-degree of ``node``, or the full out-degree array."""
        self._build_csr()
        assert self._indptr is not None
        degrees = np.diff(self._indptr)
        if node is None:
            return degrees
        return int(degrees[node])

    def in_degree(self) -> np.ndarray:
        """Array of in-degrees."""
        return np.bincount(
            self._edges[:, 1].astype(np.int64), minlength=self._num_nodes
        )

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "Digraph":
        """The transposed graph (every edge flipped)."""
        return Digraph(self._num_nodes, self._edges[:, ::-1])

    def without_self_loops(self) -> "Digraph":
        """A copy with self-loop edges removed."""
        keep = self._edges[:, 0] != self._edges[:, 1]
        return Digraph(self._num_nodes, self._edges[keep])

    def deduplicated(self) -> "Digraph":
        """A copy with parallel edges collapsed."""
        if self.num_edges == 0:
            return Digraph(self._num_nodes)
        return Digraph(self._num_nodes, np.unique(self._edges, axis=0))

    # ------------------------------------------------------------------
    # iteration and construction helpers
    # ------------------------------------------------------------------
    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(u, v)`` tuples in storage order."""
        for u, v in self._edges:
            yield int(u), int(v)

    @classmethod
    def from_edge_iter(
        cls, num_nodes: int, pairs: Iterable[Tuple[int, int]]
    ) -> "Digraph":
        """Build a graph from an iterable of ``(u, v)`` pairs."""
        edge_list = list(pairs)
        if not edge_list:
            return cls(num_nodes)
        return cls(num_nodes, np.asarray(edge_list, dtype=np.int64))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Digraph):
            return NotImplemented
        if self.num_nodes != other.num_nodes:
            return False
        mine = self._edges
        theirs = other._edges
        if mine.shape != theirs.shape:
            return False
        # Compare as multisets of edges.
        return bool(
            np.array_equal(
                np.sort(mine.view([("u", NODE_DTYPE), ("v", NODE_DTYPE)]), axis=0),
                np.sort(theirs.view([("u", NODE_DTYPE), ("v", NODE_DTYPE)]), axis=0),
            )
        )

    __hash__ = None  # type: ignore[assignment]
