"""Structural statistics of directed graphs.

Degree summaries, SCC profiles, and the ``depth(G)`` quantity the
paper's I/O bounds are stated in (the longest simple path of ``G``,
computed exactly on the condensation where it reduces to a DAG longest
path plus the internal extent of the SCCs on it — we report the standard
conservative proxy: longest path of the condensation weighted by SCC
sizes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import Digraph


@dataclass
class DegreeStats:
    """Summary of a graph's degree distribution."""

    num_nodes: int
    num_edges: int
    average_degree: float
    max_out_degree: int
    max_in_degree: int
    isolated_nodes: int


def degree_stats(graph: Digraph) -> DegreeStats:
    """Compute :class:`DegreeStats` for ``graph``."""
    out_degree = np.asarray(graph.out_degree())
    in_degree = graph.in_degree()
    isolated = int(np.count_nonzero((out_degree == 0) & (in_degree == 0)))
    average = graph.num_edges / graph.num_nodes if graph.num_nodes else 0.0
    return DegreeStats(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        average_degree=average,
        max_out_degree=int(out_degree.max()) if graph.num_nodes else 0,
        max_in_degree=int(in_degree.max()) if graph.num_nodes else 0,
        isolated_nodes=isolated,
    )


@dataclass
class SCCProfile:
    """The SCC structure summary the paper quotes for its datasets."""

    num_sccs_nontrivial: int
    num_sccs_total: int
    nodes_in_nontrivial_sccs: int
    largest_scc_size: int
    second_largest_scc_size: int
    smallest_nontrivial_scc_size: int


def scc_profile(sizes: np.ndarray) -> SCCProfile:
    """Summarise an array of SCC sizes (one entry per SCC)."""
    sizes = np.asarray(sizes, dtype=np.int64)
    nontrivial = sizes[sizes >= 2]
    ordered = np.sort(nontrivial)[::-1]
    return SCCProfile(
        num_sccs_nontrivial=int(nontrivial.size),
        num_sccs_total=int(sizes.size),
        nodes_in_nontrivial_sccs=int(nontrivial.sum()),
        largest_scc_size=int(ordered[0]) if ordered.size else 0,
        second_largest_scc_size=int(ordered[1]) if ordered.size > 1 else 0,
        smallest_nontrivial_scc_size=int(ordered[-1]) if ordered.size else 0,
    )


def estimated_depth(graph: Digraph) -> int:
    """A ``depth(G)`` proxy: SCC-size-weighted longest condensation path.

    The true longest simple path is NP-hard in general graphs; the
    paper's bounds only need an upper-bound flavour, which this gives:
    every simple path visits each SCC at most once and can use at most
    ``|SCC|`` nodes inside it.
    """
    from repro.inmemory.condensation import condense
    from repro.inmemory.toposort import topological_sort

    if graph.num_nodes == 0:
        return 0
    condensed = condense(graph)
    dag = condensed.dag
    weights = condensed.sizes.astype(np.int64)
    order = topological_sort(dag)
    best = weights.copy()
    indptr = dag.indptr
    indices = dag.indices
    for v in order:
        v = int(v)
        reach = best[v]
        for w in indices[indptr[v] : indptr[v + 1]]:
            w = int(w)
            if best[w] < reach + weights[w]:
                best[w] = reach + weights[w]
    return int(best.max()) - 1 if best.size else 0
