"""BR+-Trees: spanning trees with stored backward links and ``drank``.

A BR+-Tree (paper Section 5/6) is a spanning tree in which every node
``u`` additionally remembers one backward edge ``(u, b)`` to an ancestor
``b`` — ``3|V|`` memory in total.  On top of it the paper defines:

* ``Rset(u, G, T)`` — the nodes reachable from ``u`` inside the
  BR+-Tree (down tree edges, up stored backward links, repeatedly);
* ``drank(u, T) = min { depth(v) : v in Rset(u) }`` and ``dlink(u, T)``
  the node attaining it;
* the refined **up-edge** of Definition 5.1: an edge ``(u, v)`` with no
  ancestor/descendant relationship and ``drank(u) >= drank(v)``.

:meth:`BRPlusTree.update_drank` computes the closure exactly in two
tree traversals, using the identity
``Rset(u) = subtree(u) ∪ Rset(a)`` where ``a`` is the shallowest
ancestor reachable by one backward jump out of ``u``'s subtree.

With ``REPRO_CHECK_INVARIANTS=1`` the mutating entry points re-verify
the structure contracts after every call (see ``docs/contracts.md``):
parent/depth consistency, a single strictly-shallower backward link per
node, and — right after :meth:`~BRPlusTree.update_drank` — ancestor
validity of every link plus drank/dlink coherence and monotonicity.
"""

from __future__ import annotations

import numpy as np

from repro.analysis_static.contracts import invariant, invariants_enabled, require
from repro.constants import VIRTUAL_ROOT
from repro.exceptions import ContractViolation
from repro.spanning.tree import ContractibleTree


class BRPlusTree(ContractibleTree):
    """A spanning tree plus per-node backward links and drank/dlink.

    Memory: the parent, depth and backward-link arrays are exactly the
    ``3|V|`` node-sized footprint the paper budgets for 2P-SCC; the
    ``drank``/``dlink`` arrays are recomputed scratch of the same order.
    """

    def __init__(self, n: int) -> None:
        super().__init__(n)
        #: Stored backward link: the ancestor each node keeps, or -1.
        self.blink = np.full(n, VIRTUAL_ROOT, dtype=np.int64)
        #: drank/dlink of Definition 5.1, refreshed by update_drank().
        self.drank = self.depth.copy()
        self.dlink = np.arange(n, dtype=np.int64)

    # ------------------------------------------------------------------
    # backward links
    # ------------------------------------------------------------------
    @invariant("check_blink_shape")
    def offer_blink(self, u: int, target: int) -> bool:
        """Record backward link ``(u, target)`` if it beats the stored one.

        ``target`` must be an ancestor of ``u`` when offered (callers
        check); a shallower target wins.  Returns True when stored.
        """
        current = int(self.blink[u])
        if current != VIRTUAL_ROOT and self.depth[current] <= self.depth[target]:
            return False
        if invariants_enabled():
            # Precise check of the offered pair, valid exactly at offer
            # time (links may go stale later until update_drank drops
            # them, so the decorator only re-checks the weaker shape).
            require(
                target != u and self.is_ancestor(target, u),
                f"offered backward link ({u}, {target}) does not target "
                "a proper ancestor",
            )
        self.blink[u] = target
        return True

    # ------------------------------------------------------------------
    # drank / dlink closure
    # ------------------------------------------------------------------
    @invariant("check_structure", "check_blink_shape", "check_drank_contract")
    def update_drank(self) -> None:
        """Recompute ``drank``/``dlink`` for every node (two traversals).

        Pass 1 (DFS with the root path on a stack): drop backward links
        invalidated by pushdowns (target no longer an ancestor), set the
        one-jump value ``g(u) = min(depth(u), depth(blink(u)))``, and on
        post-visit fold children into the subtree minimum
        ``m(u) = min over subtree(u) of g``.

        Pass 2 (top-down): ``drank(u) = depth(u)`` if ``m(u) = depth(u)``,
        else ``drank(u) = drank(a)`` for the ancestor ``a`` at depth
        ``m(u)`` — the shallowest node one backward jump out of
        ``subtree(u)`` can reach.
        """
        n = self.n
        g = self.depth.copy()
        g_node = np.arange(n, dtype=np.int64)
        m = np.empty(n, dtype=np.int64)
        m_node = np.empty(n, dtype=np.int64)

        for root in self.roots():
            # --- pass 1: validate blinks, compute g and subtree-min m.
            path: list[int] = []
            stack: list[tuple[int, bool]] = [(root, False)]
            while stack:
                node, processed = stack.pop()
                if processed:
                    path.pop()
                    best = g[node]
                    best_node = int(g_node[node])
                    for child in self.children[node]:
                        if m[child] < best:
                            best = m[child]
                            best_node = int(m_node[child])
                    m[node] = best
                    m_node[node] = best_node
                    continue
                path.append(node)
                b = int(self.blink[node])
                if b != VIRTUAL_ROOT:
                    bd = int(self.depth[b])
                    if bd < len(path) and path[bd - 1] == b:
                        if bd < g[node]:
                            g[node] = bd
                            g_node[node] = b
                    else:
                        self.blink[node] = VIRTUAL_ROOT
                stack.append((node, True))
                for child in self.children[node]:
                    stack.append((child, False))

            # --- pass 2: close the jump chain top-down.
            path = []
            walk: list[tuple[int, bool]] = [(root, False)]
            while walk:
                node, processed = walk.pop()
                if processed:
                    path.pop()
                    continue
                if m[node] >= self.depth[node]:
                    self.drank[node] = self.depth[node]
                    self.dlink[node] = node
                else:
                    ancestor = path[m[node] - 1]
                    self.drank[node] = self.drank[ancestor]
                    self.dlink[node] = self.dlink[ancestor]
                path.append(node)
                walk.append((node, True))
                for child in self.children[node]:
                    walk.append((child, False))

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_arrays(self) -> "dict[str, np.ndarray]":
        """The base tree's arrays plus blink/drank/dlink."""
        arrays = super().state_arrays()
        arrays["blink"] = self.blink
        arrays["drank"] = self.drank
        arrays["dlink"] = self.dlink
        return arrays

    def _restore_state(self, arrays: "dict[str, np.ndarray]") -> None:
        super()._restore_state(arrays)
        self.blink[:] = arrays["blink"]
        self.drank[:] = arrays["drank"]
        self.dlink[:] = arrays["dlink"]

    # ------------------------------------------------------------------
    # Definition 5.1
    # ------------------------------------------------------------------
    def classify_edge(self, u: int, v: int) -> str:
        """Classify graph edge ``(u, v)`` against the current tree.

        Returns one of ``"tree-or-forward"`` (u is an ancestor of v),
        ``"backward"`` (v is an ancestor of u), ``"up"`` (Definition
        5.1: no ancestor relationship and ``drank(u) >= drank(v)``), or
        ``"down"`` (everything else — ignorable).
        """
        if u == v:
            return "tree-or-forward"
        if self.depth[u] < self.depth[v]:
            if self.is_ancestor(u, v):
                return "tree-or-forward"
        elif self.is_ancestor(v, u):
            return "backward"
        if self.drank[u] >= self.drank[v]:
            return "up"
        return "down"

    # ------------------------------------------------------------------
    # runtime contracts (REPRO_CHECK_INVARIANTS=1; see docs/contracts.md)
    # ------------------------------------------------------------------
    def check_structure(self) -> None:
        """Parent/depth/children consistency of the live tree.

        Re-raises the assert-based :meth:`ContractibleTree.check_invariants`
        as a :class:`~repro.exceptions.ContractViolation`.
        """
        try:
            self.check_invariants()
        except AssertionError as exc:
            raise ContractViolation(f"tree structure: {exc}") from exc

    def check_blink_shape(self) -> None:
        """Each node stores at most one backward link, never to itself.

        This is the time-invariant half of the backward-link contract;
        ancestor validity and strict shallowness can go stale between
        scans (pushdowns reshape the tree) and are re-established — and
        checked — by :meth:`update_drank`.
        """
        for u in np.flatnonzero(self.blink != VIRTUAL_ROOT).tolist():
            b = int(self.blink[u])
            require(
                0 <= b < self.n,
                f"backward link of {u} targets out-of-range node {b}",
            )
            require(b != u, f"node {u} stores a backward link to itself")

    def check_drank_contract(self) -> None:
        """Full drank/dlink/blink coherence, valid right after update_drank.

        For every live node reachable from a live root: the stored
        backward link targets a strictly shallower ancestor; ``drank``
        lies in ``[1, depth]``; ``dlink`` is the ancestor-or-self
        sitting exactly at depth ``drank``; and drank is monotonically
        non-decreasing down every tree path (``Rset(child) ⊆ Rset(u)``).
        """
        for root in self.roots():
            path: list[int] = []
            stack: list[tuple[int, bool]] = [(root, False)]
            while stack:
                node, processed = stack.pop()
                if processed:
                    path.pop()
                    continue
                path.append(node)
                depth_u = int(self.depth[node])
                require(
                    depth_u == len(path),
                    f"depth({node})={depth_u} disagrees with its tree path "
                    f"length {len(path)}",
                )
                b = int(self.blink[node])
                if b != VIRTUAL_ROOT:
                    bd = int(self.depth[b])
                    require(
                        b != node and bd < depth_u,
                        f"backward link ({node}, {b}) is not strictly "
                        "shallower after update_drank",
                    )
                    require(
                        1 <= bd and path[bd - 1] == b,
                        f"backward link ({node}, {b}) does not target an "
                        "ancestor after update_drank",
                    )
                dr = int(self.drank[node])
                dl = int(self.dlink[node])
                require(
                    1 <= dr <= depth_u,
                    f"drank({node})={dr} outside [1, depth={depth_u}]",
                )
                require(
                    path[dr - 1] == dl,
                    f"dlink({node})={dl} is not the ancestor at depth "
                    f"drank({node})={dr}",
                )
                parent = int(self.parent[node])
                if parent != VIRTUAL_ROOT:
                    require(
                        int(self.drank[parent]) <= dr,
                        f"drank not monotone: drank({parent})="
                        f"{int(self.drank[parent])} > drank({node})={dr}",
                    )
                stack.append((node, True))
                for child in self.children[node]:
                    stack.append((child, False))
