"""A contractible spanning forest hanging off a virtual root.

:class:`ContractibleTree` is the in-memory scaffolding shared by the
2P-SCC tree search and the 1P/1PB single-phase algorithms.  It stores,
per node: its parent (``-1`` meaning the virtual root ``v0``), its depth
(``depth(v0) = 0``, so real roots sit at depth 1), and its children.
Supernode membership after contraction lives in a
:class:`~repro.spanning.unionfind.DisjointSet`; only representatives are
"live" tree nodes.

Supported operations map one-to-one onto the paper:

* ``is_ancestor`` / ``path_up`` — the ancestor/descendant tests of
  Definition 5.1 (depth-bounded parent walks).
* ``pushdown`` — the reshaping operation of Section 6.1: cut the
  subtree rooted at ``v``, paste it under ``u``, update depths locally.
* ``contract_path`` — early acceptance (Section 7.1): collapse the tree
  path closed by a backward edge into one supernode.
* ``reject`` — early rejection (Section 7.2): emit a node's supernode
  as a final SCC and remove it from the tree.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.constants import VIRTUAL_ROOT
from repro.spanning.unionfind import DisjointSet


class ContractibleTree:
    """A rooted spanning forest over ``n`` nodes supporting contraction.

    Parameters
    ----------
    n:
        Number of original graph nodes.  The initial tree is the star:
        every node is a child of the virtual root at depth 1 (the
        "initial spanning tree" the paper's algorithms start from).
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self.parent = np.full(n, VIRTUAL_ROOT, dtype=np.int64)
        self.depth = np.ones(n, dtype=np.int64)
        #: Whether the node's parent edge corresponds to a real graph
        #: edge (the initial star edges and virtual-root adoptions after
        #: rejection do not).  1PB-SCC consults this when building its
        #: in-memory batch graph ``T ∪ B_i``.
        self.parent_is_real = np.zeros(n, dtype=bool)
        #: live[x] is True iff x is a representative still in the tree
        #: (neither absorbed by contraction nor rejected).
        self.live = np.ones(n, dtype=bool)
        self.ds = DisjointSet(n)
        self.children: List[set] = [set() for _ in range(n)]
        #: Nodes finalised by early rejection, in emission order.
        self.rejected: List[int] = []
        #: Structural version: bumped by every mutation that can change
        #: an ancestor relationship, a depth, or liveness.  Snapshot
        #: consumers (the Euler-tour ancestor oracle) compare it against
        #: the epoch they were built at.
        self.epoch = 0
        #: dirty[x] — x's root path, depth or liveness may have changed
        #: since the last oracle snapshot.  Only maintained once a
        #: snapshot consumer turns :attr:`track_dirty` on; a node left
        #: clean is guaranteed unchanged in all three respects, so
        #: snapshot-time answers about clean pairs remain valid.
        self.dirty = np.zeros(n, dtype=bool)
        #: Switched on by the first oracle rebuild; scalar-only runs
        #: never pay the subtree-marking cost.
        self.track_dirty = False
        #: Optional plain-list mirrors of ``parent``/``depth``/``dirty``
        #: (:meth:`enable_mirror`).  The parallel merge loop's fallback
        #: walks are numpy-scalar-read bound; reading Python lists in
        #: the hot walk is several times cheaper, and the mutation loops
        #: below already visit exactly the nodes whose entries change.
        #: ``None`` until enabled, so serial runs pay one predicate per
        #: mutation and nothing per node.
        self.mirror_parent: Optional[List[int]] = None
        self.mirror_depth: Optional[List[int]] = None
        self.mirror_dirty: Optional[List[bool]] = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def find(self, x: int) -> int:
        """Representative (live tree node) of original node ``x``."""
        return self.ds.find(x)

    def find_many(self, xs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`find`."""
        return self.ds.find_many(xs)

    def num_live(self) -> int:
        """Number of live tree nodes (current supernodes)."""
        return int(np.count_nonzero(self.live))

    def live_nodes(self) -> np.ndarray:
        """Ids of live tree nodes."""
        return np.flatnonzero(self.live)

    def is_ancestor(self, a: int, d: int) -> bool:
        """Whether live node ``a`` is a (strict or equal) ancestor of ``d``.

        Walks parent pointers from ``d`` upward, pruned by depth: the
        walk stops as soon as it climbs above ``depth(a)``.
        """
        target_depth = self.depth[a]
        node = d
        depth = self.depth
        parent = self.parent
        while node != VIRTUAL_ROOT and depth[node] > target_depth:
            node = int(parent[node])
        return node == a

    def path_up(self, d: int, a: int) -> List[int]:
        """Live nodes on the tree path from ``d`` up to ancestor ``a``.

        Returned bottom-up: ``[d, ..., a]``.  Raises ``ValueError`` when
        ``a`` is not an ancestor of ``d`` — callers must test first.
        """
        path = [d]
        node = d
        parent = self.parent
        while node != a:
            node = int(parent[node])
            if node == VIRTUAL_ROOT:
                raise ValueError(f"{a} is not an ancestor of {d}")
            path.append(node)
        return path

    def subtree(self, v: int) -> Iterator[int]:
        """Yield every live node in the subtree rooted at ``v`` (incl. v)."""
        stack = [v]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(self.children[node])

    def roots(self) -> Iterator[int]:
        """Live children of the virtual root."""
        for v in np.flatnonzero(self.live):
            if self.parent[v] == VIRTUAL_ROOT:
                yield int(v)

    def oracle_roots(self) -> Iterator[int]:
        """Roots of the live forest, for oracle rebuild traversals."""
        return self.roots()

    # ------------------------------------------------------------------
    # mirrors
    # ------------------------------------------------------------------
    def enable_mirror(self) -> None:
        """Materialise the plain-list mirrors and keep them maintained.

        Idempotent.  After this call every structural edit updates the
        mirrors in the same loops that update the numpy arrays, so the
        two views never diverge; :meth:`mirror_clear_dirty` must be
        called whenever a snapshot consumer clears :attr:`dirty`.
        """
        if self.mirror_parent is not None:
            return
        self.mirror_parent = self.parent.tolist()
        self.mirror_depth = self.depth.tolist()
        self.mirror_dirty = self.dirty.tolist()

    def mirror_clear_dirty(self) -> None:
        """Re-zero the dirty mirror (paired with ``dirty[:] = False``)."""
        if self.mirror_dirty is not None:
            self.mirror_dirty = [False] * self.n

    # ------------------------------------------------------------------
    # structural edits
    # ------------------------------------------------------------------
    def _mark_dirty_subtree(self, v: int) -> None:
        """Mark ``v`` and its whole subtree dirty (post-mutation)."""
        dirty = self.dirty
        mirror = self.mirror_dirty
        if mirror is None:
            for node in self.subtree(v):
                dirty[node] = True
        else:
            for node in self.subtree(v):
                dirty[node] = True
                mirror[node] = True

    def _shift_subtree_depth(self, v: int, delta: int) -> None:
        if delta == 0:
            return
        mirror = self.mirror_depth
        if mirror is None:
            for node in self.subtree(v):
                self.depth[node] += delta
        else:
            for node in self.subtree(v):
                self.depth[node] += delta
                mirror[node] += delta

    def _detach(self, v: int) -> None:
        p = int(self.parent[v])
        if p != VIRTUAL_ROOT:
            self.children[p].discard(v)

    def reparent(self, v: int, new_parent: int, real: bool = True) -> None:
        """Move live node ``v`` (and its subtree) under ``new_parent``.

        Depths of the whole moved subtree are updated — the "local"
        depth maintenance the paper contrasts with DFS-Tree's global
        preorder renumbering (Fig. 3).
        """
        self._detach(v)
        if new_parent == VIRTUAL_ROOT:
            new_depth = 1
        else:
            self.children[new_parent].add(v)
            new_depth = int(self.depth[new_parent]) + 1
        self.parent[v] = new_parent
        if self.mirror_parent is not None:
            self.mirror_parent[v] = new_parent
        self.parent_is_real[v] = real and new_parent != VIRTUAL_ROOT
        self._shift_subtree_depth(v, new_depth - int(self.depth[v]))
        # The moved subtree's root paths (and depths) changed; the rest
        # of the tree — including the new parent — is untouched.
        self.epoch += 1
        if self.track_dirty:
            self._mark_dirty_subtree(v)

    def pushdown(self, u: int, v: int) -> None:
        """The paper's ``T ⇓ (u, v)`` operation for an up-edge ``(u, v)``.

        Cuts the subtree rooted at ``v`` and pastes it as a child of
        ``u``; valid only when ``u`` and ``v`` have no
        ancestor/descendant relationship (the up-edge definition
        guarantees the result is still a spanning tree).
        """
        self.reparent(v, u, real=True)

    def contract_path(self, u: int, v: int) -> int:
        """Contract the tree path from ``v`` down to ``u`` into one node.

        ``v`` must be an ancestor of ``u`` (or equal); this is the
        contraction a backward edge ``(u, v)`` triggers.  The merged
        supernode keeps ``v``'s identity, parent and depth.  Children
        hanging off the path are re-hung under the supernode with their
        subtree depths updated.  Returns the surviving representative.
        """
        if u == v:
            return v
        path = self.path_up(u, v)
        on_path = set(path)
        rep = v
        rep_depth = int(self.depth[rep])
        mark = self.track_dirty
        mirror_parent = self.mirror_parent
        mirror_dirty = self.mirror_dirty
        for node in path[:-1]:  # everything except v itself
            self.ds.union_into(node, rep)
            self.live[node] = False
            if mark:
                self.dirty[node] = True
                if mirror_dirty is not None:
                    mirror_dirty[node] = True
            for child in list(self.children[node]):
                if child in on_path:
                    continue
                self.children[rep].add(child)
                self.parent[child] = rep
                if mirror_parent is not None:
                    mirror_parent[child] = rep
                self._shift_subtree_depth(child, rep_depth + 1 - int(self.depth[child]))
                if mark:
                    self._mark_dirty_subtree(child)
            self.children[node].clear()
        # Drop absorbed path members from the representative's children.
        # ``rep`` keeps its parent, depth and liveness, so it stays clean:
        # only the absorbed path and the re-hung subtrees are marked.
        self.children[rep] -= on_path
        self.epoch += 1
        return rep

    def reject(self, v: int) -> None:
        """Early-reject live node ``v``: finalise it and remove it from T.

        Its children are adopted by the virtual root (so the tree never
        gains a parent edge that does not exist in the graph), and its
        supernode is recorded in :attr:`rejected` for output.
        """
        for child in list(self.children[v]):
            self.reparent(child, VIRTUAL_ROOT)
        self._detach(v)
        self.parent[v] = VIRTUAL_ROOT
        if self.mirror_parent is not None:
            self.mirror_parent[v] = VIRTUAL_ROOT
        self.live[v] = False
        self.epoch += 1
        if self.track_dirty:
            self.dirty[v] = True
            if self.mirror_dirty is not None:
                self.mirror_dirty[v] = True
        self.rejected.append(v)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_arrays(self) -> Dict[str, np.ndarray]:
        """The O(|V|) arrays that fully determine this tree.

        ``children`` is *not* serialised: for every live non-root node
        ``c``, ``c ∈ children[parent[c]]`` (the invariant
        :meth:`check_invariants` asserts), so the sets are rebuilt from
        ``parent`` and ``live`` on restore.  The oracle-snapshot fields
        (``epoch``/``dirty``) are deliberately dropped — a resumed run
        starts with a fresh kernel whose oracle rebuilds lazily.
        """
        return {
            "parent": self.parent,
            "depth": self.depth,
            "parent_is_real": self.parent_is_real,
            "live": self.live,
            "ds_parent": self.ds.parent,
            "ds_size": self.ds.size,
            "rejected": np.asarray(self.rejected, dtype=np.int64),
        }

    @classmethod
    def from_state(cls, arrays: Dict[str, np.ndarray]) -> "ContractibleTree":
        """Rebuild a tree from :meth:`state_arrays` output."""
        n = int(arrays["parent"].shape[0])
        tree = cls(n)
        tree._restore_state(arrays)
        return tree

    def _restore_state(self, arrays: Dict[str, np.ndarray]) -> None:
        self.parent[:] = arrays["parent"]
        self.depth[:] = arrays["depth"]
        self.parent_is_real[:] = arrays["parent_is_real"]
        self.live[:] = arrays["live"]
        self.ds.parent[:] = arrays["ds_parent"]
        self.ds.size[:] = arrays["ds_size"]
        self.rejected = [int(v) for v in arrays["rejected"]]
        self._rebuild_children()

    def _rebuild_children(self) -> None:
        """Derive the children sets from ``parent`` and ``live``."""
        self.children = [set() for _ in range(self.n)]
        for v in np.flatnonzero(self.live):
            p = int(self.parent[v])
            if p != VIRTUAL_ROOT:
                self.children[p].add(int(v))

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def scc_labels(self) -> tuple[np.ndarray, int]:
        """Contiguous SCC labels for the current partition.

        Every original node is labelled by its supernode (whether still
        live or already rejected).
        """
        return self.ds.labels()

    # ------------------------------------------------------------------
    # invariants (used by tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert structural consistency; raises ``AssertionError``."""
        for v in range(self.n):
            if not self.live[v]:
                continue
            p = int(self.parent[v])
            if p == VIRTUAL_ROOT:
                assert self.depth[v] == 1, f"root {v} has depth {self.depth[v]}"
            else:
                assert self.live[p], f"parent of {v} is not live"
                assert v in self.children[p], f"{v} missing from children of {p}"
                assert self.depth[v] == self.depth[p] + 1, (
                    f"depth({v})={self.depth[v]} but depth({p})={self.depth[p]}"
                )
        for v in range(self.n):
            for c in self.children[v]:
                assert self.live[v], f"dead node {v} has children"
                assert int(self.parent[c]) == v, f"child link {v}->{c} broken"
