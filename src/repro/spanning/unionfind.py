"""Disjoint sets with caller-chosen representatives.

Tree-path contraction must keep the *topmost* path node as the merged
supernode's identity (it inherits that node's parent and depth), so this
union-find lets the caller dictate the surviving representative instead
of using union-by-rank.  Path compression keeps finds cheap; a
vectorised ``find_many`` serves the batch-oriented algorithms.
"""

from __future__ import annotations

import numpy as np


class DisjointSet:
    """Union-find over ``0 .. n - 1`` with explicit representatives.

    Parameters
    ----------
    n:
        Number of elements.
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)

    def __len__(self) -> int:
        return int(self.parent.shape[0])

    @classmethod
    def from_arrays(cls, parent: np.ndarray, size: np.ndarray) -> "DisjointSet":
        """Rebuild a union-find from checkpointed parent/size arrays."""
        if parent.shape != size.shape:
            raise ValueError("parent and size arrays must have equal shape")
        ds = cls(int(parent.shape[0]))
        ds.parent[:] = parent
        ds.size[:] = size
        return ds

    def find(self, x: int) -> int:
        """Representative of ``x``'s set (with path compression)."""
        parent = self.parent
        root = x
        while parent[root] != root:
            root = int(parent[root])
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    def find_many(self, xs: np.ndarray) -> np.ndarray:
        """Vectorised find over an array of elements.

        Convergence iterates only the not-yet-converged lanes: on hot
        batches where most queried elements are already (or point one
        hop from) their roots — the common case right after a previous
        ``find_many`` compressed them — each extra pass touches just the
        shrinking pending set instead of re-scanning the whole array.
        """
        parent = self.parent
        roots = parent[xs]
        pending = np.flatnonzero(parent[roots] != roots)
        while pending.size:
            lane_roots = parent[roots[pending]]
            roots[pending] = lane_roots
            pending = pending[parent[lane_roots] != lane_roots]
        # One-shot compression for the queried elements.
        parent[xs] = roots
        return roots

    def union_into(self, absorbed: int, representative: int) -> int:
        """Merge ``absorbed``'s set into ``representative``'s set.

        ``representative`` (which must already be a representative)
        survives as the set's identity — the semantics tree contraction
        needs.  Returns the representative.
        """
        absorbed = self.find(absorbed)
        if self.parent[representative] != representative:
            raise ValueError("representative must be a set representative")
        if absorbed == representative:
            return representative
        self.parent[absorbed] = representative
        self.size[representative] += self.size[absorbed]
        return representative

    def union_many_into(self, absorbed: np.ndarray, representative: int) -> int:
        """Merge many sets into ``representative``'s set in one shot.

        Every element of ``absorbed`` must currently be a set
        representative distinct from ``representative`` (the batch
        analogue of :meth:`union_into`'s precondition) — the contraction
        call sites guarantee this because they absorb whole groups of
        live supernode representatives.  Returns the representative.
        """
        if self.parent[representative] != representative:
            raise ValueError("representative must be a set representative")
        if absorbed.size == 0:
            return representative
        if (self.parent[absorbed] != absorbed).any() or (
            absorbed == representative
        ).any():
            raise ValueError(
                "absorbed elements must be representatives distinct from "
                "the surviving representative"
            )
        self.parent[absorbed] = representative
        self.size[representative] += int(self.size[absorbed].sum())
        return representative

    def same(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def set_size(self, x: int) -> int:
        """Number of elements in ``x``'s set."""
        return int(self.size[self.find(x)])

    def labels(self) -> tuple[np.ndarray, int]:
        """Contiguous labels ``0 .. k - 1`` for the current partition."""
        n = len(self)
        if n == 0:
            return np.empty(0, dtype=np.int64), 0
        roots = self.find_many(np.arange(n, dtype=np.int64))
        unique_roots, labels = np.unique(roots, return_inverse=True)
        return labels.astype(np.int64), int(unique_roots.size)
