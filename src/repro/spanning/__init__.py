"""Spanning-tree machinery: BR-Trees, BR+-Trees, pushdown, contraction.

The paper's algorithms all operate on a spanning tree of the graph
hanging off a virtual root ``v0``:

* :class:`~repro.spanning.unionfind.DisjointSet` — supernode membership
  with explicit control over which member stays representative.
* :class:`~repro.spanning.tree.ContractibleTree` — a parent/depth forest
  supporting the paper's primitive operations: ancestor tests, the
  ``pushdown`` reshaping operation, tree-path contraction (early
  acceptance), and node rejection (early rejection).
* :class:`~repro.spanning.brtree.BRPlusTree` — a ContractibleTree plus
  one stored backward link per node, with the ``drank``/``dlink``
  closure of Definition 5.1.
"""

from repro.spanning.brtree import BRPlusTree
from repro.spanning.tree import ContractibleTree
from repro.spanning.unionfind import DisjointSet

__all__ = ["DisjointSet", "ContractibleTree", "BRPlusTree"]
