"""Admission control for rebuild jobs, quoted in counted I/O blocks.

A rebuild is the one expensive thing the daemon does: a full
semi-external SCC run over the merged edge file.  Its cost is *known in
advance* in the currency the whole repo accounts in — block transfers —
because the paper's cost model is explicit: one full scan moves
``ceil(|E| · EDGE_BYTES / B)`` blocks, each algorithm performs at most
``SCAN_BUDGETS[name]`` scans per iteration, and iteration counts are
small in practice (the evaluation's runs converge within a handful;
``iterations_hint`` is the conservative multiplier).

So admission is a per-window block budget: each admitted rebuild
reserves its quote against a fixed window of ``window_blocks``; a quote
that does not fit is rejected with a ``retry_after_s`` naming when the
window resets.  This keeps a burst of ingest-triggered rebuilds from
turning the daemon into a disk-bound build loop that starves query
service — the operator caps rebuild I/O per minute the same way the
paper caps memory at ``M``.

The controller never *measures* — it reserves against predictions and
lets :meth:`AdmissionController.note_actual` record what a finished
build really moved (metrics only), so quote accuracy is observable.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.obs.heartbeat import SCAN_BUDGETS, predicted_blocks_per_scan

#: Fallback per-iteration scan budget for unknown algorithm names.
DEFAULT_SCAN_BUDGET = 2

#: Conservative iterations multiplier: the paper's runs converge in a
#: handful of iterations; 8 over-reserves rather than under.
DEFAULT_ITERATIONS_HINT = 8


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission request (returned to the client)."""

    admitted: bool
    quoted_blocks: int
    window_used_blocks: int
    window_quota_blocks: int
    retry_after_s: float
    reason: str

    def to_dict(self) -> dict:
        """Wire form for the ``rebuild``/``ingest`` response payloads."""
        return {
            "admitted": self.admitted,
            "quoted_blocks": self.quoted_blocks,
            "window_used_blocks": self.window_used_blocks,
            "window_quota_blocks": self.window_quota_blocks,
            "retry_after_s": round(self.retry_after_s, 3),
            "reason": self.reason,
        }


def quote_rebuild_blocks(
    algorithm: str,
    num_edges: int,
    block_size: int,
    iterations_hint: int = DEFAULT_ITERATIONS_HINT,
) -> int:
    """Predicted block transfers of one rebuild, from the paper's model.

    ``scans-per-iteration × blocks-per-scan × iterations_hint``.  A
    quote of at least 1 is always returned so even an empty graph's
    rebuild is a countable admission event.
    """
    scans = SCAN_BUDGETS.get(algorithm, DEFAULT_SCAN_BUDGET)
    per_scan = predicted_blocks_per_scan(num_edges, block_size)
    return max(1, scans * per_scan * max(1, iterations_hint))


class AdmissionController:
    """Fixed-window block budget for rebuild admission.

    Thread-safe; the connection threads request admission while the
    builder consumes it.  The window is aligned to its own start (first
    request opens it), which keeps the math trivially explainable in a
    runbook: "you get ``window_blocks`` of rebuild I/O per
    ``window_seconds``, resetting ``retry_after_s`` from now".
    """

    def __init__(
        self,
        window_blocks: int,
        window_seconds: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_blocks <= 0:
            raise ValueError("window_blocks must be positive")
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.window_blocks = window_blocks
        self.window_seconds = window_seconds
        self._clock = clock
        # Re-entrant: _roll_window re-acquires under request()/the
        # window_used_blocks property.
        self._lock = threading.RLock()
        self._window_start: Optional[float] = None
        self._used = 0
        #: Lifetime tallies (exported as admission metrics).
        self.admitted_total = 0
        self.rejected_total = 0
        self.actual_blocks_total = 0

    # ------------------------------------------------------------------
    def _roll_window(self, now: float) -> None:
        with self._lock:
            if (
                self._window_start is None
                or now - self._window_start >= self.window_seconds
            ):
                self._window_start = now
                self._used = 0

    def request(self, quoted_blocks: int) -> AdmissionDecision:
        """Try to reserve ``quoted_blocks`` in the current window."""
        if quoted_blocks < 0:
            raise ValueError("quoted_blocks must be non-negative")
        now = self._clock()
        with self._lock:
            self._roll_window(now)
            window_end = self._window_start + self.window_seconds
            if self._used + quoted_blocks <= self.window_blocks:
                self._used += quoted_blocks
                self.admitted_total += 1
                return AdmissionDecision(
                    admitted=True,
                    quoted_blocks=quoted_blocks,
                    window_used_blocks=self._used,
                    window_quota_blocks=self.window_blocks,
                    retry_after_s=0.0,
                    reason="admitted",
                )
            self.rejected_total += 1
            return AdmissionDecision(
                admitted=False,
                quoted_blocks=quoted_blocks,
                window_used_blocks=self._used,
                window_quota_blocks=self.window_blocks,
                retry_after_s=max(0.0, window_end - now),
                reason=(
                    f"quote of {quoted_blocks} blocks exceeds the "
                    f"remaining window budget "
                    f"({self.window_blocks - self._used} of "
                    f"{self.window_blocks} left)"
                ),
            )

    def note_actual(self, blocks: int) -> None:
        """Record what a finished build actually moved (metrics only)."""
        with self._lock:
            self.actual_blocks_total += max(0, int(blocks))

    @property
    def window_used_blocks(self) -> int:
        """Blocks reserved in the current window (0 after a roll)."""
        now = self._clock()
        with self._lock:
            self._roll_window(now)
            return self._used
