"""Building and querying the daemon's resident snapshot.

A :class:`ServiceSnapshot` is everything the daemon keeps in memory to
answer queries: the O(|V|) SCC labels, the condensation DAG (O(|E'|),
the paper's whole point being that |E'| ≪ |E|), its topological
layering, and a GRAIL :class:`~repro.apps.reachability.ReachabilityIndex`
over the DAG.  Everything else — the edge file itself — stays on disk
and is touched only during builds.

Two construction paths:

* :func:`build_snapshot` — the full semi-external SCC run through
  :meth:`repro.core.base.SCCAlgorithm.run`, inheriting its whole
  robustness kit: counted I/O, fault injection with seeded-backoff
  retries, and durable checkpoints (``checkpoint_dir`` + ``resume``) so
  a SIGKILL mid-build resumes at the last scan boundary and produces a
  byte-identical partition.
* :func:`snapshot_from_labels` — reconstruction from a saved label
  array (the ``labels-gen<k>.npy`` sidecar the server persists after
  every successful build).  A restarted daemon gets back to SERVING
  with one condensation scan instead of a full SCC run; determinism of
  the scan + the seeded GRAIL traversals makes the reconstruction
  exact.

The snapshot's :func:`partition_fingerprint` is the identity the chaos
drill pins: interrupted and uninterrupted builds must converge to the
same fingerprint, byte for byte.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.apps.reachability import ReachabilityIndex
from repro.artifact.manifest import partition_fingerprint
from repro.constants import DEFAULT_BLOCK_SIZE
from repro.graph.digraph import Digraph
from repro.graph.storage import open_disk_graph
from repro.io.atomic import abort_replace, replace_file
from repro.io.counter import IOStats
from repro.obs.metrics import MetricsRegistry


@dataclass
class ServiceSnapshot:
    """The resident, immutable query state of one build generation."""

    labels: np.ndarray          # (num_nodes,) SCC label per node
    num_sccs: int
    sizes: np.ndarray           # (num_sccs,) member counts
    dag: Digraph                # the condensation
    layers: np.ndarray          # (num_sccs,) topological layer per SCC
    index: ReachabilityIndex    # GRAIL labels over the condensation
    fingerprint: str            # partition_fingerprint(labels)
    num_nodes: int
    num_edges: int
    generation: int
    build_io: Optional[IOStats] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    def _check_node(self, node: int, role: str = "node") -> int:
        node = int(node)
        if node < 0 or node >= self.num_nodes:
            raise ValueError(
                f"{role} {node} out of range for a graph with "
                f"{self.num_nodes} node(s)"
            )
        return node

    def reaches(
        self, u: int, v: int, check: Optional[Callable[[], None]] = None
    ) -> bool:
        """Node-level reachability through the condensation."""
        u = self._check_node(u, "u")
        v = self._check_node(v, "v")
        a = int(self.labels[u])
        b = int(self.labels[v])
        # The index is built over the DAG with identity labels, so SCC
        # ids are its node ids; same-SCC queries short-circuit here.
        if a == b:
            return True
        return self.index.reaches(a, b, check=check)

    def scc_of(self, node: int) -> dict:
        """SCC id, size and layer of one node."""
        node = self._check_node(node)
        scc = int(self.labels[node])
        return {
            "scc": scc,
            "size": int(self.sizes[scc]),
            "layer": int(self.layers[scc]),
        }

    def members(self, scc: int, limit: int) -> dict:
        """Up to ``limit`` member node ids of one SCC (+ the true size)."""
        scc = int(scc)
        if scc < 0 or scc >= self.num_sccs:
            raise ValueError(
                f"scc {scc} out of range (condensation has "
                f"{self.num_sccs} SCCs)"
            )
        ids = np.flatnonzero(self.labels == scc)
        return {
            "scc": scc,
            "size": int(ids.size),
            "members": [int(x) for x in ids[: max(1, int(limit))]],
            "truncated": bool(ids.size > limit),
        }

    def layer_of(self, node: int) -> dict:
        """Topological layer of one node's SCC."""
        node = self._check_node(node)
        scc = int(self.labels[node])
        return {"scc": scc, "layer": int(self.layers[scc]),
                "num_layers": int(self.layers.max()) + 1 if self.num_sccs else 0}


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------

def condensation_edges(graph, labels: np.ndarray) -> np.ndarray:
    """Unique inter-SCC edges of ``graph`` under ``labels``, streamed.

    One counted sequential scan; resident state is the accumulated
    per-batch-unique pair set, O(|E'|) plus one batch — the
    semi-external shape (|E'| is what the daemon keeps anyway).
    """
    labels = np.asarray(labels, dtype=np.int64)
    unique_parts: List[np.ndarray] = []
    for batch in graph.scan_edges():
        mapped = labels[batch.astype(np.int64)]
        inter = mapped[mapped[:, 0] != mapped[:, 1]]
        if inter.size:
            unique_parts.append(np.unique(inter, axis=0))
    if not unique_parts:
        return np.empty((0, 2), dtype=np.int64)
    return np.unique(np.concatenate(unique_parts), axis=0)


def dag_layers(dag: Digraph) -> np.ndarray:
    """Topological layer of every DAG node by vectorised Kahn peeling.

    Layer k = settled on the k-th peel, matching the semantics of
    :func:`repro.apps.toposort.semi_external_toposort` (a node's layer
    is the longest path from any source to it).
    """
    n = dag.num_nodes
    layers = np.zeros(n, dtype=np.int64)
    if n == 0:
        return layers
    indegree = dag.in_degree().astype(np.int64)
    indptr, indices = dag.indptr, dag.indices
    ready = np.flatnonzero(indegree == 0)
    depth = 0
    settled = 0
    while ready.size:
        layers[ready] = depth
        settled += int(ready.size)
        children_parts = [
            indices[indptr[u] : indptr[u + 1]].astype(np.int64)
            for u in ready
        ]
        children = (
            np.concatenate(children_parts)
            if children_parts
            else np.empty(0, dtype=np.int64)
        )
        if children.size:
            np.subtract.at(indegree, children, 1)
            candidates = np.unique(children)
            ready = candidates[indegree[candidates] == 0]
        else:
            ready = np.empty(0, dtype=np.int64)
        depth += 1
    if settled != n:
        raise ValueError("dag_layers: input graph has a cycle")
    return layers


def _assemble(
    labels: np.ndarray,
    num_sccs: int,
    dag_edges: np.ndarray,
    num_nodes: int,
    num_edges: int,
    generation: int,
    build_io: Optional[IOStats],
    num_traversals: int,
    seed: int,
) -> ServiceSnapshot:
    dag = Digraph(num_sccs, dag_edges)
    sizes = np.bincount(labels, minlength=num_sccs)
    # Identity labels: the DAG's nodes *are* the SCC ids, so the GRAIL
    # index never re-runs Tarjan over an already-condensed graph.
    index = ReachabilityIndex(
        dag,
        labels=np.arange(num_sccs, dtype=np.int64),
        num_traversals=num_traversals,
        seed=seed,
    )
    return ServiceSnapshot(
        labels=labels,
        num_sccs=num_sccs,
        sizes=sizes,
        dag=dag,
        layers=dag_layers(dag),
        index=index,
        fingerprint=partition_fingerprint(labels),
        num_nodes=num_nodes,
        num_edges=num_edges,
        generation=generation,
        build_io=build_io,
    )


def build_snapshot(
    graph_path: str,
    algorithm: str = "1PB-SCC",
    block_size: int = DEFAULT_BLOCK_SIZE,
    checkpoint_dir: Optional[str] = None,
    resume: bool = True,
    fault_plan: Optional[str] = None,
    time_limit: Optional[float] = None,
    metrics: Optional[MetricsRegistry] = None,
    workers: int = 0,
    num_traversals: int = 2,
    seed: int = 0,
    generation: int = 0,
) -> ServiceSnapshot:
    """Full crash-safe build: SCC run + condensation + GRAIL labels.

    Raises whatever the underlying run raises — SimulatedCrash,
    AlgorithmTimeout, exhausted-retry OSError — the server's builder
    maps those onto lifecycle transitions.
    """
    from repro.core import ALGORITHMS

    if algorithm not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; "
            f"choose from {sorted(ALGORITHMS)}"
        )
    graph = open_disk_graph(graph_path, block_size=block_size)
    try:
        result = ALGORITHMS[algorithm]().run(
            graph,
            time_limit=time_limit,
            fault_plan=fault_plan,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            metrics=metrics,
            workers=workers,
        )
        dag_edges = condensation_edges(graph, result.labels)
        return _assemble(
            result.labels,
            result.num_sccs,
            dag_edges,
            graph.num_nodes,
            graph.num_edges,
            generation,
            result.stats.io,
            num_traversals,
            seed,
        )
    finally:
        graph.close()


def snapshot_from_labels(
    graph_path: str,
    labels: np.ndarray,
    block_size: int = DEFAULT_BLOCK_SIZE,
    num_traversals: int = 2,
    seed: int = 0,
    generation: int = 0,
) -> ServiceSnapshot:
    """Reconstruct a snapshot from persisted labels (restart fast path)."""
    labels = np.asarray(labels, dtype=np.int64)
    graph = open_disk_graph(graph_path, block_size=block_size)
    try:
        if labels.shape[0] != graph.num_nodes:
            raise ValueError(
                f"saved labels cover {labels.shape[0]} nodes but "
                f"{graph_path} has {graph.num_nodes}"
            )
        num_sccs = int(labels.max()) + 1 if labels.size else 0
        dag_edges = condensation_edges(graph, labels)
        return _assemble(
            labels,
            num_sccs,
            dag_edges,
            graph.num_nodes,
            graph.num_edges,
            generation,
            None,
            num_traversals,
            seed,
        )
    finally:
        graph.close()


# ----------------------------------------------------------------------
# label persistence (the restart fast path's sidecar)
# ----------------------------------------------------------------------

def save_labels_atomic(labels: np.ndarray, path: str) -> None:
    """Persist labels durably via the staged-replace protocol.

    An O(|V|) control-plane sidecar like the checkpoint snapshot — not
    graph payload, so it is deliberately outside the counted I/O model.
    """
    staging = path + ".staging"
    try:
        with open(staging, "wb") as handle:  # repro: allow[IO001]
            np.save(handle, np.asarray(labels, dtype=np.int64))
        replace_file(staging, path)
    except BaseException:
        # A torn staging write must not outlive the failed save.
        abort_replace(staging, path)
        raise


def load_labels(path: str) -> Optional[np.ndarray]:
    """Load a persisted label array; ``None`` when the sidecar is absent."""
    if not os.path.exists(path):
        return None
    with open(path, "rb") as handle:  # repro: allow[IO001]
        return np.asarray(np.load(handle), dtype=np.int64)
