"""SCC-as-a-service: the crash-tolerant query daemon.

The one package in the tree allowed to own threads and sockets
(contract THR004): a long-lived process that computes the condensation
once — crash-safe via the checkpoint subsystem — keeps the O(|V|)
snapshot resident, and serves reachability / SCC-membership / toposort
queries under admission control, per-request deadlines, and graceful
degradation.  See ``docs/service.md`` for the protocol and lifecycle.
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionDecision,
    quote_rebuild_blocks,
)
from repro.service.client import ServiceClient, ServiceError, wait_until_ready
from repro.service.protocol import (
    ErrorCode,
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
)
from repro.service.server import SCCServer, ServiceConfig
from repro.service.snapshot import (
    ServiceSnapshot,
    build_snapshot,
    snapshot_from_labels,
)
from repro.service.state import (
    IllegalTransition,
    Lifecycle,
    STATE_CODES,
    ServiceState,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "ErrorCode",
    "IllegalTransition",
    "Lifecycle",
    "MAX_LINE_BYTES",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SCCServer",
    "STATE_CODES",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceSnapshot",
    "ServiceState",
    "build_snapshot",
    "quote_rebuild_blocks",
    "snapshot_from_labels",
    "wait_until_ready",
]
