"""The SCC query daemon: crash-tolerant, admission-controlled, degradable.

One process owns one graph.  It computes the condensation once (crash
safe via the checkpoint subsystem: SIGKILL it mid-build, restart it,
and it resumes to a byte-identical partition), keeps the O(|V|)
snapshot resident, and answers reachability / SCC / toposort queries
from a bounded worker pool over the line-framed JSON protocol of
:mod:`repro.service.protocol`.

Robustness kit, end to end:

* **Admission control** — rebuild jobs are quoted in counted I/O blocks
  (:mod:`repro.service.admission`) and admitted against a per-window
  budget; a rejected rebuild names its ``retry_after_s``.
* **Deadlines** — every queued request carries an expiry; workers check
  it before *and during* execution (the reachability DFS takes a
  cancellation callback), so a slow query degrades into a fast, typed
  ``deadline_exceeded`` instead of a stuck socket.
* **Load shedding** — past the queue's high-water mark the connection
  thread refuses with ``shed`` immediately; the queue itself is bounded
  (as every queue in this tree must be, per contract THR004).
* **Graceful degradation** — ingest buffers edges durably and triggers
  a background rebuild; the last-good snapshot keeps serving with
  ``stale: true`` and is swapped atomically on success.  A failed
  rebuild moves the daemon to READ_ONLY — still answering, refusing
  mutations, reporting the cause — never to a crash loop.

Durable layout under ``service_root`` (all swaps via
:func:`repro.io.atomic.replace_file`)::

    manifest.json        generation / base / building / pending pointers
    labels-gen<k>.npy    persisted partition of generation k
    ingest.bin           the live ingest buffer (an EdgeFile)
    pending-gen<k>.bin   rotated ingest awaiting merge into generation k
    graph-gen<k>.rgr(+.meta)  merged edge file of generation k
    ckpt-gen<k>/         checkpoint directory of generation k's build

Every step of a rebuild is idempotent against the manifest, so a crash
at any point is resumed, not repaired, on restart.
"""

from __future__ import annotations

import json
import os
import queue
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.constants import DEFAULT_BLOCK_SIZE
from repro.core.base import Deadline
from repro.exceptions import AlgorithmTimeout
from repro.graph.storage import read_metadata, write_metadata
from repro.io.atomic import abort_replace, recover_staging, replace_file
from repro.io.edgefile import EdgeFile
from repro.obs.metrics import MetricsRegistry
from repro.service.admission import AdmissionController, quote_rebuild_blocks
from repro.service.protocol import (
    ErrorCode,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode_message,
    error_response,
    ok_response,
    read_frames,
    request_deadline_ms,
    validate_request,
)
from repro.service.snapshot import (
    ServiceSnapshot,
    build_snapshot,
    load_labels,
    save_labels_atomic,
    snapshot_from_labels,
)
from repro.service.state import Lifecycle, ServiceState

#: Ops answered inline on the connection thread — they must stay
#: responsive even when the worker queue is saturated, because they are
#: exactly what an operator reaches for *during* saturation.
_INLINE_OPS = frozenset({"health", "stats", "shutdown"})

#: Ops that need a resident snapshot.
_QUERY_OPS = frozenset({"reach", "scc", "members", "toposort"})

_MANIFEST_NAME = "manifest.json"


@dataclass
class ServiceConfig:
    """Everything the operator can turn, with shippable defaults."""

    graph_path: str
    algorithm: str = "1PB-SCC"
    host: str = "127.0.0.1"
    port: int = 0                      # 0 = ephemeral, read .port after start
    block_size: int = DEFAULT_BLOCK_SIZE
    query_workers: int = 4
    queue_max: int = 64                # hard bound on the request queue
    high_water: int = 48               # shed threshold (<= queue_max)
    default_deadline_ms: int = 1000
    max_deadline_ms: int = 60_000
    admission_window_blocks: int = 1_000_000
    admission_window_seconds: float = 60.0
    admission_iterations_hint: int = 8
    rebuild_time_limit: Optional[float] = None
    service_root: Optional[str] = None  # default: <graph_path>.service
    fault_plan: Optional[str] = None    # applied to (re)build I/O
    workers: int = 0                    # sharded-scan workers for builds
    num_traversals: int = 2             # GRAIL traversals
    seed: int = 0
    auto_rebuild: bool = True           # ingest triggers a rebuild request
    members_limit: int = 1000

    def root(self) -> str:
        """Durable state directory (defaults beside the graph file)."""
        return self.service_root or (self.graph_path + ".service")


class SCCServer:
    """The daemon.  ``start()`` it, talk JSON to ``(host, port)``."""

    def __init__(
        self,
        config: ServiceConfig,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if config.high_water > config.queue_max:
            raise ValueError("high_water must not exceed queue_max")
        self.config = config
        self.registry = registry if registry is not None else MetricsRegistry()
        self.lifecycle = Lifecycle(self.registry)
        self.admission = AdmissionController(
            config.admission_window_blocks,
            config.admission_window_seconds,
        )
        self.port: Optional[int] = None

        self._snapshot: Optional[ServiceSnapshot] = None
        self._snapshot_lock = threading.Lock()
        self._stale = False

        # Re-entrant: _save_manifest re-acquires under the mutation
        # helpers, and _ingest_file under ingest/rotation call sites.
        self._manifest_lock = threading.RLock()
        self._manifest: Dict[str, Any] = {
            "version": 1,
            "generation": -1,
            "base": None,
            "base_labels": None,
            "building": None,
            "building_generation": None,
            "pending": None,
        }

        self._ingest: Optional[EdgeFile] = None
        self._ingest_lock = threading.RLock()
        self._pending_edges = 0

        # Bounded queues throughout (contract THR004): the request queue
        # is the shed boundary; the build queue never legitimately holds
        # more than one queued job plus one sentinel.
        self._queue: "queue.Queue[Optional[Tuple[Dict[str, Any], Any, float]]]" = (
            queue.Queue(maxsize=config.queue_max)
        )
        self._build_queue: "queue.Queue[Optional[str]]" = queue.Queue(maxsize=4)
        self._rebuild_lock = threading.Lock()
        self._rebuild_inflight = False

        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._conns_lock = threading.Lock()
        self._conns: List[socket.socket] = []
        self._stopping = threading.Event()
        self._started = time.monotonic()

        self._init_metrics()

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def _init_metrics(self) -> None:
        reg = self.registry
        self._m_shed = reg.counter(
            "repro_service_shed_total", "requests refused at the high-water mark"
        )
        self._m_deadline = reg.counter(
            "repro_service_deadline_total", "requests expired before or during execution"
        )
        self._m_latency = reg.histogram(
            "repro_service_request_seconds", "queue wait + execution time"
        )
        self._m_rebuilds = reg.counter(
            "repro_service_rebuilds_total", "background (re)builds completed"
        )
        self._m_rebuild_failures = reg.counter(
            "repro_service_rebuild_failures_total", "background (re)builds failed"
        )
        self._g_stale = reg.gauge(
            "repro_service_stale", "1 while serving from a superseded snapshot"
        )
        self._g_generation = reg.gauge(
            "repro_service_generation", "generation of the resident snapshot"
        )
        self._g_pending = reg.gauge(
            "repro_service_pending_edges", "ingested edges awaiting a rebuild"
        )
        reg.register_callback(
            "repro_service_queue_depth", lambda: float(self._queue.qsize())
        )
        reg.register_callback(
            "repro_service_admission_window_used_blocks",
            lambda: float(self.admission.window_used_blocks),
        )

    def _count_request(self, op: str) -> None:
        self.registry.counter(
            "repro_service_requests_total", "requests received", op=op
        ).inc()

    # ------------------------------------------------------------------
    # durable layout helpers
    # ------------------------------------------------------------------
    def _path(self, name: str) -> str:
        return os.path.join(self.config.root(), name)

    def _labels_path(self, generation: int) -> str:
        return self._path(f"labels-gen{generation}.npy")

    def _pending_path(self, generation: int) -> str:
        return self._path(f"pending-gen{generation}.bin")

    def _gen_graph_path(self, generation: int) -> str:
        return self._path(f"graph-gen{generation}.rgr")

    def _ckpt_dir(self, generation: int) -> str:
        return self._path(f"ckpt-gen{generation}")

    def _manifest_file(self) -> str:
        return self._path(_MANIFEST_NAME)

    def _save_manifest(self) -> None:
        with self._manifest_lock:
            payload = json.dumps(self._manifest, indent=2, sort_keys=True)
        target = self._manifest_file()
        staging = target + ".staging"
        try:
            with open(staging, "w", encoding="utf-8") as handle:  # repro: allow[IO001]
                handle.write(payload)
            replace_file(staging, target)
        except BaseException:
            # A torn staging write must not replace the durable manifest.
            abort_replace(staging, target)
            raise

    def _load_manifest(self) -> bool:
        path = self._manifest_file()
        recover_staging(path)
        if not os.path.exists(path):
            return False
        with open(path, "r", encoding="utf-8") as handle:  # repro: allow[IO001]
            loaded = json.load(handle)
        with self._manifest_lock:
            self._manifest.update(loaded)
        return True

    def _man_get(self, key: str) -> Any:
        with self._manifest_lock:
            return self._manifest.get(key)

    def _man_update(self, **fields: Any) -> None:
        """Mutate the in-memory manifest and persist it durably."""
        with self._manifest_lock:
            self._manifest.update(fields)
        self._save_manifest()

    # ------------------------------------------------------------------
    # lifecycle: start / stop
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bind, recover durable state, and begin serving."""
        os.makedirs(self.config.root(), exist_ok=True)
        had_manifest = self._load_manifest()

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self.config.host, self.config.port))
        self._listener.listen(64)
        self.port = self._listener.getsockname()[1]

        for i in range(self.config.query_workers):
            self._spawn(self._worker_loop, f"svc-worker-{i}")
        self._spawn(self._builder_loop, "svc-builder")
        self._spawn(self._accept_loop, "svc-accept")

        if had_manifest and self._man_get("base_labels"):
            self._recover_serving()
        if self._man_get("building") is not None:
            # A build was in flight when the last process died: resume
            # it.  A resumed rebuild does not re-quote admission — it
            # was admitted before the crash.
            if self._current_snapshot() is not None:
                with self._rebuild_lock:
                    self._rebuild_inflight = True
                self._set_stale(True)
                self.lifecycle.transition(ServiceState.DEGRADED_STALE)
                self._build_queue.put("rebuild")
            else:
                self._build_queue.put("initial")
        elif self._current_snapshot() is None:
            self._build_queue.put("initial")

        self._refresh_pending_count()

    def _spawn(self, target, name: str) -> None:
        thread = threading.Thread(target=target, name=name, daemon=True)
        thread.start()
        self._threads.append(thread)

    def _recover_serving(self) -> None:
        """Restart fast path: persisted labels -> snapshot -> SERVING."""
        labels_path = self._man_get("base_labels")
        try:
            labels = load_labels(labels_path)
            if labels is None:
                raise FileNotFoundError(labels_path)
            snapshot = snapshot_from_labels(
                self._man_get("base"),
                labels,
                block_size=self.config.block_size,
                num_traversals=self.config.num_traversals,
                seed=self.config.seed,
                generation=int(self._man_get("generation")),
            )
        except Exception as exc:  # noqa: BLE001 - degrade, don't crash
            self.lifecycle.transition(
                ServiceState.READ_ONLY, error=f"snapshot recovery failed: {exc}"
            )
            return
        self._install_snapshot(snapshot, stale=False)
        self.lifecycle.transition(ServiceState.SERVING)

    def stop(self) -> None:
        """Graceful stop; idempotent, callable from any thread."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        try:
            self.lifecycle.transition(ServiceState.STOPPED)
        except Exception:  # noqa: BLE001 - already stopped is fine
            pass
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for _ in range(self.config.query_workers):
            try:
                self._queue.put_nowait(None)
            except queue.Full:
                pass
        try:
            self._build_queue.put_nowait(None)
        except queue.Full:
            pass
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        with self._ingest_lock:
            if self._ingest is not None:
                try:
                    self._ingest.flush()
                    self._ingest.close()
                except Exception:  # noqa: BLE001
                    pass
                self._ingest = None

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the daemon stops; True when it has."""
        return self._stopping.wait(timeout)

    # ------------------------------------------------------------------
    # snapshot plumbing
    # ------------------------------------------------------------------
    def _install_snapshot(self, snapshot: ServiceSnapshot, stale: bool) -> None:
        with self._snapshot_lock:
            self._snapshot = snapshot
        self._set_stale(stale)
        self._g_generation.set(float(snapshot.generation))

    def _current_snapshot(self) -> Optional[ServiceSnapshot]:
        with self._snapshot_lock:
            return self._snapshot

    def _set_stale(self, stale: bool) -> None:
        self._stale = bool(stale)
        self._g_stale.set(1.0 if stale else 0.0)

    # ------------------------------------------------------------------
    # ingest buffer
    # ------------------------------------------------------------------
    def _ingest_file(self) -> EdgeFile:
        with self._ingest_lock:
            if self._ingest is None:
                self._ingest = EdgeFile(
                    self._path("ingest.bin"), block_size=self.config.block_size
                )
            return self._ingest

    def _refresh_pending_count(self) -> None:
        total = 0
        ingest_path = self._path("ingest.bin")
        if os.path.exists(ingest_path):
            total += os.path.getsize(ingest_path) // 8
        pending = self._man_get("pending")
        if pending and os.path.exists(pending):
            total += os.path.getsize(pending) // 8
        self._pending_edges = total
        self._g_pending.set(float(total))

    # ------------------------------------------------------------------
    # rebuild orchestration
    # ------------------------------------------------------------------
    def _request_rebuild(self) -> Dict[str, Any]:
        """Admission-check and schedule a background rebuild.

        Returns a wire-ready dict; raises :class:`ProtocolError` with
        ``admission_rejected`` when the window budget refuses the quote.
        """
        with self._rebuild_lock:
            if self._rebuild_inflight:
                return {"scheduled": False, "reason": "rebuild already in flight"}
            snapshot = self._current_snapshot()
            if snapshot is None:
                raise ProtocolError(
                    "no snapshot yet; the initial build must finish first",
                    code=ErrorCode.UNAVAILABLE,
                )
            quote = quote_rebuild_blocks(
                self.config.algorithm,
                snapshot.num_edges + self._pending_edges,
                self.config.block_size,
                self.config.admission_iterations_hint,
            )
            decision = self.admission.request(quote)
            if not decision.admitted:
                raise ProtocolError(
                    f"rebuild rejected by admission control: "
                    f"{decision.reason}; retry_after_s="
                    f"{decision.retry_after_s:.3f}",
                    code=ErrorCode.ADMISSION_REJECTED,
                )
            self._rebuild_inflight = True
        self._set_stale(True)
        if self.lifecycle.state in (ServiceState.SERVING, ServiceState.READ_ONLY):
            self.lifecycle.transition(ServiceState.DEGRADED_STALE)
        self._build_queue.put("rebuild")
        return {"scheduled": True, "admission": decision.to_dict()}

    def _builder_loop(self) -> None:
        while True:
            job = self._build_queue.get()
            if job is None:
                return
            try:
                if job == "initial":
                    self._run_initial_build()
                else:
                    self._run_rebuild()
            except Exception as exc:  # noqa: BLE001 - degrade, don't crash
                self._m_rebuild_failures.inc()
                with self._rebuild_lock:
                    self._rebuild_inflight = False
                self.lifecycle.transition(
                    ServiceState.READ_ONLY,
                    error=f"{job} build failed: {exc}",
                )

    def _run_initial_build(self) -> None:
        """Generation 0: SCC the configured graph, crash-safe."""
        self._man_update(
            building=self.config.graph_path, building_generation=0
        )
        snapshot = self._build_generation(self.config.graph_path, 0)
        save_labels_atomic(snapshot.labels, self._labels_path(0))
        self._man_update(
            generation=0,
            base=self.config.graph_path,
            base_labels=self._labels_path(0),
            building=None,
            building_generation=None,
        )
        self._install_snapshot(snapshot, stale=False)
        self._m_rebuilds.inc()
        self.lifecycle.transition(ServiceState.SERVING)

    def _run_rebuild(self) -> None:
        """One background rebuild; every step idempotent vs the manifest."""
        if (
            self._man_get("building")
            and self._man_get("building_generation") is not None
        ):
            generation = int(self._man_get("building_generation"))
        else:
            generation = int(self._man_get("generation")) + 1

        pending_path = self._rotate_ingest(generation)
        gen_graph = self._merge_generation(generation, pending_path)

        self._man_update(building=gen_graph, building_generation=generation)

        snapshot = self._build_generation(gen_graph, generation)
        if snapshot.build_io is not None:
            self.admission.note_actual(snapshot.build_io.total)
        save_labels_atomic(snapshot.labels, self._labels_path(generation))
        old_generation = int(self._man_get("generation"))
        self._man_update(
            generation=generation,
            base=gen_graph,
            base_labels=self._labels_path(generation),
            building=None,
            building_generation=None,
            pending=None,
        )
        self._cleanup_generation(old_generation, pending_path)
        self._install_snapshot(snapshot, stale=False)
        self._refresh_pending_count()
        self._m_rebuilds.inc()
        with self._rebuild_lock:
            self._rebuild_inflight = False
        self.lifecycle.transition(ServiceState.SERVING)

    def _rotate_ingest(self, generation: int) -> Optional[str]:
        """Move ingest.bin aside as this generation's pending batch.

        The manifest records the intent *before* the rename, so a crash
        in between is redone (the rename is skipped when the pending
        file already exists) and never loses edges.
        """
        pending_path = self._pending_path(generation)
        with self._ingest_lock:
            if os.path.exists(pending_path):
                return pending_path
            ingest_path = self._path("ingest.bin")
            self._man_update(pending=pending_path)
            if self._ingest is not None:
                self._ingest.flush()
                self._ingest.close()
                # The old handle would keep writing to the renamed file;
                # drop it so the next ingest opens a fresh buffer.
                self._ingest = None
            if os.path.exists(ingest_path) and os.path.getsize(ingest_path) > 0:
                replace_file(ingest_path, pending_path)
                return pending_path
            self._man_update(pending=None)
            return None

    def _merge_generation(
        self, generation: int, pending_path: Optional[str]
    ) -> str:
        """Merge base + pending into this generation's edge file.

        Skipped when the ``.meta`` sidecar already exists: metadata is
        written only after the data file has been atomically installed,
        so its presence proves the merge completed.  The merge itself is
        deterministic (base order, then pending order), which is what
        lets an interrupted and an uninterrupted rebuild converge to the
        same fingerprint.
        """
        gen_graph = self._gen_graph_path(generation)
        if os.path.exists(gen_graph + ".meta"):
            return gen_graph
        base = self._man_get("base")
        meta = read_metadata(base)
        total = 0
        staging = gen_graph + ".staging"
        try:
            out = EdgeFile.create(staging, block_size=self.config.block_size)
            try:
                source = EdgeFile(base, block_size=self.config.block_size)
                try:
                    for batch in source.scan():
                        out.append(batch)
                        total += int(batch.shape[0])
                finally:
                    source.close()
                if pending_path is not None and os.path.exists(pending_path):
                    pending = EdgeFile(
                        pending_path, block_size=self.config.block_size
                    )
                    try:
                        for batch in pending.scan():
                            out.append(batch)
                            total += int(batch.shape[0])
                    finally:
                        pending.close()
                out.flush()
            finally:
                out.close()
            replace_file(staging, gen_graph)
        except BaseException:
            # A torn merge must not masquerade as a generation.
            abort_replace(staging, gen_graph)
            raise
        write_metadata(gen_graph, int(meta["num_nodes"]), total)
        return gen_graph

    def _build_generation(self, graph_path: str, generation: int) -> ServiceSnapshot:
        return build_snapshot(
            graph_path,
            algorithm=self.config.algorithm,
            block_size=self.config.block_size,
            checkpoint_dir=self._ckpt_dir(generation),
            resume=True,
            fault_plan=self.config.fault_plan,
            time_limit=self.config.rebuild_time_limit,
            metrics=self.registry,
            workers=self.config.workers,
            num_traversals=self.config.num_traversals,
            seed=self.config.seed,
            generation=generation,
        )

    def _cleanup_generation(
        self, old_generation: int, pending_path: Optional[str]
    ) -> None:
        """Drop service-owned files of superseded generations."""
        victims = []
        if pending_path:
            victims.append(pending_path)
        if old_generation >= 0:
            old_graph = self._gen_graph_path(old_generation)
            # Never delete the operator's original graph file — only
            # merged generations living inside the service root.
            if os.path.dirname(os.path.abspath(old_graph)) == os.path.abspath(
                self.config.root()
            ):
                victims.extend([old_graph, old_graph + ".meta"])
            victims.append(self._labels_path(old_generation))
        for path in victims:
            try:
                if os.path.exists(path):
                    os.remove(path)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # network plane
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return
            with self._conns_lock:
                self._conns.append(conn)
            thread = threading.Thread(
                target=self._connection_loop, args=(conn,), daemon=True
            )
            thread.start()

    def _connection_loop(self, conn: socket.socket) -> None:
        write_lock = threading.Lock()
        try:
            stream = conn.makefile("rb")
            for frame in read_frames(stream):
                try:
                    request = decode_line(frame)
                    op = validate_request(request)
                except ProtocolError as exc:
                    self._respond(
                        conn,
                        write_lock,
                        error_response(None, exc.code, str(exc)),
                    )
                    continue
                self._dispatch(request, op, conn, write_lock)
        except (OSError, ProtocolError):
            pass
        finally:
            with self._conns_lock:
                if conn in self._conns:
                    self._conns.remove(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _respond(
        self, conn: socket.socket, write_lock: threading.Lock, message: Dict[str, Any]
    ) -> None:
        try:
            data = encode_message(message)
        except ProtocolError:
            data = encode_message(
                error_response(
                    message.get("id"), ErrorCode.INTERNAL, "response too large"
                )
            )
        with write_lock:
            try:
                conn.sendall(data)
            except OSError:
                pass

    def _dispatch(
        self,
        request: Dict[str, Any],
        op: str,
        conn: socket.socket,
        write_lock: threading.Lock,
    ) -> None:
        self._count_request(op)
        request_id = request.get("id")
        if op in _INLINE_OPS:
            self._respond(conn, write_lock, self._handle_inline(request, op))
            if op == "shutdown":
                # The acknowledgement is on the wire; stop from a helper
                # thread so this connection thread is not torn down from
                # under its own dispatch.
                threading.Thread(
                    target=self.stop, name="svc-stop", daemon=True
                ).start()
            return
        # Lifecycle gate before queueing: refusal must be cheap.
        if op in _QUERY_OPS or op == "sleep":
            if self._current_snapshot() is None and op != "sleep":
                self._respond(
                    conn,
                    write_lock,
                    error_response(
                        request_id,
                        ErrorCode.UNAVAILABLE,
                        f"state={self.lifecycle.state.value}: no snapshot "
                        f"resident yet",
                    ),
                )
                return
        elif op == "ingest":
            if not self.lifecycle.can_ingest():
                state = self.lifecycle.state
                code = (
                    ErrorCode.READ_ONLY
                    if state is ServiceState.READ_ONLY
                    else ErrorCode.UNAVAILABLE
                )
                detail = self.lifecycle.last_error
                self._respond(
                    conn,
                    write_lock,
                    error_response(
                        request_id,
                        code,
                        f"mutations refused in state {state.value}"
                        + (f": {detail}" if detail else ""),
                    ),
                )
                return
        elif op == "rebuild":
            try:
                result = self._request_rebuild()
            except ProtocolError as exc:
                self._respond(
                    conn, write_lock, error_response(request_id, exc.code, str(exc))
                )
                return
            self._respond(
                conn, write_lock, ok_response(request_id, result, stale=self._stale)
            )
            return

        # Shed fast-path: past high water the request never queues.
        if self._queue.qsize() >= self.config.high_water:
            self._shed(conn, write_lock, request_id)
            return
        deadline_ms = request_deadline_ms(
            request, self.config.default_deadline_ms, self.config.max_deadline_ms
        )
        expiry = time.monotonic() + deadline_ms / 1000.0
        try:
            self._queue.put_nowait((request, (conn, write_lock), expiry))
        except queue.Full:
            self._shed(conn, write_lock, request_id)

    def _shed(
        self, conn: socket.socket, write_lock: threading.Lock, request_id: Any
    ) -> None:
        self._m_shed.inc()
        self._respond(
            conn,
            write_lock,
            error_response(
                request_id,
                ErrorCode.SHED,
                f"request queue at high water "
                f"({self._queue.qsize()}/{self.config.queue_max}); retry with "
                f"backoff",
            ),
        )

    # ------------------------------------------------------------------
    # worker plane
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            request, (conn, write_lock), expiry = item
            started = time.monotonic()
            request_id = request.get("id")
            remaining = expiry - started
            if remaining <= 0:
                self._m_deadline.inc()
                self._respond(
                    conn,
                    write_lock,
                    error_response(
                        request_id,
                        ErrorCode.DEADLINE_EXCEEDED,
                        "deadline expired while queued",
                    ),
                )
                continue
            op = request["op"]
            deadline = Deadline(f"service.{op}", remaining)
            try:
                result = self._execute(request, op, deadline)
                response = ok_response(request_id, result, stale=self._stale)
            except AlgorithmTimeout:
                self._m_deadline.inc()
                response = error_response(
                    request_id,
                    ErrorCode.DEADLINE_EXCEEDED,
                    f"deadline of {int((expiry - started) * 1000)}ms exceeded "
                    f"during execution",
                )
            except ProtocolError as exc:
                response = error_response(request_id, exc.code, str(exc))
            except ValueError as exc:
                code = (
                    ErrorCode.OUT_OF_RANGE
                    if "out of range" in str(exc)
                    else ErrorCode.BAD_REQUEST
                )
                response = error_response(request_id, code, str(exc))
            except Exception as exc:  # noqa: BLE001 - a worker never dies
                response = error_response(
                    request_id, ErrorCode.INTERNAL, f"{type(exc).__name__}: {exc}"
                )
            self._m_latency.observe(time.monotonic() - started)
            self._respond(conn, write_lock, response)

    def _execute(
        self, request: Dict[str, Any], op: str, deadline: Deadline
    ) -> Dict[str, Any]:
        if op == "sleep":
            return self._op_sleep(int(request["ms"]), deadline)
        if op == "ingest":
            return self._op_ingest(request["edges"])
        snapshot = self._current_snapshot()
        if snapshot is None:
            raise ProtocolError("no snapshot resident", code=ErrorCode.UNAVAILABLE)
        if op == "reach":
            reachable = snapshot.reaches(
                int(request["u"]), int(request["v"]), check=deadline.check
            )
            return {"reachable": bool(reachable)}
        if op == "scc":
            return snapshot.scc_of(int(request["node"]))
        if op == "members":
            limit = min(
                int(request.get("limit") or self.config.members_limit),
                self.config.members_limit,
            )
            return snapshot.members(int(request["scc"]), limit)
        if op == "toposort":
            return snapshot.layer_of(int(request["node"]))
        raise ProtocolError(f"unhandled op {op!r}", code=ErrorCode.INTERNAL)

    @staticmethod
    def _op_sleep(ms: int, deadline: Deadline) -> Dict[str, Any]:
        """Test/drill aid: hold this worker, respecting the deadline."""
        end = time.monotonic() + ms / 1000.0
        while True:
            deadline.check()
            now = time.monotonic()
            if now >= end:
                return {"slept_ms": ms}
            time.sleep(min(0.01, end - now))

    def _op_ingest(self, edges: List[List[int]]) -> Dict[str, Any]:
        snapshot = self._current_snapshot()
        if snapshot is None:
            raise ProtocolError("no snapshot resident", code=ErrorCode.UNAVAILABLE)
        if not self.lifecycle.can_ingest():
            raise ProtocolError(
                f"mutations refused in state {self.lifecycle.state.value}",
                code=ErrorCode.READ_ONLY,
            )
        for u, v in edges:
            if not (0 <= u < snapshot.num_nodes and 0 <= v < snapshot.num_nodes):
                raise ProtocolError(
                    f"edge ({u}, {v}) references a node outside "
                    f"[0, {snapshot.num_nodes})",
                    code=ErrorCode.OUT_OF_RANGE,
                )
        if edges:
            array = np.asarray(edges, dtype=np.uint32).reshape(-1, 2)
            with self._ingest_lock:
                buffer = self._ingest_file()
                buffer.append(array)
                buffer.flush()
            self._pending_edges += len(edges)
            self._g_pending.set(float(self._pending_edges))
        result: Dict[str, Any] = {
            "accepted": len(edges),
            "pending_edges": self._pending_edges,
        }
        if edges and self.config.auto_rebuild:
            try:
                result["rebuild"] = self._request_rebuild()
            except ProtocolError as exc:
                # The edges are durably buffered either way; the caller
                # learns the rebuild itself was refused and why.
                result["rebuild"] = {
                    "scheduled": False,
                    "error": exc.code,
                    "reason": str(exc),
                }
        return result

    # ------------------------------------------------------------------
    # inline ops
    # ------------------------------------------------------------------
    def _handle_inline(self, request: Dict[str, Any], op: str) -> Dict[str, Any]:
        request_id = request.get("id")
        if op == "health":
            return ok_response(request_id, self.health_payload(), stale=self._stale)
        if op == "stats":
            return ok_response(request_id, self.stats_payload(), stale=self._stale)
        return ok_response(request_id, {"stopping": True})

    def health_payload(self) -> Dict[str, Any]:
        """The ``health`` op's body (also fed to ``/healthz``)."""
        snapshot = self._current_snapshot()
        state = self.lifecycle.state
        payload: Dict[str, Any] = {
            "protocol": PROTOCOL_VERSION,
            "state": state.value,
            "ready": snapshot is not None
            and state
            in (
                ServiceState.SERVING,
                ServiceState.DEGRADED_STALE,
                ServiceState.READ_ONLY,
            ),
            "stale": self._stale,
            "generation": snapshot.generation if snapshot else None,
            "fingerprint": snapshot.fingerprint if snapshot else None,
            "num_nodes": snapshot.num_nodes if snapshot else None,
            "num_edges": snapshot.num_edges if snapshot else None,
            "num_sccs": snapshot.num_sccs if snapshot else None,
            "pending_edges": self._pending_edges,
            "queue_depth": self._queue.qsize(),
            "uptime_s": round(time.monotonic() - self._started, 3),
            "seconds_in_state": round(self.lifecycle.seconds_in_state, 3),
            "last_error": self.lifecycle.last_error,
        }
        return payload

    def stats_payload(self) -> Dict[str, Any]:
        """The ``stats`` op's body: robustness tallies + admission."""
        return {
            "shed_total": int(self._m_shed.value),
            "deadline_total": int(self._m_deadline.value),
            "rebuilds_total": int(self._m_rebuilds.value),
            "rebuild_failures_total": int(self._m_rebuild_failures.value),
            "requests_seconds_count": int(self._m_latency.count),
            "admission": {
                "admitted_total": self.admission.admitted_total,
                "rejected_total": self.admission.rejected_total,
                "actual_blocks_total": self.admission.actual_blocks_total,
                "window_used_blocks": self.admission.window_used_blocks,
                "window_quota_blocks": self.admission.window_blocks,
            },
        }
