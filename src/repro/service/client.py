"""A small synchronous client for the SCC query daemon.

Deliberately thin: one socket, one request in flight, raw response
dicts on request so callers (the bench harness, the chaos drill) can
inspect the typed error codes — ``shed`` vs ``deadline_exceeded`` vs
``read_only`` — that the degradation contract distinguishes.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.service.protocol import MAX_LINE_BYTES, decode_line, encode_message


class ServiceError(RuntimeError):
    """A typed error response, surfaced by the convenience helpers."""

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        super().__init__(f"[{code}] {message}")


class ServiceClient:
    """Blocking line-framed JSON client; usable as a context manager."""

    def __init__(self, host: str, port: int, timeout: float = 10.0) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._stream = self._sock.makefile("rb")
        self._next_id = 0

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the socket; safe to call more than once."""
        try:
            self._stream.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """Send one request and return the raw response envelope."""
        self._next_id += 1
        message = {"id": self._next_id, "op": op}
        message.update({k: v for k, v in params.items() if v is not None})
        self._sock.sendall(encode_message(message))
        line = self._stream.readline(MAX_LINE_BYTES + 1)
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_line(line)

    def _result(self, op: str, **params: Any) -> Dict[str, Any]:
        response = self.request(op, **params)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(
                str(error.get("code", "internal")),
                str(error.get("message", "unknown error")),
            )
        return response["result"]

    # ------------------------------------------------------------------
    # convenience helpers (raise ServiceError on typed refusals)
    # ------------------------------------------------------------------
    def reach(
        self, u: int, v: int, deadline_ms: Optional[int] = None
    ) -> bool:
        """True when ``u`` can reach ``v`` through the condensation."""
        return bool(
            self._result("reach", u=u, v=v, deadline_ms=deadline_ms)["reachable"]
        )

    def scc(self, node: int, deadline_ms: Optional[int] = None) -> Dict[str, Any]:
        """SCC id and size of ``node``."""
        return self._result("scc", node=node, deadline_ms=deadline_ms)

    def members(
        self,
        scc: int,
        limit: Optional[int] = None,
        deadline_ms: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Member nodes of component ``scc`` (honestly truncated)."""
        return self._result("members", scc=scc, limit=limit, deadline_ms=deadline_ms)

    def toposort(self, node: int, deadline_ms: Optional[int] = None) -> Dict[str, Any]:
        """Condensation layer of ``node``."""
        return self._result("toposort", node=node, deadline_ms=deadline_ms)

    def ingest(
        self,
        edges: Sequence[Tuple[int, int]],
        deadline_ms: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Durably append ``edges``; reports the rebuild decision."""
        return self._result(
            "ingest",
            edges=[[int(u), int(v)] for u, v in edges],
            deadline_ms=deadline_ms,
        )

    def rebuild(self) -> Dict[str, Any]:
        """Request a background rebuild (admission-controlled)."""
        return self._result("rebuild")

    def health(self) -> Dict[str, Any]:
        """State, generation, fingerprint and queue depth."""
        return self._result("health")

    def stats(self) -> Dict[str, Any]:
        """Shed/deadline/rebuild tallies and the admission window."""
        return self._result("stats")

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to stop (acknowledged first)."""
        return self._result("shutdown")


def wait_until_ready(
    host: str,
    port: int,
    timeout: float = 30.0,
    accept_states: Optional[List[str]] = None,
) -> Dict[str, Any]:
    """Poll ``health`` until the daemon reports ready (or raise).

    Connection refusals while the daemon binds are retried; the last
    health payload is returned so callers can assert on state or
    fingerprint directly.
    """
    states = accept_states
    end = time.monotonic() + timeout
    last: Dict[str, Any] = {}
    while time.monotonic() < end:
        try:
            with ServiceClient(host, port, timeout=2.0) as client:
                last = client.health()
            if last.get("ready") and (states is None or last.get("state") in states):
                return last
        except (OSError, ConnectionError):
            pass
        time.sleep(0.05)
    raise TimeoutError(
        f"daemon at {host}:{port} not ready after {timeout}s "
        f"(last health: {last or 'unreachable'})"
    )
