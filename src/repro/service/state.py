"""The daemon's lifecycle state machine.

Four states, strictly ordered degradation::

    BUILDING ──► SERVING ◄──► DEGRADED_STALE ──► READ_ONLY
        │            ▲                               │
        │            └──────── (rebuild ok) ─────────┘
        └──► READ_ONLY (initial build failed)

* **BUILDING** — no snapshot yet; queries get ``unavailable``.
* **SERVING** — fresh snapshot resident; everything answered.
* **DEGRADED_STALE** — a rebuild is running; queries are answered from
  the last-good snapshot with ``stale: true``; ingest still buffers.
* **READ_ONLY** — a (re)build failed; whatever snapshot exists keeps
  serving, mutations (``ingest``) are refused with ``read_only``, and
  health carries the failure.  A later successful rebuild recovers to
  SERVING — degradation is a ratchet the operator can release, not a
  crash.

Every transition is validated: an illegal one is a bug, and raising
immediately beats serving from a state machine that has silently
wedged.  The holder is thread-safe (builder, workers and connection
threads all consult it) and publishes the current state as the
``repro_service_state`` gauge so the scrape plane sees every change.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry


class ServiceState(enum.Enum):
    """The daemon's externally visible lifecycle states."""

    BUILDING = "building"
    SERVING = "serving"
    DEGRADED_STALE = "degraded_stale"
    READ_ONLY = "read_only"
    STOPPED = "stopped"


#: Numeric encoding for the ``repro_service_state`` gauge (stable,
#: documented in docs/service.md; higher = more degraded, 0 = down).
STATE_CODES: Dict[ServiceState, int] = {
    ServiceState.BUILDING: 1,
    ServiceState.SERVING: 2,
    ServiceState.DEGRADED_STALE: 3,
    ServiceState.READ_ONLY: 4,
    ServiceState.STOPPED: 0,
}

_ALLOWED: Dict[ServiceState, frozenset] = {
    ServiceState.BUILDING: frozenset(
        {ServiceState.SERVING, ServiceState.READ_ONLY, ServiceState.STOPPED}
    ),
    ServiceState.SERVING: frozenset(
        {ServiceState.DEGRADED_STALE, ServiceState.READ_ONLY,
         ServiceState.STOPPED}
    ),
    ServiceState.DEGRADED_STALE: frozenset(
        {ServiceState.SERVING, ServiceState.READ_ONLY, ServiceState.STOPPED}
    ),
    ServiceState.READ_ONLY: frozenset(
        # Recovery: an admitted rebuild that *succeeds* re-arms serving;
        # it may also pass through DEGRADED_STALE while running.
        {ServiceState.SERVING, ServiceState.DEGRADED_STALE,
         ServiceState.STOPPED}
    ),
    ServiceState.STOPPED: frozenset(),
}


class IllegalTransition(RuntimeError):
    """The lifecycle was asked to make a move the machine forbids."""


class Lifecycle:
    """Thread-safe holder for the current :class:`ServiceState`.

    Also remembers the last build/rebuild error (surfaced by the
    ``health`` op) and mirrors the state into the metrics registry.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._lock = threading.Lock()
        self._state = ServiceState.BUILDING
        self._registry = registry
        self._last_error: Optional[str] = None
        self._since = time.monotonic()
        self._publish(self._state)

    # ------------------------------------------------------------------
    @property
    def state(self) -> ServiceState:
        """The current state (point-in-time read)."""
        with self._lock:
            return self._state

    @property
    def last_error(self) -> Optional[str]:
        """Human-readable cause of the most recent degradation, if any."""
        with self._lock:
            return self._last_error

    @property
    def seconds_in_state(self) -> float:
        """How long the current state has been held."""
        with self._lock:
            return time.monotonic() - self._since

    # ------------------------------------------------------------------
    def transition(
        self, target: ServiceState, error: Optional[str] = None
    ) -> None:
        """Move to ``target``, validating against the machine.

        ``error`` records the degradation cause (kept until the next
        transition *away* from a degraded state clears it).
        """
        with self._lock:
            if target is self._state:
                if error is not None:
                    self._last_error = error
                return
            if target not in _ALLOWED[self._state]:
                raise IllegalTransition(
                    f"illegal lifecycle transition "
                    f"{self._state.value} -> {target.value}"
                )
            self._state = target
            self._since = time.monotonic()
            if error is not None:
                self._last_error = error
            elif target in (ServiceState.SERVING, ServiceState.BUILDING):
                self._last_error = None
        self._publish(target)

    def _publish(self, state: ServiceState) -> None:
        if self._registry is not None:
            self._registry.gauge(
                "repro_service_state",
                "lifecycle state (1=building 2=serving 3=degraded_stale "
                "4=read_only 0=stopped)",
            ).set(float(STATE_CODES[state]))

    # ------------------------------------------------------------------
    # capability queries — what each state permits
    # ------------------------------------------------------------------
    def can_query(self) -> bool:
        """Whether read queries may be answered (a snapshot permitting)."""
        return self.state in (
            ServiceState.SERVING,
            ServiceState.DEGRADED_STALE,
            ServiceState.READ_ONLY,
        )

    def can_ingest(self) -> bool:
        """Whether mutations are accepted."""
        return self.state in (
            ServiceState.SERVING,
            ServiceState.DEGRADED_STALE,
        )
