"""The line-framed JSON protocol of the SCC query daemon.

One request per line, one response per line, UTF-8 JSON with a trailing
``\\n`` — trivially scriptable (``nc``, a five-line client in any
language) and trivially fuzzable.  Requests carry an ``op``, a
client-chosen ``id`` (echoed back verbatim so clients may pipeline),
optional ``deadline_ms``, and op-specific parameters::

    {"id": 1, "op": "reach", "u": 4, "v": 17, "deadline_ms": 250}
    {"id": 1, "ok": true, "stale": false, "result": {"reachable": true}}

Responses are ``{"id", "ok": true, "stale", "result"}`` or
``{"id", "ok": false, "error": {"code", "message"}}``.  The error codes
are the degradation contract (see ``docs/service.md``): a client can
tell *why* it was refused — queue overload (``shed``), budget expiry
(``deadline_exceeded``), admission control (``admission_rejected``),
lifecycle (``unavailable``/``read_only``) — and pick the right retry
behaviour for each.

This module is pure data plumbing: no sockets, no threads, so it is
exhaustively unit-testable without a running server.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, Optional

from repro.exceptions import ReproError

#: Protocol schema version, echoed by the ``health`` op.
PROTOCOL_VERSION = 1

#: Hard cap on one framed line; longer requests are malformed by fiat
#: (a bound, like every queue in this tree, so hostile input cannot
#: buffer without limit).
MAX_LINE_BYTES = 1 << 20

#: Every operation the daemon understands.
OPS = frozenset(
    {
        "reach",      # u -> v reachability through the condensation
        "scc",        # SCC id + size of one node
        "members",    # node ids of one SCC (capped by ``limit``)
        "toposort",   # topological layer of one node's SCC
        "ingest",     # append edges; may trigger a background rebuild
        "rebuild",    # explicitly request a rebuild (admission-controlled)
        "health",     # lifecycle state, fingerprint, staleness
        "stats",      # request/shed/rebuild tallies
        "sleep",      # test/drill aid: hold a worker for N ms
        "shutdown",   # graceful stop
    }
)


class ErrorCode:
    """The distinct refusal reasons of the degradation contract."""

    BAD_REQUEST = "bad_request"
    UNAVAILABLE = "unavailable"            # no snapshot yet (BUILDING)
    DEADLINE_EXCEEDED = "deadline_exceeded"
    SHED = "shed"                          # queue over high water
    READ_ONLY = "read_only"                # mutations refused after failure
    ADMISSION_REJECTED = "admission_rejected"
    OUT_OF_RANGE = "out_of_range"          # node/scc id outside the graph
    INTERNAL = "internal"

    ALL = frozenset(
        {
            "bad_request", "unavailable", "deadline_exceeded", "shed",
            "read_only", "admission_rejected", "out_of_range", "internal",
        }
    )


class ProtocolError(ReproError):
    """A malformed or unserviceable request, with its protocol code."""

    def __init__(self, message: str, code: str = ErrorCode.BAD_REQUEST) -> None:
        self.code = code
        super().__init__(message)


def encode_message(message: Dict[str, Any]) -> bytes:
    """Serialize one message to its wire form (JSON + ``\\n``)."""
    line = json.dumps(message, separators=(",", ":"), sort_keys=True)
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"message of {len(data)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte frame cap"
        )
    return data


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one wire frame into a request dict."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte cap"
        )
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("requests must be JSON objects")
    return payload


def ok_response(
    request_id: Any, result: Dict[str, Any], stale: bool = False
) -> Dict[str, Any]:
    """Build a success response envelope."""
    return {"id": request_id, "ok": True, "stale": bool(stale),
            "result": result}


def error_response(
    request_id: Any, code: str, message: str
) -> Dict[str, Any]:
    """Build an error response envelope."""
    if code not in ErrorCode.ALL:
        code = ErrorCode.INTERNAL
    return {"id": request_id, "ok": False,
            "error": {"code": code, "message": message}}


def _require_int(request: Dict[str, Any], key: str) -> int:
    value = request.get(key)
    # bool is an int subclass; a JSON ``true`` must not pass as node 1.
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"field {key!r} must be an integer")
    return value


def validate_request(request: Dict[str, Any]) -> str:
    """Validate shape and types; return the op name.

    Raises :class:`ProtocolError` (code ``bad_request``) with a message
    naming the offending field — never an index fault, whatever the
    client sends.
    """
    op = request.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {sorted(OPS)}"
        )
    deadline = request.get("deadline_ms")
    if deadline is not None and (
        isinstance(deadline, bool)
        or not isinstance(deadline, int)
        or deadline <= 0
    ):
        raise ProtocolError("deadline_ms must be a positive integer")
    if op == "reach":
        _require_int(request, "u")
        _require_int(request, "v")
    elif op in ("scc", "toposort"):
        _require_int(request, "node")
    elif op == "members":
        _require_int(request, "scc")
        limit = request.get("limit")
        if limit is not None and (
            isinstance(limit, bool) or not isinstance(limit, int) or limit <= 0
        ):
            raise ProtocolError("limit must be a positive integer")
    elif op == "sleep":
        _require_int(request, "ms")
    elif op == "ingest":
        edges = request.get("edges")
        if not isinstance(edges, list):
            raise ProtocolError("field 'edges' must be a list of [u, v] pairs")
        for pair in edges:
            if (
                not isinstance(pair, (list, tuple))
                or len(pair) != 2
                or any(isinstance(x, bool) or not isinstance(x, int)
                       for x in pair)
            ):
                raise ProtocolError(
                    "each ingested edge must be a [u, v] integer pair"
                )
    return op


def read_frames(stream: Any) -> Iterator[bytes]:
    """Yield newline-terminated frames from a binary file-like object.

    Stops cleanly at EOF.  Over-long frames raise
    :class:`ProtocolError` — ``readline`` is capped so a client cannot
    make the server buffer an unbounded line.
    """
    while True:
        line = stream.readline(MAX_LINE_BYTES + 1)
        if not line:
            return
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError("frame exceeds the line cap")
        if line.strip():
            yield line


def request_deadline_ms(
    request: Dict[str, Any], default_ms: int, max_ms: int
) -> int:
    """The effective deadline for a validated request, clamped to bounds."""
    deadline = request.get("deadline_ms")
    if deadline is None:
        deadline = default_ms
    return max(1, min(int(deadline), max_ms))
