"""The scalar scan-kernel backend: the paper-literal per-edge loops.

These are the seed implementations' inner loops, moved here unchanged.
They define the reference semantics the vector backend must reproduce
decision-for-decision, and they are the one sanctioned home for
per-edge ``int()``/``.tolist()`` boxing inside scan loops (static rule
CPU001 exempts this module).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.base import Deadline
    from repro.spanning.brtree import BRPlusTree
    from repro.spanning.tree import ContractibleTree
    from repro.spanning.unionfind import DisjointSet

from repro.kernels.base import ScanKernels


class ScalarKernels(ScanKernels):
    """Per-edge reference loops with O(depth) ancestor walks."""

    name = "scalar"

    def one_phase_scan(
        self, tree: "ContractibleTree", pairs: np.ndarray
    ) -> Tuple[int, int, int]:
        early_accepts = 0
        pushdowns = 0
        largest = 0
        for u, v in pairs.tolist():
            ru = tree.find(u)
            rv = tree.find(v)
            if ru == rv or not (tree.live[ru] and tree.live[rv]):
                continue
            if tree.depth[ru] < tree.depth[rv]:
                continue  # reshaped since the prefilter
            if tree.is_ancestor(rv, ru):
                rep = tree.contract_path(ru, rv)
                size = tree.ds.set_size(rep)
                if size > largest:
                    largest = size
                early_accepts += 1
            else:
                tree.pushdown(ru, rv)
                pushdowns += 1
        self.bump("kernel-scalar-edges", int(pairs.shape[0]))
        return early_accepts, pushdowns, largest

    def construction_scan(
        self, tree: "BRPlusTree", us: np.ndarray, vs: np.ndarray
    ) -> Tuple[bool, int, int]:
        updated = False
        pushdowns = 0
        backward_links = 0
        for u, v in np.column_stack((us, vs)).tolist():
            if tree.depth[u] < tree.depth[v]:
                if tree.is_ancestor(u, v):
                    continue  # forward edge
            elif tree.is_ancestor(v, u):
                # Backward edge: update-drank bookkeeping keeps the
                # shallowest backward target per node.
                if tree.offer_blink(u, v):
                    backward_links += 1
                continue
            # No ancestor/descendant relationship: up-edge test.
            if tree.drank[u] >= tree.drank[v]:
                # dlink(v) is where v's supernode would sit had its
                # cycle-chain been contracted (1P-SCC's view).
                w = int(tree.dlink[v])
                if tree.is_ancestor(w, u):
                    # u is on a cycle through v's chain: replace the
                    # up-edge by the backward link (u, dlink(v)) —
                    # Fig. 5's move.
                    if tree.offer_blink(u, w):
                        updated = True
                        backward_links += 1
                elif tree.depth[u] >= tree.depth[w]:
                    # Eliminate the up-edge by pushing down the whole
                    # chain top: depth(w) strictly increases, which
                    # is what bounds the construction by depth(G)
                    # iterations (Lemma 6.1).  (The depth guard only
                    # skips moves based on stale drank values; they
                    # are retried next scan.)
                    tree.pushdown(u, w)
                    updated = True
                    pushdowns += 1
        self.bump("kernel-scalar-edges", int(us.shape[0]))
        return updated, pushdowns, backward_links

    def search_scan(self, tree: "BRPlusTree", pairs: np.ndarray) -> int:
        contractions = 0
        for u, v in pairs.tolist():
            ru = tree.find(u)
            rv = tree.find(v)
            if ru != rv and tree.is_ancestor(rv, ru):
                tree.contract_path(ru, rv)
                contractions += 1
        self.bump("kernel-scalar-edges", int(pairs.shape[0]))
        return contractions

    def dfs_scan(
        self, tree: Any, batch: np.ndarray, deadline: "Deadline"
    ) -> int:
        reparents = 0
        for u, v in batch.tolist():
            if u == v or tree.parent[v] == u:
                continue
            if tree.depth[u] < tree.depth[v]:
                if tree.is_ancestor(u, v):
                    continue  # forward edge
            elif tree.is_ancestor(v, u):
                continue  # backward edge
            if tree.pre[u] < tree.pre[v]:
                # Forward-cross-edge: re-hang v under u, then redo
                # the preorder immediately — the per-update
                # renumbering the paper identifies as DFS-SCC's
                # Cost-3 (Fig. 3).  Ranks before pre(u) are
                # unaffected, so the renumbering skips them.
                tree.reparent(v, u)
                tree.assign_preorder(pivot=int(tree.pre[u]))
                reparents += 1
                # Each move renumbers up to O(n) ranks, so the
                # wall-clock budget is re-checked per move.
                deadline.check()
            # backward-cross-edges are ignored.
        self.bump("kernel-scalar-edges", int(batch.shape[0]))
        return reparents

    def absorb_members(
        self,
        ds: "DisjointSet",
        live: np.ndarray,
        members: np.ndarray,
        rep: int,
    ) -> int:
        count = 0
        for member in members.tolist():
            ds.union_into(int(member), rep)
            live[int(member)] = False
            count += 1
        return count

    def compact_pairs(
        self, us: np.ndarray, vs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        nodes = np.unique(np.concatenate([us, vs]))
        comp = {int(node): index for index, node in enumerate(nodes.tolist())}
        comp_edges = np.column_stack(
            (
                [comp[int(u)] for u in us.tolist()],
                [comp[int(v)] for v in vs.tolist()],
            )
        )
        return nodes, comp_edges
