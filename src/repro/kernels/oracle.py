"""Epoch-cached Euler-tour ancestor oracle.

The scalar ``is_ancestor(a, d)`` of the spanning structures walks parent
pointers from ``d`` upward — O(depth) per query.  This module replaces
the walk, for *batched* queries, with the classical Euler-tour interval
test: a DFS over the live forest assigns each node an entry counter
``tin`` and an exit bound ``tout`` (the counter advances on entry only),
after which

    ``is_ancestor(a, d)  ⇔  tin[a] <= tin[d] < tout[a]``

— two array compares, O(1) per query and trivially vectorisable.  The
test is *ancestor-or-equal*, matching the walk's semantics
(``is_ancestor(a, a)`` is True because ``tout[a] > tin[a]``).

Soundness across mutations
--------------------------
The labels describe a snapshot.  The host trees (``ContractibleTree``,
``BRPlusTree``, DFS-SCC's ``_DFSTree``) version their structure with an
``epoch`` counter and, once :attr:`~AncestorOracle.refresh` has switched
``track_dirty`` on, mark every node whose root path, depth or liveness
may have changed in a ``dirty`` bitmap.  A node left clean is guaranteed
unchanged in all three respects, so snapshot answers involving only
clean nodes stay valid arbitrarily long after the snapshot; the vector
kernels fall back to the live scalar walk whenever a dirty node is
involved.

Rebuild amortisation
--------------------
Rebuilding is an O(live) Python DFS, so it must not happen per batch.
:meth:`refresh` rebuilds only when the tree's epoch moved *and* the
dirty population crossed ``max(rebuild_min_dirty, rebuild_fraction ×
live)`` — between rebuilds the kernels keep serving the stale-but-clean
snapshot and eat the dirty fallbacks, which is exactly the amortisation
the batch sizes pay for.
"""

from __future__ import annotations

from typing import Any

import numpy as np


class AncestorOracle:
    """Euler-tour ``tin``/``tout`` interval labels for one host tree.

    The host is duck-typed: it must expose ``n``, ``epoch``, ``dirty``,
    ``track_dirty``, ``parent``-driven ``children`` containers and an
    ``oracle_roots()`` iterator over live forest roots.  Dead nodes keep
    ``tin = tout = -1``, so every interval test involving one is
    deterministically False.
    """

    #: Rebuild when the dirty population exceeds this fraction of the
    #: live node count.  Tuned on the fig12-style webspam stand-in
    #: (``benchmarks/bench_kernels.py``): a rebuild is an O(live) Python
    #: DFS (~16 ms at 26k live nodes) while every avoided dirty-chain
    #: hop in the fallback walks is pure profit, so rebuilding eagerly
    #: wins by a wide margin — 0.25 gave 1.04x over scalar where 0.01
    #: gives ~9x.
    rebuild_fraction: float = 0.01
    #: ... but never bother re-walking the forest for fewer dirty nodes
    #: than this (the hybrid fallbacks are cheaper).
    rebuild_min_dirty: int = 64

    def __init__(self, n: int) -> None:
        self.n = n
        self.tin = np.full(n, -1, dtype=np.int64)
        self.tout = np.full(n, -1, dtype=np.int64)
        #: Tree epoch the labels were built at; ``-1`` = never built.
        self.built_epoch = -1
        #: Total label rebuilds (surfaced as the ``oracle-rebuilds``
        #: kernel counter).
        self.rebuilds = 0

    # ------------------------------------------------------------------
    def refresh(self, tree: Any) -> bool:
        """Bring the labels up to date if the amortisation policy says so.

        Returns True when a rebuild happened.  The first call always
        rebuilds (and switches the host's dirty tracking on); later
        calls rebuild only once enough dirt has accumulated — see the
        module docstring.
        """
        epoch = tree.epoch
        if self.built_epoch == epoch:
            return False
        if self.built_epoch >= 0:
            dirty_count = int(np.count_nonzero(tree.dirty))
            live = getattr(tree, "live", None)
            live_count = int(np.count_nonzero(live)) if live is not None else tree.n
            threshold = max(
                self.rebuild_min_dirty, int(self.rebuild_fraction * live_count)
            )
            if dirty_count <= threshold:
                return False
        self._rebuild(tree)
        return True

    def _rebuild(self, tree: Any) -> None:
        tin = self.tin
        tout = self.tout
        tin.fill(-1)
        tout.fill(-1)
        children = tree.children
        t = 0
        # Iterative Euler DFS; ``~node`` on the stack marks the exit
        # event for ``node`` (bitwise-not is its own inverse and keeps
        # valid ids >= 0 distinct from markers < 0).
        for root in tree.oracle_roots():
            stack = [root]
            while stack:
                node = stack.pop()
                if node < 0:
                    tout[~node] = t
                    continue
                tin[node] = t
                t += 1
                stack.append(~node)
                stack.extend(children[node])
        tree.dirty[:] = False
        tree.track_dirty = True
        self.built_epoch = tree.epoch
        self.rebuilds += 1

    # ------------------------------------------------------------------
    def export(self, into: Any = None) -> Any:
        """Snapshot the labels; ``into`` reuses caller-owned buffers.

        Without ``into`` this allocates a fresh ``(tin, tout)`` copy per
        call — fine for one-off consumers, wasteful for a publisher that
        re-exports every epoch.  Passing ``into=(tin_buf, tout_buf)``
        copies into those arrays instead (any int64 buffers of length
        ``n``, including shared-memory views — this is what the
        :mod:`repro.parallel` snapshot publisher uses) and returns them.
        """
        if into is None:
            return self.tin.copy(), self.tout.copy()
        tin_buf, tout_buf = into
        np.copyto(tin_buf, self.tin)
        np.copyto(tout_buf, self.tout)
        return tin_buf, tout_buf

    # ------------------------------------------------------------------
    def is_ancestor_many(self, anc: np.ndarray, desc: np.ndarray) -> np.ndarray:
        """Vectorised ancestor-or-equal test over parallel node arrays."""
        tin_a = self.tin[anc]
        tin_d = self.tin[desc]
        return (tin_a <= tin_d) & (tin_d < self.tout[anc])

    def is_ancestor(self, a: int, d: int) -> bool:
        """Scalar interval test (snapshot semantics; used by tests)."""
        return bool(self.tin[a] <= self.tin[d] < self.tout[a])
