"""Scan kernels: interchangeable per-batch edge-classification engines.

See :mod:`repro.kernels.base` for the contract.  ``resolve_kernels``
is the single entry point the algorithms/CLI/harness use to map the
user-facing ``--kernels {vector,scalar}`` choice to a backend instance.
"""

from __future__ import annotations

from typing import Dict, Optional, Type, Union

from repro.kernels.base import ScanKernels
from repro.kernels.oracle import AncestorOracle
from repro.kernels.scalar import ScalarKernels
from repro.kernels.vector import VectorKernels

#: Registry of selectable backends, keyed by their CLI names.
KERNELS: Dict[str, Type[ScanKernels]] = {
    ScalarKernels.name: ScalarKernels,
    VectorKernels.name: VectorKernels,
}

#: Backend used when the caller does not choose one.
DEFAULT_KERNELS = VectorKernels.name


def resolve_kernels(
    kernels: Union[str, ScanKernels, None] = None,
) -> ScanKernels:
    """Resolve a kernels choice to a fresh (or caller-owned) backend.

    Accepts a registry name (``"vector"``/``"scalar"``), ``None`` (the
    default backend), or an already-constructed :class:`ScanKernels`
    instance (passed through, for tests that want to inspect counters).
    """
    if kernels is None:
        kernels = DEFAULT_KERNELS
    if isinstance(kernels, ScanKernels):
        return kernels
    try:
        factory = KERNELS[kernels]
    except KeyError:
        raise ValueError(
            f"unknown kernels {kernels!r}; expected one of {sorted(KERNELS)}"
        ) from None
    return factory()


__all__ = [
    "AncestorOracle",
    "DEFAULT_KERNELS",
    "KERNELS",
    "ScalarKernels",
    "ScanKernels",
    "VectorKernels",
    "resolve_kernels",
]
