"""The vectorised scan-kernel backend.

Batched edge classification against a frozen tree snapshot: each batch
is classified in one shot with numpy — ``find_many`` roots, vectorised
depth compares, and the Euler-tour interval test of
:class:`~repro.kernels.oracle.AncestorOracle` in place of per-edge
parent walks.  Mutations are then applied in batch order, and only the
edges *invalidated by those mutations* (an endpoint marked dirty) are
re-derived with the seed scalar logic — whose own ancestor walks are
shortened by :func:`_hybrid_is_ancestor`, which climbs only the dirty
suffix of a root path before finishing with one snapshot interval test.

Equivalence argument (pinned by ``tests/test_kernels_classify.py`` and
the golden gate): a pair whose nodes are all clean at apply time has
had no change to any involved root path, depth or liveness since the
snapshot — so the prefilter facts still hold (distinct live
representatives, depth ordering) and the snapshot interval verdicts
equal what the live walks would return.  The fast path therefore takes
exactly the branch the scalar loop would; every other pair takes the
scalar loop itself.  Decisions happen in identical order either way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.base import Deadline
    from repro.spanning.brtree import BRPlusTree
    from repro.spanning.tree import ContractibleTree
    from repro.spanning.unionfind import DisjointSet

from repro.constants import VIRTUAL_ROOT
from repro.kernels.base import ScanKernels
from repro.kernels.oracle import AncestorOracle


def _hybrid_is_ancestor(tree: Any, oracle: AncestorOracle, a: int, d: int) -> bool:
    """Live ancestor-or-equal test that exits into the snapshot early.

    Equivalent to ``tree.is_ancestor(a, d)`` but climbs parent pointers
    only while inside the *dirty* region: at the first clean node ``c``
    met (with ``depth(c) > depth(a)``) the answer is the snapshot
    verdict ``a ∈ path(c)``.  Soundness: ``c`` clean means c's entire
    root path is unchanged since the snapshot, so membership of any
    node in that path is unchanged too; and because live depths strictly
    decrease along a root path, the depth-bounded walk from ``c`` finds
    ``a`` iff ``a`` is on that path.  This turns the dirty-fallback's
    O(depth) walk into O(dirty-suffix) + one interval test.
    """
    depth = tree.depth
    parent = tree.parent
    dirty = tree.dirty
    tin = oracle.tin
    tout = oracle.tout
    target = depth[a]
    node = d
    while node != VIRTUAL_ROOT and depth[node] > target:
        if not dirty[node]:
            return bool(tin[a] <= tin[node] < tout[a])
        node = int(parent[node])
    return node == a


class VectorKernels(ScanKernels):
    """Snapshot-vectorised classification with scalar dirty fallback."""

    name = "vector"

    def __init__(self) -> None:
        super().__init__()
        # One oracle per host tree; the tree reference guards against
        # id() reuse after a host is garbage collected.
        self._oracles: Dict[int, Tuple[Any, AncestorOracle]] = {}

    def _oracle(self, tree: Any) -> AncestorOracle:
        key = id(tree)
        entry = self._oracles.get(key)
        if entry is None or entry[0] is not tree:
            entry = (tree, AncestorOracle(tree.n))
            self._oracles[key] = entry
        return entry[1]

    def _refresh(self, tree: Any) -> AncestorOracle:
        oracle = self._oracle(tree)
        if oracle.refresh(tree):
            self.bump("oracle-rebuilds", 1)
        return oracle

    # ------------------------------------------------------------------
    def one_phase_scan(
        self, tree: "ContractibleTree", pairs: np.ndarray
    ) -> Tuple[int, int, int]:
        oracle = self._refresh(tree)
        us = pairs[:, 0]
        vs = pairs[:, 1]
        # Snapshot verdicts; valid wherever both nodes are still clean.
        backward = oracle.is_ancestor_many(vs, us).tolist()
        stale = (tree.dirty[us] | tree.dirty[vs]).tolist()
        us_l = us.tolist()
        vs_l = vs.tolist()
        dirty = tree.dirty
        ds = tree.ds
        early_accepts = 0
        pushdowns = 0
        largest = 0
        fast = 0
        fallbacks = 0
        mutated = False  # this batch's own mutations re-dirty live state
        for i in range(len(us_l)):
            u = us_l[i]
            v = vs_l[i]
            if stale[i] or (mutated and (dirty[u] or dirty[v])):
                fallbacks += 1
                ru = tree.find(u)
                rv = tree.find(v)
                if ru == rv or not (tree.live[ru] and tree.live[rv]):
                    continue
                if tree.depth[ru] < tree.depth[rv]:
                    continue  # reshaped since the prefilter
                if _hybrid_is_ancestor(tree, oracle, rv, ru):
                    rep = tree.contract_path(ru, rv)
                    size = ds.set_size(rep)
                    if size > largest:
                        largest = size
                    early_accepts += 1
                else:
                    tree.pushdown(ru, rv)
                    pushdowns += 1
                mutated = True
                continue
            fast += 1
            if backward[i]:
                rep = tree.contract_path(u, v)
                size = ds.set_size(rep)
                if size > largest:
                    largest = size
                early_accepts += 1
            else:
                tree.pushdown(u, v)
                pushdowns += 1
            mutated = True
        self.bump("kernel-fast-path", fast)
        self.bump("kernel-fallbacks", fallbacks)
        return early_accepts, pushdowns, largest

    # ------------------------------------------------------------------
    def construction_scan(
        self, tree: "BRPlusTree", us: np.ndarray, vs: np.ndarray
    ) -> Tuple[bool, int, int]:
        oracle = self._refresh(tree)
        depth = tree.depth
        # drank/dlink are frozen for the whole scan (update-drank runs
        # between scans), so these reads hold for dirty pairs too.
        ws = tree.dlink[vs]
        u_below = (depth[us] < depth[vs]).tolist()
        u_deep_enough = (depth[us] >= depth[ws]).tolist()
        drank_ok = (tree.drank[us] >= tree.drank[vs]).tolist()
        anc_uv = oracle.is_ancestor_many(us, vs).tolist()
        anc_vu = oracle.is_ancestor_many(vs, us).tolist()
        anc_wu = oracle.is_ancestor_many(ws, us).tolist()
        stale = (tree.dirty[us] | tree.dirty[vs] | tree.dirty[ws]).tolist()
        us_l = us.tolist()
        vs_l = vs.tolist()
        ws_l = ws.tolist()
        dirty = tree.dirty
        updated = False
        pushdowns = 0
        backward_links = 0
        fast = 0
        fallbacks = 0
        mutated = False
        for i in range(len(us_l)):
            u = us_l[i]
            v = vs_l[i]
            if stale[i] or (
                mutated and (dirty[u] or dirty[v] or dirty[ws_l[i]])
            ):
                fallbacks += 1
                if tree.depth[u] < tree.depth[v]:
                    if _hybrid_is_ancestor(tree, oracle, u, v):
                        continue  # forward edge
                elif _hybrid_is_ancestor(tree, oracle, v, u):
                    if tree.offer_blink(u, v):
                        backward_links += 1
                    continue
                if tree.drank[u] >= tree.drank[v]:
                    w = int(tree.dlink[v])
                    if _hybrid_is_ancestor(tree, oracle, w, u):
                        if tree.offer_blink(u, w):
                            updated = True
                            backward_links += 1
                    elif tree.depth[u] >= tree.depth[w]:
                        tree.pushdown(u, w)
                        updated = True
                        pushdowns += 1
                        mutated = True
                continue
            fast += 1
            if u_below[i]:
                if anc_uv[i]:
                    continue  # forward edge
            elif anc_vu[i]:
                if tree.offer_blink(u, v):
                    backward_links += 1
                continue
            if drank_ok[i]:
                w = ws_l[i]
                if anc_wu[i]:
                    if tree.offer_blink(u, w):
                        updated = True
                        backward_links += 1
                elif u_deep_enough[i]:
                    tree.pushdown(u, w)
                    updated = True
                    pushdowns += 1
                    mutated = True
        self.bump("kernel-fast-path", fast)
        self.bump("kernel-fallbacks", fallbacks)
        return updated, pushdowns, backward_links

    # ------------------------------------------------------------------
    def search_scan(self, tree: "BRPlusTree", pairs: np.ndarray) -> int:
        oracle = self._refresh(tree)
        us = pairs[:, 0]
        vs = pairs[:, 1]
        backward = oracle.is_ancestor_many(vs, us).tolist()
        stale = (tree.dirty[us] | tree.dirty[vs]).tolist()
        us_l = us.tolist()
        vs_l = vs.tolist()
        dirty = tree.dirty
        contractions = 0
        fast = 0
        fallbacks = 0
        mutated = False
        for i in range(len(us_l)):
            u = us_l[i]
            v = vs_l[i]
            if stale[i] or (mutated and (dirty[u] or dirty[v])):
                fallbacks += 1
                ru = tree.find(u)
                rv = tree.find(v)
                if ru != rv and _hybrid_is_ancestor(tree, oracle, rv, ru):
                    tree.contract_path(ru, rv)
                    contractions += 1
                    mutated = True
                continue
            fast += 1
            if backward[i]:
                tree.contract_path(u, v)
                contractions += 1
                mutated = True
        self.bump("kernel-fast-path", fast)
        self.bump("kernel-fallbacks", fallbacks)
        return contractions

    # ------------------------------------------------------------------
    def dfs_scan(
        self, tree: Any, batch: np.ndarray, deadline: "Deadline"
    ) -> int:
        oracle = self._refresh(tree)
        us = batch[:, 0].astype(np.int64)
        vs = batch[:, 1].astype(np.int64)
        # No prefilter: which edges are skippable depends on the tree,
        # which mutates mid-batch.  The snapshot only replaces the two
        # ancestor walks; self-loop/tree-edge/preorder tests stay live.
        u_below = (tree.depth[us] < tree.depth[vs]).tolist()
        anc_uv = oracle.is_ancestor_many(us, vs).tolist()
        anc_vu = oracle.is_ancestor_many(vs, us).tolist()
        stale = (tree.dirty[us] | tree.dirty[vs]).tolist()
        us_l = us.tolist()
        vs_l = vs.tolist()
        dirty = tree.dirty
        parent = tree.parent
        pre = tree.pre
        reparents = 0
        fast = 0
        fallbacks = 0
        mutated = False
        for i in range(len(us_l)):
            u = us_l[i]
            v = vs_l[i]
            if u == v or parent[v] == u:
                continue
            if stale[i] or (mutated and (dirty[u] or dirty[v])):
                fallbacks += 1
                if tree.depth[u] < tree.depth[v]:
                    if _hybrid_is_ancestor(tree, oracle, u, v):
                        continue  # forward edge
                elif _hybrid_is_ancestor(tree, oracle, v, u):
                    continue  # backward edge
            else:
                fast += 1
                if u_below[i]:
                    if anc_uv[i]:
                        continue  # forward edge
                elif anc_vu[i]:
                    continue  # backward edge
            if pre[u] < pre[v]:
                # Forward-cross-edge: re-hang v under u and renumber
                # (ranks before pre(u) are unaffected).
                tree.reparent(v, u)
                tree.assign_preorder(pivot=int(tree.pre[u]))
                reparents += 1
                mutated = True
                # Each move renumbers up to O(n) ranks, so the
                # wall-clock budget is re-checked per move.
                deadline.check()
            # backward-cross-edges are ignored.
        self.bump("kernel-fast-path", fast)
        self.bump("kernel-fallbacks", fallbacks)
        return reparents

    # ------------------------------------------------------------------
    def absorb_members(
        self,
        ds: "DisjointSet",
        live: np.ndarray,
        members: np.ndarray,
        rep: int,
    ) -> int:
        if members.size == 0:
            return 0
        absorbed = members.astype(np.int64, copy=False)
        ds.union_many_into(absorbed, rep)
        live[absorbed] = False
        return int(absorbed.size)

    def compact_pairs(
        self, us: np.ndarray, vs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        # np.unique sorts, and the scalar kernel's dict enumerates the
        # same sorted array — identical node -> index mapping.
        nodes, inverse = np.unique(
            np.concatenate([us, vs]), return_inverse=True
        )
        k = us.shape[0]
        comp_edges = np.column_stack(
            (inverse[:k].astype(np.int64), inverse[k:].astype(np.int64))
        )
        return nodes, comp_edges
