"""The scan-kernel interface shared by the scalar and vector backends.

A *scan kernel* is the per-batch inner engine of an edge scan: the
algorithms (1P, 1PB, 2P, DFS-SCC, EM-SCC) stream edge batches off disk,
prefilter them with numpy, and hand the surviving work to one of these
objects.  Two interchangeable backends exist:

* :class:`~repro.kernels.scalar.ScalarKernels` — the paper-literal
  per-edge loops with O(depth) parent-pointer ancestor walks.  This is
  the reference semantics and the one sanctioned home for per-edge
  ``int()``/``.tolist()`` boxing (static rule CPU001).
* :class:`~repro.kernels.vector.VectorKernels` — batched edge
  classification against a frozen tree snapshot: an epoch-cached
  Euler-tour :class:`~repro.kernels.oracle.AncestorOracle` answers
  every clean ancestor query with two array compares, and only edges
  invalidated by this batch's own mutations fall back to walks.

The contract between them is strict *decision equivalence*: for the
same tree state and the same candidate batch, both backends make the
same accept/pushdown/skip decision for every edge, in the same order.
Counted I/O, iteration counts and SCC partitions are therefore
byte-identical across backends (enforced by ``benchmarks/regression.py``
and the fuzz tests in ``tests/test_kernels_classify.py``).

Kernel instances are per-run (``SCCAlgorithm.run`` resolves the
``kernels=`` parameter to a fresh instance), and accumulate named event
counters which the algorithms drain into the active trace span after
every scan (``kernel-fast-path``, ``kernel-fallbacks``,
``oracle-rebuilds``, ``kernel-scalar-edges``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.base import Deadline
    from repro.spanning.brtree import BRPlusTree
    from repro.spanning.tree import ContractibleTree
    from repro.spanning.unionfind import DisjointSet


class ScanKernels:
    """Abstract scan-kernel backend; see the module docstring.

    Subclasses implement one method per scan-loop shape.  ``tree``
    parameters are duck-typed where noted: the DFS kernels accept the
    private ``_DFSTree`` of :mod:`repro.core.dfs_scc`, which shares the
    snapshot contract (``epoch``/``dirty``/``oracle_roots``) with
    :class:`~repro.spanning.tree.ContractibleTree`.
    """

    #: Name used for ``--kernels`` resolution and run/trace attributes.
    name: str = "abstract"

    def __init__(self) -> None:
        #: Event tallies since the last :meth:`drain_counters` call.
        self.counters: Dict[str, int] = {}

    def bump(self, key: str, value: int = 1) -> None:
        """Add ``value`` to event counter ``key``."""
        if value:
            self.counters[key] = self.counters.get(key, 0) + value

    def drain_counters(self) -> Dict[str, int]:
        """Return and reset the accumulated counters.

        The algorithms call this once per scan and forward the result
        to ``tracer.add`` so traces carry per-scan kernel activity.
        """
        drained = self.counters
        self.counters = {}
        return drained

    # ------------------------------------------------------------------
    # the per-batch operations
    # ------------------------------------------------------------------
    def one_phase_scan(
        self, tree: "ContractibleTree", pairs: np.ndarray
    ) -> Tuple[int, int, int]:
        """1P-SCC inner loop over prefiltered ``(k, 2)`` supernode pairs.

        Contracts backward edges, pushes down up-edges.  Returns
        ``(early_accepts, pushdowns, largest_supernode)``.
        """
        raise NotImplementedError

    def construction_scan(
        self, tree: "BRPlusTree", us: np.ndarray, vs: np.ndarray
    ) -> Tuple[bool, int, int]:
        """2P Tree-Construction inner loop over prefiltered node arrays.

        Returns ``(updated, pushdowns, backward_links)``.
        """
        raise NotImplementedError

    def search_scan(self, tree: "BRPlusTree", pairs: np.ndarray) -> int:
        """2P Tree-Search inner loop; returns the contraction count."""
        raise NotImplementedError

    def dfs_scan(
        self, tree: Any, batch: np.ndarray, deadline: "Deadline"
    ) -> int:
        """DFS-Tree forward-cross-edge loop over one raw edge batch.

        ``tree`` is a ``_DFSTree``.  Unlike the other scans this takes
        the *unfiltered* batch: which edges are skippable depends on the
        mutating tree, so any prefilter would change the trajectory.
        Returns the number of reparents performed.
        """
        raise NotImplementedError

    def absorb_members(
        self,
        ds: "DisjointSet",
        live: np.ndarray,
        members: np.ndarray,
        rep: int,
    ) -> int:
        """Merge a group of live supernode representatives into ``rep``.

        Every entry of ``members`` must be a current set representative
        distinct from ``rep`` (the 1PB/EM contraction call sites
        guarantee this).  Returns the number of nodes absorbed.
        """
        raise NotImplementedError

    def compact_pairs(
        self, us: np.ndarray, vs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Compact endpoint ids to a dense ``0..k-1`` space (EM-SCC).

        Returns ``(nodes, comp_edges)`` where ``nodes`` is the sorted
        unique endpoint array and ``comp_edges`` the ``(m, 2)`` edge
        array over compacted indices.
        """
        raise NotImplementedError
