"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphFormatError(ReproError):
    """An on-disk or textual graph representation is malformed."""


class MemoryBudgetError(ReproError):
    """An operation would exceed the configured semi-external memory budget."""


class AlgorithmTimeout(ReproError):
    """An algorithm exceeded its wall-clock time limit (paper: ``INF``)."""

    def __init__(self, algorithm: str, limit_seconds: float) -> None:
        self.algorithm = algorithm
        self.limit_seconds = limit_seconds
        super().__init__(
            f"{algorithm} exceeded the time limit of {limit_seconds:.1f}s"
        )


class NonTermination(ReproError):
    """An algorithm failed to make progress and was aborted.

    This models the paper's observation (Section 4) that the EM-SCC
    contraction heuristic may loop forever on DAG-like graphs or on SCCs
    that straddle partitions.
    """

    def __init__(self, algorithm: str, iterations: int) -> None:
        self.algorithm = algorithm
        self.iterations = iterations
        super().__init__(
            f"{algorithm} made no progress after {iterations} iterations"
        )


class ValidationError(ReproError):
    """A computed SCC partition failed cross-validation."""


class CheckpointError(ReproError):
    """A checkpoint is unreadable or does not match this (graph, algorithm).

    Raised by :class:`~repro.io.checkpoint.CheckpointSession` when a
    resume is requested against a checkpoint written for a different
    input graph, block size, algorithm, or layout version — resuming it
    would silently produce a wrong partition, so the mismatch is fatal.
    """


class ContractViolation(ReproError):
    """A runtime invariant of the semi-external model was broken.

    Raised by the ``REPRO_CHECK_INVARIANTS``-gated checkers of
    :mod:`repro.analysis_static.contracts` — the runtime half of the
    contract analyzer (the static half is ``repro-scc lint``).
    """
