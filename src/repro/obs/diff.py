"""Span-by-span trace comparison: where did two runs diverge, and why.

``repro-scc trace diff A B`` answers the question the span tree alone
cannot: *this run got slower / costlier — which phase is responsible?*
Two traces of the same workload are aligned span-by-span and each
aligned pair is attributed its wall-clock, counted-I/O and
cache-behaviour deltas.

Alignment key
    A span is identified by its *path from the root* — the chain of
    ``name[i<iteration>]`` labels down the tree — plus an occurrence
    index among same-path spans (in start order), so repeated phases
    (``fwd-scan`` #1 vs #2 inside one iteration) align positionally.

Exclusive attribution
    Span I/O and wall time are *inclusive* of children in the trace
    schema, so a leaf regression would surface on every ancestor and
    the diff would blame the root.  The differ therefore compares each
    span's **self** cost — its own delta minus its direct children's —
    which localises a planted slowdown to the actual phase instead of
    the whole chain above it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.io.counter import IOStats
from repro.obs.trace import TraceData
from repro.obs.tracer import Span

__all__ = [
    "SpanDelta",
    "SpanSelf",
    "TraceDiff",
    "diff_traces",
    "index_spans",
    "render_diff",
]


def _label(span: Span) -> str:
    iteration = span.attributes.get("iteration")
    if isinstance(iteration, int):
        return f"{span.name}[i{iteration}]"
    return span.name


@dataclass
class SpanSelf:
    """One span plus its *exclusive* (children-subtracted) costs."""

    span: Span
    path: str
    self_wall: float
    self_io: IOStats


def index_spans(trace: TraceData) -> Dict[str, SpanSelf]:
    """Map every span to its alignment path with exclusive costs.

    Paths look like ``run/fwd-bfs[i2]/fwd-scan#1`` — the ``#n`` suffix
    appears only when siblings share a label, numbering them in start
    order so repeated phases align positionally across traces.
    """
    children: Dict[Optional[int], List[Span]] = {}
    for span in trace.spans:
        children.setdefault(span.parent_id, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda span: span.start_seconds)

    paths: Dict[int, str] = {}
    out: Dict[str, SpanSelf] = {}
    # Parents first (depth order) so every span can extend its parent's
    # already-computed path.
    ordered = sorted(trace.spans, key=lambda s: (s.depth, s.start_seconds))
    occupancy: Dict[str, int] = {}
    for span in ordered:
        parent_path = ""
        if span.parent_id is not None and span.parent_id in paths:
            parent_path = paths[span.parent_id] + "/"
        base = parent_path + _label(span)
        seen = occupancy.get(base, 0)
        occupancy[base] = seen + 1
        path = base if seen == 0 else f"{base}#{seen + 1}"
        paths[span.span_id] = path

        self_wall = span.wall_seconds
        self_io = span.io.copy()
        for child in children.get(span.span_id, ()):  # direct children only
            self_wall -= child.wall_seconds
            self_io = self_io - child.io
        out[path] = SpanSelf(
            span=span, path=path,
            self_wall=max(0.0, self_wall), self_io=self_io,
        )
    return out


@dataclass
class SpanDelta:
    """One aligned span pair and its exclusive B−A deltas."""

    path: str
    wall_a: float
    wall_b: float
    io_a: int
    io_b: int
    io_delta: IOStats

    @property
    def wall_delta(self) -> float:
        """Exclusive wall-clock delta (positive = B slower)."""
        return self.wall_b - self.wall_a

    @property
    def blocks_delta(self) -> int:
        """Exclusive counted-block delta (positive = B costlier)."""
        return self.io_b - self.io_a

    def behaviour_notes(self) -> List[str]:
        """Cache/prefetch/retry changes that explain the delta."""
        notes: List[str] = []
        io = self.io_delta
        if io.cache_hits or io.cache_misses:
            notes.append(f"cache hits {io.cache_hits:+,}, misses {io.cache_misses:+,}")
        if io.prefetch_stalls:
            notes.append(f"prefetch stalls {io.prefetch_stalls:+,}")
        if io.prefetched:
            notes.append(f"prefetched {io.prefetched:+,}")
        if io.io_retries:
            notes.append(f"retries {io.io_retries:+,}")
        if io.faults_injected:
            notes.append(f"faults {io.faults_injected:+,}")
        return notes


@dataclass
class TraceDiff:
    """The full alignment of two traces."""

    matched: List[SpanDelta] = field(default_factory=list)
    only_a: List[str] = field(default_factory=list)
    only_b: List[str] = field(default_factory=list)
    total_wall_a: float = 0.0
    total_wall_b: float = 0.0
    total_io_a: int = 0
    total_io_b: int = 0

    def top_wall_regression(self) -> Optional[SpanDelta]:
        """The aligned span whose exclusive wall time grew the most."""
        slower = [d for d in self.matched if d.wall_delta > 0]
        return max(slower, key=lambda d: d.wall_delta, default=None)

    def top_io_regression(self) -> Optional[SpanDelta]:
        """The aligned span whose exclusive counted I/O grew the most."""
        costlier = [d for d in self.matched if d.blocks_delta > 0]
        return max(costlier, key=lambda d: d.blocks_delta, default=None)


def diff_traces(a: TraceData, b: TraceData) -> TraceDiff:
    """Align two traces span-by-span and attribute their deltas."""
    index_a = index_spans(a)
    index_b = index_spans(b)
    diff = TraceDiff()
    for path, entry_a in index_a.items():
        entry_b = index_b.get(path)
        if entry_b is None:
            diff.only_a.append(path)
            continue
        diff.matched.append(SpanDelta(
            path=path,
            wall_a=entry_a.self_wall,
            wall_b=entry_b.self_wall,
            io_a=entry_a.self_io.total,
            io_b=entry_b.self_io.total,
            io_delta=entry_b.self_io - entry_a.self_io,
        ))
    for path in index_b:
        if path not in index_a:
            diff.only_b.append(path)
    diff.only_a.sort()
    diff.only_b.sort()
    for trace, wall_attr, io_attr in (
        (a, "total_wall_a", "total_io_a"), (b, "total_wall_b", "total_io_b")
    ):
        wall = sum(s.wall_seconds for s in trace.spans if s.parent_id is None)
        io = sum(s.io.total for s in trace.spans if s.parent_id is None)
        setattr(diff, wall_attr, wall)
        setattr(diff, io_attr, io)
    return diff


def _fmt_seconds(value: float) -> str:
    return f"{value:+.3f}s" if value else "±0.000s"


def render_diff(diff: TraceDiff, label_a: str = "A", label_b: str = "B",
                limit: int = 10) -> str:
    """Format a :class:`TraceDiff` as a ranked regression report.

    Matched spans are ranked by absolute exclusive wall delta; counted
    I/O regressions get their own ranking when any exist.  ``limit``
    caps each ranking (the totals always cover the whole diff).
    """
    lines: List[str] = []
    dwall = diff.total_wall_b - diff.total_wall_a
    dio = diff.total_io_b - diff.total_io_a
    lines.append(
        f"totals: wall {diff.total_wall_a:.3f}s -> {diff.total_wall_b:.3f}s "
        f"({_fmt_seconds(dwall)}), io {diff.total_io_a:,} -> "
        f"{diff.total_io_b:,} ({dio:+,} blocks)"
    )
    lines.append(
        f"aligned {len(diff.matched)} spans"
        + (f", only in {label_a}: {len(diff.only_a)}" if diff.only_a else "")
        + (f", only in {label_b}: {len(diff.only_b)}" if diff.only_b else "")
    )

    ranked = sorted(
        diff.matched, key=lambda d: abs(d.wall_delta), reverse=True
    )
    ranked = [d for d in ranked if d.wall_delta or d.blocks_delta]
    if ranked:
        lines.append("")
        lines.append("wall-clock deltas (exclusive, per span):")
        for delta in ranked[:limit]:
            parts = [
                f"  {delta.path.ljust(44)}",
                f"{_fmt_seconds(delta.wall_delta):>10}",
                f"({delta.wall_a:.3f}s -> {delta.wall_b:.3f}s)",
            ]
            if delta.blocks_delta:
                parts.append(f"io {delta.blocks_delta:+,}")
            notes = delta.behaviour_notes()
            if notes:
                parts.append("[" + "; ".join(notes) + "]")
            lines.append(" ".join(parts))
        if len(ranked) > limit:
            lines.append(f"  ... {len(ranked) - limit} more changed spans")
    io_ranked = [d for d in diff.matched if d.blocks_delta > 0]
    io_ranked.sort(key=lambda d: d.blocks_delta, reverse=True)
    if io_ranked:
        lines.append("")
        lines.append("counted-I/O regressions (exclusive, per span):")
        for delta in io_ranked[:limit]:
            lines.append(
                f"  {delta.path.ljust(44)} {delta.blocks_delta:+,} blocks "
                f"({delta.io_a:,} -> {delta.io_b:,})"
            )
    for label, paths in ((label_a, diff.only_a), (label_b, diff.only_b)):
        if paths:
            lines.append("")
            lines.append(f"only in {label}:")
            for path in paths[:limit]:
                lines.append(f"  {path}")
            if len(paths) > limit:
                lines.append(f"  ... {len(paths) - limit} more")
    top = diff.top_wall_regression()
    if top is not None:
        lines.append("")
        lines.append(
            f"verdict: biggest slowdown is {top.path} "
            f"({_fmt_seconds(top.wall_delta)} exclusive)"
        )
    return "\n".join(lines)
