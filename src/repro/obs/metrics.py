"""Process-wide runtime metrics: counters, gauges, histograms.

The span tracer (:mod:`repro.obs.tracer`) answers *post-mortem*
questions — a finished trace shows where a run's counted I/O went.  On
the multi-hour massive-graph runs the paper targets there is a second
question the trace cannot answer: *what is the run doing right now?*
This module is the live half of the observability plane: a
:class:`MetricsRegistry` of named instruments fed by an observer hook
on the shared :class:`~repro.io.counter.IOCounter` (reads, writes,
cache hits, prefetch stalls, retries, faults), by the checkpoint
session's save-latency hook, and by per-iteration progress gauges the
algorithms update at every scan boundary.

Three instrument kinds, deliberately Prometheus-shaped:

* :class:`Counter` — monotonically non-decreasing totals (block reads,
  retries).  Monotonicity is part of the snapshot schema and checked by
  :func:`repro.obs.sampler.validate_metrics`.
* :class:`Gauge` — point-in-time values (live nodes, queue depth).
  Gauges may also be *callback-backed* (:meth:`MetricsRegistry.
  register_callback`) so sampling can poll transient structures like a
  live prefetcher without the hot path pushing values.
* :class:`Histogram` — bucketed distributions (checkpoint save
  latency), exposed with Prometheus' cumulative ``le`` semantics.

Accounting transparency is the design constraint inherited from the
whole repo: the metrics plane only ever *reads* event arguments and
*writes* its own instruments — it never touches the
:class:`~repro.io.counter.IOCounter` it observes, so counted I/O and
partitions are byte-identical with metrics on or off (the
bench-regression gate re-runs every golden case with the sampler
enabled to prove it).

This module performs no file I/O; persistence lives in
:mod:`repro.obs.sampler`.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.io.counter import IOCounter, IOObserver

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "install_io_metrics",
    "parse_prometheus_text",
    "series_key",
]

#: Exposition name prefix shared by every instrument the run creates.
METRIC_PREFIX = "repro_"

#: Default latency buckets (seconds) for duration histograms — spans
#: sub-millisecond checkpoint saves up to multi-second stalls.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

LabelPairs = Tuple[Tuple[str, str], ...]


def _label_pairs(labels: Dict[str, str]) -> LabelPairs:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def series_key(name: str, labels: Optional[Dict[str, str]] = None) -> str:
    """The canonical series identifier: ``name{a="b",c="d"}`` (or bare name).

    Used as the key of every snapshot mapping and of the parsed
    Prometheus exposition, so JSONL samples and scraped text agree on
    what a series is called.
    """
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in _label_pairs(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically non-decreasing total."""

    __slots__ = ("name", "help", "labels", "_value", "_lock")

    def __init__(self, name: str, help_text: str = "",
                 labels: Optional[Dict[str, str]] = None) -> None:
        self.name = name
        self.help = help_text
        self.labels = dict(labels or {})
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative — counters never go down)."""
        if amount < 0:
            raise ValueError("counters are monotonic; use a Gauge to decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def key(self) -> str:
        return series_key(self.name, self.labels)


class Gauge:
    """A point-in-time value that may move in either direction."""

    __slots__ = ("name", "help", "labels", "_value", "_lock")

    def __init__(self, name: str, help_text: str = "",
                 labels: Optional[Dict[str, str]] = None) -> None:
        self.name = name
        self.help = help_text
        self.labels = dict(labels or {})
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the value up by ``amount``."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Move the value down by ``amount``."""
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def key(self) -> str:
        return series_key(self.name, self.labels)


class Histogram:
    """A bucketed distribution with Prometheus ``le`` semantics.

    ``buckets`` are the *upper bounds* of the finite buckets, strictly
    increasing; an implicit ``+Inf`` bucket always terminates the list.
    An observation lands in the first bucket whose bound is ``>=`` the
    value (boundary values are *inclusive*, matching Prometheus — an
    observation of exactly ``0.01`` counts in ``le="0.01"``).
    """

    __slots__ = ("name", "help", "labels", "bounds", "_counts", "_sum",
                 "_count", "_lock")

    def __init__(self, name: str, help_text: str = "",
                 buckets: Optional[Sequence[float]] = None,
                 labels: Optional[Dict[str, str]] = None) -> None:
        bounds = tuple(float(b) for b in (buckets or DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError("a histogram needs at least one finite bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be strictly increasing")
        self.name = name
        self.help = help_text
        self.labels = dict(labels or {})
        self.bounds = bounds
        self._lock = threading.Lock()
        # Per-bucket (non-cumulative) tallies; the +Inf overflow is last.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> Dict[str, object]:
        """Cumulative bucket counts plus sum/count, JSON- and prom-ready."""
        with self._lock:
            counts = list(self._counts)
            total_sum = self._sum
            total_count = self._count
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            cumulative[repr(bound)] = running
        cumulative["+Inf"] = running + counts[-1]
        return {"buckets": cumulative, "sum": total_sum, "count": total_count}

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def key(self) -> str:
        return series_key(self.name, self.labels)


class MetricsRegistry:
    """The process-wide instrument table of one run (or one process).

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call for a ``(name, labels)`` series creates the instrument, later
    calls return the same object — so producer code never needs to
    thread instrument handles around.  Asking for an existing series as
    a different kind is a bug and raises ``TypeError``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, LabelPairs], object] = {}
        self._callbacks: Dict[Tuple[str, LabelPairs],
                              Tuple[str, Callable[[], float]]] = {}

    # ------------------------------------------------------------------
    # instrument factories
    # ------------------------------------------------------------------
    def counter(self, name: str, help_text: str = "",
                **labels: str) -> Counter:
        """Get or create the :class:`Counter` for ``(name, labels)``."""
        return self._get_or_create(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        """Get or create the :class:`Gauge` for ``(name, labels)``."""
        return self._get_or_create(Gauge, name, help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Optional[Sequence[float]] = None,
                  **labels: str) -> Histogram:
        """Get or create the :class:`Histogram` for ``(name, labels)``.

        ``buckets`` applies only on creation; a later call returns the
        existing instrument regardless of the bounds it asks for.
        """
        key = (name, _label_pairs(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}"
                    )
                return existing
            instrument = Histogram(name, help_text, buckets=buckets,
                                   labels=dict(labels))
            self._instruments[key] = instrument
            return instrument

    def _get_or_create(self, cls: type, name: str, help_text: str,
                       labels: Dict[str, str]):
        key = (name, _label_pairs(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}"
                    )
                return existing
            instrument = cls(name, help_text, labels=dict(labels))
            self._instruments[key] = instrument
            return instrument

    # ------------------------------------------------------------------
    # callback-backed gauges
    # ------------------------------------------------------------------
    def register_callback(self, name: str, fn: Callable[[], float],
                          help_text: str = "", **labels: str) -> None:
        """Register a polled gauge: ``fn()`` is called at snapshot time.

        A callback that raises is reported as 0 rather than killing the
        sampler thread — live instrumentation must never take down the
        run it observes.
        """
        with self._lock:
            self._callbacks[(name, _label_pairs(labels))] = (help_text, fn)

    def unregister_callback(self, name: str, **labels: str) -> None:
        """Drop a polled gauge (no-op when absent)."""
        with self._lock:
            self._callbacks.pop((name, _label_pairs(labels)), None)

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """One coherent sample of every instrument, keyed by series.

        Layout (the ``values`` payload of a JSONL ``sample`` record)::

            {"counters": {series: float},
             "gauges": {series: float},
             "histograms": {series: {"buckets": {...}, "sum": s, "count": n}}}
        """
        with self._lock:
            instruments = list(self._instruments.values())
            callbacks = list(self._callbacks.items())
        counters: Dict[str, object] = {}
        gauges: Dict[str, object] = {}
        histograms: Dict[str, object] = {}
        for instrument in instruments:
            if isinstance(instrument, Counter):
                counters[instrument.key] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[instrument.key] = instrument.value
            elif isinstance(instrument, Histogram):
                histograms[instrument.key] = instrument.snapshot()
        for (name, labels), (_help, fn) in callbacks:
            try:
                value = float(fn())
            except Exception:
                value = 0.0
            gauges[series_key(name, dict(labels))] = value
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    # ------------------------------------------------------------------
    # Prometheus text exposition (version 0.0.4)
    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """Render every instrument in the Prometheus text format."""
        with self._lock:
            instruments = list(self._instruments.values())
            callbacks = list(self._callbacks.items())
        lines: List[str] = []
        seen_meta: set = set()

        def meta(name: str, help_text: str, kind: str) -> None:
            if name in seen_meta:
                return
            seen_meta.add(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")

        for instrument in instruments:
            if isinstance(instrument, Counter):
                meta(instrument.name, instrument.help, "counter")
                lines.append(f"{instrument.key} {_fmt(instrument.value)}")
            elif isinstance(instrument, Gauge):
                meta(instrument.name, instrument.help, "gauge")
                lines.append(f"{instrument.key} {_fmt(instrument.value)}")
            elif isinstance(instrument, Histogram):
                meta(instrument.name, instrument.help, "histogram")
                snap = instrument.snapshot()
                buckets = snap["buckets"]
                assert isinstance(buckets, dict)
                for le, cumulative in buckets.items():
                    labels = dict(instrument.labels)
                    labels["le"] = le if le == "+Inf" else _fmt(float(le))
                    lines.append(
                        f"{series_key(instrument.name + '_bucket', labels)} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{series_key(instrument.name + '_sum', instrument.labels)}"
                    f" {_fmt(float(snap['sum']))}"  # type: ignore[arg-type]
                )
                lines.append(
                    f"{series_key(instrument.name + '_count', instrument.labels)}"
                    f" {snap['count']}"
                )
        for (name, labels), (help_text, fn) in callbacks:
            meta(name, help_text, "gauge")
            try:
                value = float(fn())
            except Exception:
                value = 0.0
            lines.append(f"{series_key(name, dict(labels))} {_fmt(value)}")
        return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    """Render a sample value the way Prometheus clients do (int when whole)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


# ----------------------------------------------------------------------
# the IOCounter observer hook
# ----------------------------------------------------------------------

def install_io_metrics(
    registry: MetricsRegistry, counter: IOCounter
) -> Callable[[], None]:
    """Feed ``registry`` from every event ``counter`` observes.

    Installs an observer that *chains* to whatever observer was already
    present (typically none — the span tracer attaches later and
    forwards to us, see :meth:`repro.obs.tracer.Tracer.attach`), and
    returns an ``uninstall()`` callable restoring the previous observer.

    The hook only increments registry counters from the event's
    arguments; it never reads or writes the :class:`IOCounter` tallies,
    which is what keeps counted I/O byte-identical with metrics on.
    """
    read_seq = registry.counter(
        METRIC_PREFIX + "io_read_blocks_total",
        "charged block reads", mode="seq")
    read_rand = registry.counter(
        METRIC_PREFIX + "io_read_blocks_total",
        "charged block reads", mode="rand")
    write_seq = registry.counter(
        METRIC_PREFIX + "io_write_blocks_total",
        "charged block writes", mode="seq")
    write_rand = registry.counter(
        METRIC_PREFIX + "io_write_blocks_total",
        "charged block writes", mode="rand")
    bytes_read = registry.counter(
        METRIC_PREFIX + "io_read_bytes_total", "payload bytes read")
    bytes_written = registry.counter(
        METRIC_PREFIX + "io_write_bytes_total", "payload bytes written")
    cache_hits = registry.counter(
        METRIC_PREFIX + "cache_hits_total",
        "page-cache hits (block reads avoided, never charged)")
    cache_misses = registry.counter(
        METRIC_PREFIX + "cache_misses_total",
        "page-cache lookups that fell through to a charged read")
    prefetched = registry.counter(
        METRIC_PREFIX + "prefetched_blocks_total",
        "block reads delivered through the prefetch pipeline")
    stalls = registry.counter(
        METRIC_PREFIX + "prefetch_stalls_total",
        "prefetch dequeues that had to wait for the reader thread")
    retries = registry.counter(
        METRIC_PREFIX + "io_retries_total",
        "block transfers re-attempted after a transient fault "
        "(never charged as block I/O)")
    faults = registry.counter(
        METRIC_PREFIX + "faults_injected_total",
        "faults the injection harness actually fired")

    previous: Optional[IOObserver] = counter.observer

    def observe(kind: str, blocks: int, nbytes: int, sequential: bool,
                origin: Optional[str]) -> None:
        if kind == "read":
            (read_seq if sequential else read_rand).inc(blocks)
            bytes_read.inc(nbytes)
        elif kind == "write":
            (write_seq if sequential else write_rand).inc(blocks)
            bytes_written.inc(nbytes)
        elif kind == "cache_hit":
            cache_hits.inc(blocks)
        elif kind == "cache_miss":
            cache_misses.inc(blocks)
        elif kind == "prefetch":
            prefetched.inc(blocks)
            if not sequential:  # the slot doubles as ``not stalled``
                stalls.inc(1)
        elif kind == "retry":
            retries.inc(blocks)
        elif kind == "fault":
            faults.inc(blocks)
        if previous is not None:
            previous(kind, blocks, nbytes, sequential, origin)

    counter.observer = observe

    def uninstall() -> None:
        # Only restore if nobody replaced us meanwhile (the tracer saves
        # and restores around attach, so normally nobody has).
        if counter.observer is observe:
            counter.observer = previous

    return uninstall


# ----------------------------------------------------------------------
# exposition parsing (CI smoke + tests)
# ----------------------------------------------------------------------

def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse a text-format exposition back into ``{series: value}``.

    A deliberately strict reader of the subset :meth:`MetricsRegistry.
    to_prometheus` emits — used by ``repro-scc metrics check`` and the
    CI smoke job to prove the exposition is well-formed.  Raises
    ``ValueError`` on any malformed line.
    """
    samples: Dict[str, float] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 2)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment {raw!r}")
            continue
        series, _, value_text = line.rpartition(" ")
        if not series:
            raise ValueError(f"line {lineno}: no sample value in {raw!r}")
        if "{" in series and not series.endswith("}"):
            raise ValueError(f"line {lineno}: unbalanced labels in {raw!r}")
        try:
            value = float(value_text)
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric sample value {value_text!r}"
            )
        if series in samples:
            raise ValueError(f"line {lineno}: duplicate series {series!r}")
        samples[series] = value
    return samples
