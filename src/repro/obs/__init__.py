"""Observability for semi-external runs: spans, traces, metrics, reports.

The :mod:`repro.obs` subsystem makes the paper's per-phase accounting
claims measurable from real runs:

* :class:`Tracer` / :class:`NullTracer` — nestable named spans that
  snapshot the shared I/O counter, so every phase, iteration and edge
  scan carries its own :class:`~repro.io.counter.IOStats` delta, wall
  time, event counters and per-file breakdown (``tracer.py``);
* :class:`TraceWriter` / :func:`load_trace` / :func:`validate_trace` —
  the schema-versioned JSONL trace format plus its summary sidecar and
  invariant checker (``trace.py``);
* :func:`render_report` — the ``repro-scc report`` span-tree renderer
  (``report.py``);
* :class:`MetricsRegistry` + :func:`install_io_metrics` — the live
  metrics plane: process-wide counters/gauges/histograms fed by the
  I/O-counter observer, with Prometheus text exposition
  (``metrics.py``);
* :class:`MetricsSampler` / :class:`MetricsWriter` /
  :class:`PrometheusEndpoint` — background JSONL snapshotting, atomic
  Prometheus textfiles, and an optional stdlib scrape endpoint
  (``sampler.py``);
* :class:`Heartbeat` — the live stderr progress/ETA line projecting
  completion against the paper's per-iteration scan budget
  (``heartbeat.py``);
* :func:`diff_traces` / :func:`render_diff` — span-by-span trace
  comparison attributing wall/I-O/cache deltas (``diff.py``).

Tracing and metrics are opt-in: algorithms default to the no-op
:data:`NULL_TRACER` and no registry, whose disabled paths cost nothing
and leave run behavior (labels and I/O tallies) byte-identical — and
even with metrics *on*, the observers only read event arguments, so
counted I/O stays byte-identical (the bench-regression gate enforces
this).
"""

from repro.obs.diff import TraceDiff, diff_traces, render_diff
from repro.obs.heartbeat import (
    SCAN_BUDGETS,
    Heartbeat,
    predicted_blocks_per_scan,
)
from repro.obs.metrics import (
    MetricsRegistry,
    install_io_metrics,
    parse_prometheus_text,
)
from repro.obs.report import render_report
from repro.obs.sampler import (
    METRICS_SCHEMA_VERSION,
    MetricsSampler,
    MetricsWriter,
    PrometheusEndpoint,
    load_metrics,
    validate_metrics,
)
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    TraceData,
    TraceWriter,
    load_trace,
    validate_trace,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    iteration_io,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "iteration_io",
    "TraceWriter",
    "TraceData",
    "TRACE_SCHEMA_VERSION",
    "load_trace",
    "validate_trace",
    "render_report",
    "MetricsRegistry",
    "install_io_metrics",
    "parse_prometheus_text",
    "METRICS_SCHEMA_VERSION",
    "MetricsWriter",
    "MetricsSampler",
    "PrometheusEndpoint",
    "load_metrics",
    "validate_metrics",
    "Heartbeat",
    "SCAN_BUDGETS",
    "predicted_blocks_per_scan",
    "TraceDiff",
    "diff_traces",
    "render_diff",
]
