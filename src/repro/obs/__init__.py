"""Observability for semi-external runs: spans, traces, reports.

The :mod:`repro.obs` subsystem makes the paper's per-phase accounting
claims measurable from real runs:

* :class:`Tracer` / :class:`NullTracer` — nestable named spans that
  snapshot the shared I/O counter, so every phase, iteration and edge
  scan carries its own :class:`~repro.io.counter.IOStats` delta, wall
  time, event counters and per-file breakdown (``tracer.py``);
* :class:`TraceWriter` / :func:`load_trace` / :func:`validate_trace` —
  the schema-versioned JSONL trace format plus its summary sidecar and
  invariant checker (``trace.py``);
* :func:`render_report` — the ``repro-scc report`` span-tree renderer
  (``report.py``).

Tracing is opt-in: algorithms default to the no-op :data:`NULL_TRACER`,
whose disabled path costs nothing and leaves run behavior (labels and
I/O tallies) byte-identical.
"""

from repro.obs.report import render_report
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    TraceData,
    TraceWriter,
    load_trace,
    validate_trace,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    iteration_io,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "iteration_io",
    "TraceWriter",
    "TraceData",
    "TRACE_SCHEMA_VERSION",
    "load_trace",
    "validate_trace",
    "render_report",
]
