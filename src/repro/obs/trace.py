"""Schema-versioned JSONL traces: writer, loader, and validator.

A trace file is newline-delimited JSON with three record types:

``header``
    First record.  Carries ``schema_version`` (see
    :data:`TRACE_SCHEMA_VERSION`) and free-form run ``metadata``
    (algorithm, graph path, block size ...).
``span``
    One finished :class:`~repro.obs.tracer.Span`, written in exit order
    (children before their parent).  Fields: ``id``, ``parent``,
    ``name``, ``depth``, ``attrs``, ``start``, ``wall``, ``io`` (the six
    raw :class:`~repro.io.counter.IOStats` fields, plus the additive
    ``cache_hits``/``cache_misses``/``prefetched``/``prefetch_stalls``
    tallies when nonzero — policy-off traces stay byte-identical to
    pre-cache traces), ``counters`` and ``files``.
``summary``
    Last record: span count plus the aggregate I/O and wall time of the
    root spans.  The same payload is mirrored into a
    ``<trace>.summary.json`` sidecar for tools that only want totals.

This module is the one place :mod:`repro.obs` touches the filesystem.
It deliberately bypasses the counted :class:`~repro.io.blocks.BlockDevice`
path: the trace is an *observability sidecar* (like the ``.meta`` graph
metadata), recording a run's I/O without being part of it, which is why
it carries an ``IO001`` allowlist entry in the contract analyzer.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.exceptions import ReproError
from repro.io.counter import IOStats
from repro.obs.tracer import Span

#: Version stamped into every trace header; bump on incompatible change.
TRACE_SCHEMA_VERSION = 1


def _json_default(value: object) -> object:
    """Coerce numpy scalars (and other oddballs) into JSON-able values."""
    for attribute in ("item",):  # numpy scalars expose .item()
        method = getattr(value, attribute, None)
        if callable(method):
            return method()
    return str(value)


def span_to_record(span: Span) -> Dict[str, object]:
    """Serialize a finished span to its schema-v1 JSONL record."""
    return {
        "type": "span",
        "id": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "depth": span.depth,
        "attrs": dict(span.attributes),
        "start": span.start_seconds,
        "wall": span.wall_seconds,
        "io": span.io.to_dict(),
        "counters": dict(span.counters),
        "files": {path: stats.to_dict() for path, stats in span.files.items()},
    }


def record_to_span(record: Dict[str, object]) -> Span:
    """Rebuild a :class:`Span` from a parsed JSONL span record."""
    return Span(
        name=str(record["name"]),
        span_id=int(record["id"]),  # type: ignore[arg-type]
        parent_id=None if record.get("parent") is None else int(record["parent"]),  # type: ignore[arg-type]
        depth=int(record.get("depth", 0)),  # type: ignore[arg-type]
        attributes=dict(record.get("attrs", {})),  # type: ignore[arg-type]
        start_seconds=float(record.get("start", 0.0)),  # type: ignore[arg-type]
        wall_seconds=float(record.get("wall", 0.0)),  # type: ignore[arg-type]
        io=IOStats.from_dict(record.get("io", {})),  # type: ignore[arg-type]
        counters={k: int(v) for k, v in dict(record.get("counters", {})).items()},  # type: ignore[arg-type]
        files={
            path: IOStats.from_dict(payload)
            for path, payload in dict(record.get("files", {})).items()  # type: ignore[arg-type]
        },
    )


class TraceWriter:
    """Stream spans to a JSONL trace plus a ``.summary.json`` sidecar.

    Designed to be passed as a :class:`~repro.obs.tracer.Tracer` sink::

        writer = TraceWriter("run.jsonl", metadata={"algorithm": "2P-SCC"})
        tracer = Tracer(sink=writer)
        ...
        writer.close()

    The header record is written eagerly so even a run that dies
    mid-flight leaves a parseable prefix; :meth:`close` appends the
    summary record and writes the sidecar.
    """

    def __init__(
        self, path: str, metadata: Optional[Dict[str, object]] = None
    ) -> None:
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        # Observability sidecar output, not part of the measured run
        # (see module docstring); IO001-allowlisted.
        self._handle = open(  # repro: allow[IO001]
            path, "w", encoding="utf-8"
        )
        self._spans = 0
        self._root_io = IOStats()
        self._root_wall = 0.0
        self._closed = False
        self._write(
            {
                "type": "header",
                "schema_version": TRACE_SCHEMA_VERSION,
                "metadata": metadata or {},
            }
        )

    def __call__(self, span: Span) -> None:
        """Append one finished span (the tracer-sink entry point)."""
        if self._closed:
            raise ReproError(f"trace writer for {self.path} is closed")
        self._spans += 1
        if span.parent_id is None:
            self._root_io = self._root_io + span.io
            self._root_wall += span.wall_seconds
        self._write(span_to_record(span))

    def close(self) -> None:
        """Seal the trace: summary record, sidecar JSON, file handles."""
        if self._closed:
            return
        summary = {
            "type": "summary",
            "spans": self._spans,
            "io": self._root_io.to_dict(),
            "wall_seconds": self._root_wall,
        }
        self._write(summary)
        # Crash-safety: a sealed trace must survive a crash immediately
        # after close(), so both files are fsynced before the handles go.
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._closed = True
        sidecar = dict(summary)
        sidecar["type"] = "trace-summary"
        sidecar["schema_version"] = TRACE_SCHEMA_VERSION
        sidecar["trace"] = os.path.basename(self.path)
        # Sidecar summary, same uncounted-observability footing as above.
        with open(  # repro: allow[IO001]
            self.summary_path, "w", encoding="utf-8"
        ) as handle:
            json.dump(sidecar, handle, indent=2, default=_json_default)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())

    @property
    def summary_path(self) -> str:
        """Path of the sidecar summary JSON (``<trace>.summary.json``)."""
        return self.path + ".summary.json"

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _write(self, record: Dict[str, object]) -> None:
        self._handle.write(json.dumps(record, default=_json_default))
        self._handle.write("\n")


@dataclass
class TraceData:
    """A parsed trace: header, spans in exit order, optional summary."""

    header: Dict[str, object]
    spans: List[Span]
    summary: Optional[Dict[str, object]]

    @property
    def schema_version(self) -> int:
        """The trace's declared schema version."""
        return int(self.header.get("schema_version", 0))  # type: ignore[arg-type]

    @property
    def metadata(self) -> Dict[str, object]:
        """Free-form run metadata recorded in the header."""
        return dict(self.header.get("metadata", {}))  # type: ignore[arg-type]


def load_trace(path: str) -> TraceData:
    """Parse a JSONL trace file written by :class:`TraceWriter`.

    Unknown record types are skipped (forward compatibility); a missing
    or malformed header is a :class:`~repro.exceptions.ReproError`.
    """
    header: Optional[Dict[str, object]] = None
    spans: List[Span] = []
    summary: Optional[Dict[str, object]] = None
    # Trace input is outside the counted I/O model (module docstring).
    with open(path, "r", encoding="utf-8") as handle:  # repro: allow[IO001]
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(f"{path}:{lineno}: not valid JSONL ({exc.msg})")
            if not isinstance(record, dict):
                raise ReproError(f"{path}:{lineno}: trace records must be objects")
            kind = record.get("type")
            if kind == "header":
                if header is None:
                    header = record
            elif kind == "span":
                spans.append(record_to_span(record))
            elif kind == "summary":
                summary = record
    if header is None:
        raise ReproError(f"{path}: not a trace file (no header record)")
    return TraceData(header=header, spans=spans, summary=summary)


def validate_trace(trace: TraceData) -> List[str]:
    """Check a trace against the schema and its accounting invariants.

    Returns a list of human-readable problems (empty when the trace is
    valid).  Checked invariants:

    * the header's schema version is supported;
    * span ids are unique and every parent reference resolves, with
      ``child.depth == parent.depth + 1``;
    * the summary record is present, counts every span, and its I/O
      equals the sum of the root spans' deltas;
    * I/O is conserved down the tree: for every span, the summed deltas
      of its direct children never exceed its own (a parent's delta is
      inclusive).
    """
    problems: List[str] = []
    if trace.schema_version != TRACE_SCHEMA_VERSION:
        problems.append(
            f"unsupported schema_version {trace.schema_version} "
            f"(expected {TRACE_SCHEMA_VERSION})"
        )
    by_id: Dict[int, Span] = {}
    for span in trace.spans:
        if span.span_id in by_id:
            problems.append(f"duplicate span id {span.span_id}")
        by_id[span.span_id] = span
    roots: List[Span] = []
    children_io: Dict[int, IOStats] = {}
    for span in trace.spans:
        if span.parent_id is None:
            roots.append(span)
            continue
        parent = by_id.get(span.parent_id)
        if parent is None:
            problems.append(
                f"span {span.span_id} ({span.name}) references unknown "
                f"parent {span.parent_id}"
            )
            continue
        if span.depth != parent.depth + 1:
            problems.append(
                f"span {span.span_id} ({span.name}) has depth {span.depth}, "
                f"expected {parent.depth + 1}"
            )
        accumulated = children_io.get(span.parent_id)
        children_io[span.parent_id] = (
            span.io.copy() if accumulated is None else accumulated + span.io
        )
    if trace.spans and not roots:
        problems.append("no root span (every span has a parent)")
    for parent_id, accumulated in children_io.items():
        parent = by_id[parent_id]
        for fld in ("seq_reads", "seq_writes", "rand_reads", "rand_writes",
                    "bytes_read", "bytes_written", "cache_hits",
                    "cache_misses", "prefetched", "prefetch_stalls",
                    "io_retries", "faults_injected"):
            if getattr(accumulated, fld) > getattr(parent.io, fld):
                problems.append(
                    f"span {parent_id} ({parent.name}): children's {fld} "
                    f"({getattr(accumulated, fld)}) exceeds the span's own "
                    f"({getattr(parent.io, fld)})"
                )
    if trace.summary is None:
        problems.append("no summary record (trace was not closed)")
    else:
        declared = trace.summary.get("spans")
        if declared != len(trace.spans):
            problems.append(
                f"summary declares {declared} spans, file holds {len(trace.spans)}"
            )
        summary_io = IOStats.from_dict(trace.summary.get("io", {}))  # type: ignore[arg-type]
        root_io = IOStats()
        for span in roots:
            root_io = root_io + span.io
        if summary_io != root_io:
            problems.append(
                f"summary io {summary_io.to_dict()} != sum of root spans "
                f"{root_io.to_dict()}"
            )
    return problems
