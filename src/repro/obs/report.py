"""Render a run trace as a human-readable span tree with I/O breakdowns.

``repro-scc report trace.jsonl`` turns the paper's accounting claims
into a one-command check: the tree shows, per span, wall time, block
I/O (and its share of the run), sequential-vs-random composition and
event counters, and the per-phase summary counts edge scans — e.g. a
2P-SCC trace should show Tree-Search with exactly one sequential edge
scan and Tree-Construction with at most ``depth(G)`` of them.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.obs.trace import TraceData
from repro.obs.tracer import Span

#: Suffix convention marking a span as one full pass over an edge file.
SCAN_SUFFIX = "-scan"


def _children_map(spans: List[Span]) -> Dict[Optional[int], List[Span]]:
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda span: span.start_seconds)
    return children


def _descendant_scans(
    span: Span, children: Dict[Optional[int], List[Span]]
) -> List[Span]:
    """All spans in ``span``'s subtree (inclusive) that are edge scans."""
    out: List[Span] = []
    stack = [span]
    while stack:
        node = stack.pop()
        if node.name.endswith(SCAN_SUFFIX):
            out.append(node)
        stack.extend(children.get(node.span_id, ()))
    return out


def _percent(part: int, whole: int) -> str:
    if whole <= 0:
        return "-"
    return f"{100.0 * part / whole:.0f}%"


def _span_line(span: Span, total_io: int) -> str:
    attrs = " ".join(
        f"{key}={value}" for key, value in sorted(span.attributes.items())
        if key != "algorithm"
    )
    label = span.name if not attrs else f"{span.name} [{attrs}]"
    parts = [
        label.ljust(36),
        f"{span.wall_seconds:8.3f}s",
        f"io={span.io.total:>8,}",
        f"({_percent(span.io.total, total_io):>4})",
        f"seq r/w {span.io.seq_reads:,}/{span.io.seq_writes:,}",
    ]
    if span.io.rand_reads or span.io.rand_writes:
        parts.append(f"rand r/w {span.io.rand_reads:,}/{span.io.rand_writes:,}")
    if span.io.cache_hits or span.io.cache_misses:
        lookups = span.io.cache_hits + span.io.cache_misses
        parts.append(
            f"cache {_percent(span.io.cache_hits, lookups)} hit "
            f"({span.io.cache_hits:,}h/{span.io.cache_misses:,}m)"
        )
    if span.io.prefetched:
        parts.append(
            f"prefetch {_percent(span.io.prefetch_stalls, span.io.prefetched)} "
            f"stalled ({span.io.prefetched:,} blocks)"
        )
    if span.io.io_retries:
        reads = span.io.seq_reads + span.io.rand_reads
        per_1k = (
            1000.0 * span.io.io_retries / reads if reads
            else float(span.io.io_retries)
        )
        parts.append(f"retries {span.io.io_retries:,} ({per_1k:.1f}/1k reads)")
    if span.counters:
        counters = " ".join(
            f"{key}={value:,}" for key, value in sorted(span.counters.items())
        )
        parts.append(counters)
    return "  ".join(parts)


def render_report(trace: TraceData, max_depth: Optional[int] = None) -> str:
    """Format the span tree plus per-phase and per-file summaries.

    ``max_depth`` prunes the tree display below the given depth (the
    phase and file summaries always cover the full trace).
    """
    lines: List[str] = []
    metadata = trace.metadata
    described = ", ".join(
        f"{key}={value}" for key, value in sorted(metadata.items())
    )
    lines.append(
        f"trace schema v{trace.schema_version}"
        + (f" — {described}" if described else "")
    )
    children = _children_map(trace.spans)
    roots = children.get(None, [])
    total_io = sum(span.io.total for span in roots)
    total_wall = sum(span.wall_seconds for span in roots)
    lines.append(
        f"total: {total_io:,} block I/Os, {total_wall:.3f}s wall, "
        f"{len(trace.spans)} spans"
    )
    cache_hits = sum(span.io.cache_hits for span in roots)
    cache_misses = sum(span.io.cache_misses for span in roots)
    prefetched = sum(span.io.prefetched for span in roots)
    stalls = sum(span.io.prefetch_stalls for span in roots)
    if cache_hits or cache_misses:
        lines.append(
            f"page cache: {cache_hits:,} hits / {cache_misses:,} misses "
            f"({cache_hits:,} block reads avoided — hits are never "
            "charged as block I/O)"
        )
    if prefetched:
        lines.append(
            f"prefetch: {prefetched:,} blocks pipelined, {stalls:,} stalls "
            f"({_percent(prefetched - stalls, prefetched)} latency hidden)"
        )
    # Parallel scan executor activity.  The span counters are per-scan
    # deltas, so summing over *all* spans gives run totals; the worker
    # count is emitted exactly once (see ParallelContext.drain_counters),
    # so the same sum recovers it.  Efficiency is worker-busy time over
    # the workers x wall capacity — low numbers are expected and honest:
    # the main process alone reads counted blocks and applies merges, so
    # workers idle whenever classification is not the bottleneck.
    par_batches = sum(
        span.counters.get("parallel-batches", 0) for span in trace.spans
    )
    if par_batches:
        par_workers = sum(
            span.counters.get("parallel-workers", 0) for span in trace.spans
        )
        par_fallbacks = sum(
            span.counters.get("parallel-fallbacks", 0) for span in trace.spans
        )
        par_stale = sum(
            span.counters.get("parallel-stale", 0) for span in trace.spans
        )
        busy_ms = sum(
            span.counters.get("parallel-busy-ms", 0) for span in trace.spans
        )
        capacity_ms = int(par_workers * total_wall * 1000.0)
        lines.append(
            f"parallel: {par_workers} workers, {par_batches:,} batches "
            f"shipped ({par_fallbacks:,} fallbacks, {par_stale:,} stale), "
            f"{busy_ms / 1000.0:.3f}s worker-busy "
            f"({_percent(busy_ms, capacity_ms)} of {par_workers}×wall)"
        )
    lines.append("")

    # --- the span tree.
    for root in roots:
        stack: List[tuple] = [(root, "", "")]
        while stack:
            span, prefix, child_prefix = stack.pop()
            lines.append(prefix + _span_line(span, total_io))
            if max_depth is not None and span.depth >= max_depth:
                continue
            kids = children.get(span.span_id, [])
            # Push in reverse so the earliest child is rendered first.
            for index in range(len(kids) - 1, -1, -1):
                last = index == len(kids) - 1
                connector = "└─ " if last else "├─ "
                continuation = "   " if last else "│  "
                stack.append(
                    (kids[index], child_prefix + connector,
                     child_prefix + continuation)
                )

    # --- per-phase scan accounting (the paper's claims, one per line).
    phase_lines: List[str] = []
    for root in roots:
        for phase in children.get(root.span_id, []):
            scans = _descendant_scans(phase, children)
            if not scans:
                continue
            # A full pass pays exactly one random read: the rewind seek
            # back to block 0.  Anything beyond that means the scan
            # genuinely jumped around.
            sequential_only = all(
                scan.io.rand_reads <= 1 and scan.io.rand_writes == 0
                for scan in scans
            )
            seq_reads = sum(scan.io.seq_reads for scan in scans)
            phase_lines.append(
                f"  {phase.name}: {len(scans)} "
                f"{'sequential ' if sequential_only else ''}edge "
                f"scan{'s' if len(scans) != 1 else ''}, "
                f"{seq_reads:,} seq block reads, "
                f"{_percent(phase.io.total, total_io)} of run I/O"
            )
    if phase_lines:
        lines.append("")
        lines.append("phases:")
        lines.extend(phase_lines)

    # --- per-file attribution (rolled up on the roots).
    file_totals: Dict[str, object] = {}
    for root in roots:
        for path, stats in root.files.items():
            existing = file_totals.get(path)
            file_totals[path] = stats if existing is None else existing + stats  # type: ignore[operator]
    if file_totals:
        lines.append("")
        lines.append("files:")
        for path in sorted(file_totals, key=lambda p: -file_totals[p].total):  # type: ignore[union-attr]
            stats = file_totals[path]
            lines.append(
                f"  {os.path.basename(path)}: "
                f"{stats.reads:,} reads / {stats.writes:,} writes "  # type: ignore[union-attr]
                f"({_percent(stats.total, total_io)})"  # type: ignore[union-attr]
            )
    return "\n".join(lines)
