"""Live stderr progress/ETA heartbeat driven by the metrics registry.

The paper's accounting model predicts what a run *should* cost: every
iteration performs a bounded number of full edge scans (≤ 3 forward +
3 backward for 2P-SCC; the one-phase variants pay their scans on a
shrinking edge file), and one full scan over ``E`` live edges moves
``ceil(E · EDGE_BYTES / B)`` blocks.  The run loops publish their
position in that model as gauges (iteration, live nodes/edges, blocks
per scan) and the :class:`~repro.io.counter.IOCounter` observer feeds
the blocks-read counters — so a heartbeat can project completion
*mid-run* instead of post-mortem:

* progress = blocks read so far vs. the per-iteration scan budget;
* remaining work = a geometric series of future per-iteration budgets
  using the observed per-iteration edge-retention ratio
  ``rho = (live/initial)^(1/iteration)``;
* ETA = remaining blocks over the observed block-read rate.

Everything here *reads* the registry; nothing feeds back into the run,
so the heartbeat inherits the sampler's accounting transparency.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass
from typing import IO, Dict, Optional

from repro.constants import EDGE_BYTES
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "SCAN_BUDGETS",
    "Heartbeat",
    "Progress",
    "estimate_remaining_blocks",
    "format_heartbeat",
    "predicted_blocks_per_scan",
    "read_progress",
]

#: Predicted full edge scans per iteration, per algorithm — the paper's
#: per-iteration I/O budget.  2P-SCC: ≤ 3 forward + 3 backward scans
#: (Tree-Construction + Tree-Search over both orientations).  1P/1PB and
#: EM-SCC: one forward + one backward pass over the live edge file per
#: iteration.  DFS-SCC: Tarjan over fwd edges plus the transpose build
#: amortises to ~3 passes.  Unknown algorithms get no budget (no ETA).
SCAN_BUDGETS: Dict[str, int] = {
    "2P-SCC": 6,
    "1P-SCC": 2,
    "1PB-SCC": 2,
    "EM-SCC": 2,
    "DFS-SCC": 3,
}


def predicted_blocks_per_scan(num_edges: int, block_size: int) -> int:
    """Blocks one full pass over ``num_edges`` edges moves (ceil)."""
    if num_edges <= 0 or block_size <= 0:
        return 0
    return -(-num_edges * EDGE_BYTES // block_size)


@dataclass
class Progress:
    """One decoded position in the paper's cost model."""

    algorithm: str
    iteration: int
    live_nodes: int
    live_edges: int
    initial_edges: int
    blocks_read: int
    blocks_per_scan: int
    scan_budget: int
    #: Forked scan workers attached to the run (0 = serial).  The ETA
    #: needs no separate correction for them: workers change the
    #: *observed* block-read rate the projection divides by, never the
    #: counted block budget — but the line says how many are working so
    #: a rate is readable next to the machine that produced it.
    workers: int = 0

    @property
    def retention(self) -> Optional[float]:
        """Observed per-iteration edge-retention ratio ``rho``.

        ``None`` until one iteration has completed or when the graph is
        not shrinking (``rho >= 1`` would make the projection diverge).
        """
        if self.iteration < 1 or self.initial_edges <= 0:
            return None
        ratio = self.live_edges / self.initial_edges
        if ratio <= 0.0:
            return 0.0
        rho = ratio ** (1.0 / self.iteration)
        return rho if rho < 1.0 else None


def _series_name(series: str) -> str:
    return series.split("{", 1)[0]


def read_progress(snapshot: Dict[str, object],
                  algorithm: str = "") -> Optional[Progress]:
    """Decode a :meth:`MetricsRegistry.snapshot` into a :class:`Progress`.

    Returns ``None`` before the run loop has published its first
    position (no ``repro_run_iteration`` gauge yet).  ``algorithm``
    overrides the ``repro_run_info`` label when the caller already knows
    it (the CLI does).
    """
    gauges = snapshot.get("gauges")
    counters = snapshot.get("counters")
    if not isinstance(gauges, dict) or "repro_run_iteration" not in gauges:
        return None
    if not isinstance(counters, dict):
        counters = {}
    if not algorithm:
        for series in gauges:
            if _series_name(series) == "repro_run_info" and "algorithm=" in series:
                algorithm = series.split('algorithm="', 1)[1].split('"', 1)[0]
                break
    blocks_read = sum(
        int(value)  # type: ignore[arg-type]
        for series, value in counters.items()
        if _series_name(series) == "repro_io_read_blocks_total"
    )
    return Progress(
        algorithm=algorithm,
        iteration=int(gauges.get("repro_run_iteration", 0)),  # type: ignore[arg-type]
        live_nodes=int(gauges.get("repro_run_live_nodes", 0)),  # type: ignore[arg-type]
        live_edges=int(gauges.get("repro_run_live_edges", 0)),  # type: ignore[arg-type]
        initial_edges=int(gauges.get("repro_run_initial_edges", 0)),  # type: ignore[arg-type]
        blocks_read=blocks_read,
        blocks_per_scan=int(gauges.get("repro_run_blocks_per_scan", 0)),  # type: ignore[arg-type]
        scan_budget=int(gauges.get("repro_run_scan_budget", 0)),  # type: ignore[arg-type]
        workers=int(gauges.get("repro_parallel_workers", 0)),  # type: ignore[arg-type]
    )


def estimate_remaining_blocks(progress: Progress) -> Optional[int]:
    """Project the counted block reads still ahead of the run.

    The current iteration is budgeted at
    ``scan_budget · blocks_per_scan``; each later iteration shrinks by
    the observed retention ratio ``rho``, so the remaining work is the
    geometric series ``budget · bps · (1 + rho + rho² + …) =
    budget · bps / (1 - rho)``.  ``None`` when the model has no anchor
    yet (unknown budget, empty scan, or no completed iteration to
    estimate ``rho`` from).
    """
    if progress.scan_budget <= 0 or progress.blocks_per_scan <= 0:
        return None
    rho = progress.retention
    if rho is None:
        return None
    per_iteration = progress.scan_budget * progress.blocks_per_scan
    return int(per_iteration / (1.0 - rho))


def _fmt_duration(seconds: float) -> str:
    if seconds < 0:
        return "-"
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def format_heartbeat(progress: Progress, elapsed_s: float) -> str:
    """Render one heartbeat line from a decoded progress position."""
    parts = [
        f"[{_fmt_duration(elapsed_s)}]",
        progress.algorithm or "run",
    ]
    if progress.workers > 0:
        parts.append(f"x{progress.workers}w")
    parts += [
        f"iter {progress.iteration}",
        f"live {progress.live_nodes:,}n/{progress.live_edges:,}e",
        f"read {progress.blocks_read:,} blocks",
    ]
    if elapsed_s > 0 and progress.blocks_read > 0:
        rate = progress.blocks_read / elapsed_s
        parts.append(f"({rate:,.0f} blk/s)")
        remaining = estimate_remaining_blocks(progress)
        if remaining is not None:
            parts.append(f"eta ~{_fmt_duration(remaining / rate)}")
    elif progress.scan_budget > 0 and progress.blocks_per_scan > 0:
        parts.append(
            f"budget {progress.scan_budget * progress.blocks_per_scan:,} "
            "blocks/iter"
        )
    return " ".join(parts)


class Heartbeat:
    """Daemon thread printing one progress line per interval to stderr.

    Reads the registry, computes nothing the run depends on, and writes
    only to ``stream`` — fully decoupled from the algorithm it watches.
    Silent until the run loop publishes its first iteration gauge.
    """

    def __init__(self, registry: MetricsRegistry,
                 interval_s: float = 5.0,
                 stream: Optional[IO[str]] = None,
                 algorithm: str = "") -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.registry = registry
        self.interval_s = interval_s
        self.algorithm = algorithm
        self._stream = stream if stream is not None else sys.stderr
        self._stop = threading.Event()
        self._origin = time.perf_counter()
        # Not a reader thread: it formats registry gauges to stderr —
        # it never opens graph files, so nothing escapes the counter.
        self._thread = threading.Thread(  # repro: allow[SCAN001]
            target=self._loop, name="repro-heartbeat", daemon=True
        )
        self._thread.start()

    def beat_once(self) -> Optional[str]:
        """Emit one heartbeat line now; returns it (``None`` if silent)."""
        progress = read_progress(self.registry.snapshot(), self.algorithm)
        if progress is None:
            return None
        line = format_heartbeat(
            progress, time.perf_counter() - self._origin
        )
        print(line, file=self._stream, flush=True)
        return line

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.beat_once()
            except Exception:
                # A broken pipe on stderr must never take down the run.
                continue

    def close(self) -> None:
        """Stop the thread and emit one final line (if progress exists)."""
        self._stop.set()
        self._thread.join(timeout=5.0)
        try:
            self.beat_once()
        except Exception:
            pass

    def __enter__(self) -> "Heartbeat":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
