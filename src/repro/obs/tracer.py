"""Nestable, I/O-attributed run spans — the tracing core.

The paper's headline results are *accounting* claims: 2P-SCC spends at
most ``depth(G)`` sequential edge scans in Tree-Construction plus one
scan in Tree-Search, and 1P/1PB-SCC win by shrinking the on-disk graph
between iterations.  A :class:`Tracer` makes those claims observable
from a real run: every ``with tracer.span("pushdown-scan", iteration=3)``
region snapshots the shared :class:`~repro.io.counter.IOCounter` on
entry and exit, so each span carries its own
:class:`~repro.io.counter.IOStats` delta alongside wall time, named
event counters (pushdowns applied, edges eliminated, ...) and a
per-file breakdown of the blocks it moved.

The default tracer is the :data:`NULL_TRACER` singleton, whose hooks
are all no-ops returning shared objects — the disabled path allocates
nothing and never touches the I/O counter, so untraced runs behave
byte-identically to the pre-tracing code.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.io.counter import IOCounter, IOStats


@dataclass
class Span:
    """One named, timed, I/O-attributed region of a traced run.

    ``io`` is the delta of the bound counter between entry and exit, so
    a parent's delta includes its children's.  ``files`` maps backing
    file paths to the portion of ``io`` each file received (again
    inclusive of children).  ``counters`` holds algorithm-specific event
    tallies local to this span (not propagated to the parent).
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    depth: int
    attributes: Dict[str, object] = field(default_factory=dict)
    start_seconds: float = 0.0
    wall_seconds: float = 0.0
    io: IOStats = field(default_factory=IOStats)
    counters: Dict[str, int] = field(default_factory=dict)
    files: Dict[str, IOStats] = field(default_factory=dict)


class _SpanHandle:
    """Context manager opening one span on enter and sealing it on exit."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span")

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, object]):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._start(self._name, self._attributes)
        return self._span

    def __exit__(self, *exc_info: object) -> bool:
        self._tracer._finish()
        return False


class _NullHandle:
    """Reusable no-op context manager handed out by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_HANDLE = _NullHandle()


class Tracer:
    """Collects nestable spans with I/O deltas, wall time and counters.

    Parameters
    ----------
    sink:
        Optional callable invoked with every finished :class:`Span`
        (children before parents, i.e. exit order).  The JSONL
        :class:`~repro.obs.trace.TraceWriter` is designed to be used
        here; completed spans are also retained in :attr:`spans`.
    """

    #: Whether spans actually measure anything (``False`` on the null
    #: tracer, letting callers skip optional bookkeeping entirely).
    enabled: bool = True

    def __init__(self, sink: Optional[Callable[[Span], None]] = None) -> None:
        self.sink = sink
        #: Completed spans in exit order (children before parents).
        self.spans: List[Span] = []
        self._stack: List[Tuple[Span, Optional[IOStats], float]] = []
        self._counter: Optional[IOCounter] = None
        self._forward: Optional[
            Callable[[str, int, int, bool, Optional[str]], None]
        ] = None
        self._next_id = 0
        self._origin = time.perf_counter()

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    @contextmanager
    def attach(self, counter: IOCounter) -> Iterator["Tracer"]:
        """Bind to ``counter`` for the duration of the ``with`` block.

        While attached, spans diff this counter for their I/O deltas and
        the tracer installs itself as the counter's observer so every
        block transfer is attributed to the innermost open span's
        per-file breakdown.  A previously installed observer (e.g. the
        live metrics plane's) is *chained*, not shadowed: every event is
        forwarded to it before span attribution, and both the observer
        and the binding are restored on exit so nested or sequential
        runs compose.
        """
        previous_counter = self._counter
        previous_observer = counter.observer
        previous_forward = self._forward
        self._counter = counter
        self._forward = previous_observer
        counter.observer = self._observe
        try:
            yield self
        finally:
            counter.observer = previous_observer
            self._forward = previous_forward
            self._counter = previous_counter

    # ------------------------------------------------------------------
    # the span API
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: object) -> _SpanHandle:
        """Open a named child span of the innermost open span.

        Returns a context manager yielding the live :class:`Span`; the
        span's I/O delta and wall time are sealed when the ``with``
        block exits (including via an exception, so timed-out runs still
        produce well-formed traces).
        """
        return _SpanHandle(self, name, dict(attributes))

    def add(self, name: str, value: int = 1) -> None:
        """Add ``value`` to event counter ``name`` on the innermost span.

        Silently ignored when no span is open (or ``value`` is zero) so
        instrumented library code never needs to guard its event hooks.
        """
        if not self._stack or value == 0:
            return
        counters = self._stack[-1][0].counters
        counters[name] = counters.get(name, 0) + int(value)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _start(self, name: str, attributes: Dict[str, object]) -> Span:
        parent = self._stack[-1][0] if self._stack else None
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            depth=0 if parent is None else parent.depth + 1,
            attributes=attributes,
        )
        self._next_id += 1
        now = time.perf_counter()
        span.start_seconds = now - self._origin
        snapshot = None if self._counter is None else self._counter.snapshot()
        self._stack.append((span, snapshot, now))
        return span

    def _finish(self) -> None:
        span, snapshot, started = self._stack.pop()
        span.wall_seconds = time.perf_counter() - started
        if snapshot is not None and self._counter is not None:
            span.io = self._counter.since(snapshot)
        if self._stack:
            # Roll the per-file attribution up so every span's file map
            # covers its whole subtree, mirroring the inclusive io delta.
            parent_files = self._stack[-1][0].files
            for path, stats in span.files.items():
                existing = parent_files.get(path)
                parent_files[path] = (
                    stats.copy() if existing is None else existing + stats
                )
        self.spans.append(span)
        if self.sink is not None:
            self.sink(span)

    def _observe(
        self,
        kind: str,
        blocks: int,
        nbytes: int,
        sequential: bool,
        origin: Optional[str],
    ) -> None:
        if self._forward is not None:
            self._forward(kind, blocks, nbytes, sequential, origin)
        if not self._stack:
            return
        files = self._stack[-1][0].files
        key = origin if origin is not None else "<unattributed>"
        stats = files.get(key)
        if stats is None:
            stats = IOStats()
            files[key] = stats
        if kind == "read":
            if sequential:
                stats.seq_reads += blocks
            else:
                stats.rand_reads += blocks
            stats.bytes_read += nbytes
        elif kind == "write":
            if sequential:
                stats.seq_writes += blocks
            else:
                stats.rand_writes += blocks
            stats.bytes_written += nbytes
        elif kind == "cache_hit":
            stats.cache_hits += blocks
        elif kind == "cache_miss":
            stats.cache_misses += blocks
        elif kind == "prefetch":
            # ``sequential`` doubles as ``not stalled`` for this kind.
            stats.prefetched += blocks
            if not sequential:
                stats.prefetch_stalls += 1
        elif kind == "retry":
            stats.io_retries += blocks
        elif kind == "fault":
            stats.faults_injected += blocks


class NullTracer(Tracer):
    """The zero-cost default tracer: every hook is a no-op.

    ``span``/``attach`` return one shared do-nothing context manager and
    ``add`` returns immediately, so instrumented code pays a single
    attribute lookup plus a call on the disabled path and the I/O
    counter never gains an observer.
    """

    enabled = False

    def span(self, name: str, **attributes: object) -> _NullHandle:  # type: ignore[override]
        """Return the shared no-op context manager (yields ``None``)."""
        return _NULL_HANDLE

    def attach(self, counter: IOCounter) -> _NullHandle:  # type: ignore[override]
        """Return the shared no-op context manager; nothing is bound."""
        return _NULL_HANDLE

    def add(self, name: str, value: int = 1) -> None:
        """Discard the event."""
        return None


#: Shared no-op tracer used whenever no tracer is supplied.
NULL_TRACER = NullTracer()


def iteration_io(spans: List[Span]) -> Dict[int, IOStats]:
    """Aggregate span I/O deltas per ``iteration`` attribute.

    Only *outermost* iteration-tagged spans contribute (a span whose
    ancestor also carries an ``iteration`` attribute is a refinement of
    the same iteration, and its delta is already included in the
    ancestor's), so the result is exactly one :class:`IOStats` per
    iteration number — what
    :class:`~repro.core.base.IterationStats` records.
    """
    by_id = {span.span_id: span for span in spans}
    out: Dict[int, IOStats] = {}
    for span in spans:
        iteration = span.attributes.get("iteration")
        if not isinstance(iteration, int):
            continue
        parent_id = span.parent_id
        nested = False
        while parent_id is not None:
            parent = by_id.get(parent_id)
            if parent is None:
                break
            if isinstance(parent.attributes.get("iteration"), int):
                nested = True
                break
            parent_id = parent.parent_id
        if nested:
            continue
        current = out.get(iteration)
        out[iteration] = span.io.copy() if current is None else current + span.io
    return out
