"""Persisting the live metrics plane: JSONL snapshots, Prometheus files,
an optional scrape endpoint, and the background sampler thread.

Three consumers share one :class:`~repro.obs.metrics.MetricsRegistry`:

* :class:`MetricsWriter` — appends schema-versioned JSONL metric
  snapshots alongside the run's trace (``compute --metrics PATH``).
  Like the trace, the file is an *observability sidecar* outside the
  counted I/O model, which is why this module carries an ``IO001``
  allowlist entry in the contract analyzer; unlike the early trace
  writer it creates missing parent directories up front and fsyncs on
  close, so ``--metrics`` into a fresh directory cannot fail and a
  crash cannot truncate an already-closed file.
* :class:`MetricsSampler` — a low-overhead daemon thread that snapshots
  the registry every ``interval_s`` seconds.  The thread only *reads*
  instruments (and the run only writes its own), so enabling the
  sampler leaves counted I/O and partitions byte-identical — the
  bench-regression gate re-runs its golden cases with the sampler on to
  enforce exactly that.  Each tick can also rewrite a Prometheus
  text-format file next to the JSONL (crash-consistently, through the
  atomic-replace protocol) for node-exporter-style textfile collection.
* :class:`PrometheusEndpoint` — an optional stdlib HTTP server
  (``compute --metrics-port``) answering ``GET /metrics`` with the
  registry's current exposition, for live scraping of long runs.

Loading and validation (:func:`load_metrics` / :func:`validate_metrics`)
mirror the trace module's loader so CI can schema-check a snapshot file
the same way it checks traces.
"""

from __future__ import annotations

import http.server
import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.exceptions import ReproError
from repro.io.atomic import abort_replace, replace_file
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "MetricsData",
    "MetricsSampler",
    "MetricsWriter",
    "PrometheusEndpoint",
    "load_metrics",
    "validate_metrics",
    "write_prometheus_file",
]

#: Version stamped into every metrics file header; bump on incompatible
#: change (additive fields inside ``values`` do not require a bump).
METRICS_SCHEMA_VERSION = 1


def _ensure_parent(path: str) -> None:
    """Create the file's parent directory tree when it is missing."""
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)


class MetricsWriter:
    """Append schema-versioned JSONL metric snapshots to ``path``.

    Record types::

        {"type": "header", "schema_version": 1, "metadata": {...}}
        {"type": "sample", "seq": 0, "elapsed_s": 0.0, "values": {...}}
        {"type": "summary", "samples": N, "elapsed_s": ...}

    ``values`` is exactly :meth:`MetricsRegistry.snapshot` output.  The
    header is written eagerly (a run that dies mid-flight leaves a
    parseable prefix); :meth:`close` appends the summary, flushes, and
    fsyncs so the sealed file survives a crash immediately after.
    """

    def __init__(self, path: str,
                 metadata: Optional[Dict[str, object]] = None) -> None:
        self.path = path
        _ensure_parent(path)
        # Observability sidecar output, outside the counted I/O model
        # (module docstring); IO001-allowlisted like the trace writer.
        self._handle = open(  # repro: allow[IO001]
            path, "w", encoding="utf-8"
        )
        self._seq = 0
        self._elapsed = 0.0
        self._closed = False
        self._write({
            "type": "header",
            "schema_version": METRICS_SCHEMA_VERSION,
            "metadata": metadata or {},
        })

    def write_sample(self, elapsed_s: float,
                     values: Dict[str, object]) -> None:
        """Append one registry snapshot taken ``elapsed_s`` into the run."""
        if self._closed:
            raise ReproError(f"metrics writer for {self.path} is closed")
        self._write({
            "type": "sample",
            "seq": self._seq,
            "elapsed_s": elapsed_s,
            "values": values,
        })
        self._seq += 1
        self._elapsed = elapsed_s
        # Samples are the live feed: push each one to the OS so a tail
        # -f (or a crash post-mortem) sees the freshest state.
        self._handle.flush()

    def close(self) -> None:
        """Seal the file: summary record, flush, fsync, close."""
        if self._closed:
            return
        self._write({
            "type": "summary",
            "samples": self._seq,
            "elapsed_s": self._elapsed,
        })
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._closed = True

    @property
    def samples_written(self) -> int:
        return self._seq

    def __enter__(self) -> "MetricsWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _write(self, record: Dict[str, object]) -> None:
        self._handle.write(json.dumps(record))
        self._handle.write("\n")


def write_prometheus_file(registry: MetricsRegistry, path: str) -> None:
    """Atomically (re)write ``path`` with the registry's exposition.

    Staged through the atomic-replace protocol so a scraper (or a crash)
    never observes a torn half-written exposition.
    """
    _ensure_parent(path)
    staging = path + ".staging"
    try:
        with open(staging, "w", encoding="utf-8") as handle:  # repro: allow[IO001]
            handle.write(registry.to_prometheus())
        replace_file(staging, path)
    except BaseException:
        abort_replace(staging, path)
        raise


class MetricsSampler:
    """Background thread appending registry snapshots at a fixed cadence.

    Parameters
    ----------
    registry:
        The instrument table to sample.
    writer:
        Optional :class:`MetricsWriter` receiving one ``sample`` record
        per tick.
    interval_s:
        Cadence (default 1 s).  The thread wakes on a
        :class:`threading.Event` so :meth:`close` never waits a full
        interval.
    prom_path:
        Optional Prometheus textfile rewritten on every tick (and once
        more at close), via :func:`write_prometheus_file`.

    :meth:`close` takes one final sample before stopping so even a run
    shorter than one interval leaves a complete snapshot behind — and
    the final sample is what the gate's transparency re-run compares.
    """

    def __init__(self, registry: MetricsRegistry,
                 writer: Optional[MetricsWriter] = None,
                 interval_s: float = 1.0,
                 prom_path: Optional[str] = None) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.registry = registry
        self.writer = writer
        self.interval_s = interval_s
        self.prom_path = prom_path
        self._stop = threading.Event()
        self._origin = time.perf_counter()
        self._closed = False
        # Not a reader thread: it only snapshots in-memory counters —
        # it never touches graph files, so no I/O goes unaccounted.
        self._thread = threading.Thread(  # repro: allow[SCAN001]
            target=self._loop, name="repro-metrics-sampler", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    def sample_once(self) -> Dict[str, object]:
        """Take and persist one snapshot now; returns the values payload."""
        values = self.registry.snapshot()
        elapsed = time.perf_counter() - self._origin
        if self.writer is not None:
            self.writer.write_sample(elapsed, values)
        if self.prom_path is not None:
            write_prometheus_file(self.registry, self.prom_path)
        return values

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.sample_once()
            except Exception:
                # The sampler must never take down the run it observes;
                # a failed tick (e.g. disk full) is dropped, the next
                # tick retries.
                continue

    def close(self) -> None:
        """Stop the thread, take a final sample, seal the writer."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        self._thread.join(timeout=5.0)
        try:
            self.sample_once()
        finally:
            if self.writer is not None:
                self.writer.close()

    def __enter__(self) -> "MetricsSampler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _MetricsHandler(http.server.BaseHTTPRequestHandler):
    """Serves ``GET /metrics`` (+ health probes) from the bound registry."""

    registry: MetricsRegistry  # injected via the server instance

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        path = self.path.rstrip("/")
        health = getattr(self.server, "health", None)
        if path in ("/healthz", "/readyz"):
            if health is None:
                self.send_error(404, "no health provider configured")
                return
            payload = dict(health())
            ready = bool(payload.get("ready", False))
            status = 200 if (path == "/healthz" or ready) else 503
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        if path not in ("", "/metrics"):
            self.send_error(404, "only /metrics, /healthz, /readyz are served")
            return
        body = self.server.registry.to_prometheus().encode("utf-8")  # type: ignore[attr-defined]
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        """Silence per-request stderr chatter (scrapes are periodic)."""


class PrometheusEndpoint:
    """A minimal stdlib HTTP scrape endpoint for one registry.

    Binds ``127.0.0.1:port`` (``port=0`` picks a free port — the bound
    one is exposed as :attr:`port`) and serves ``GET /metrics`` from a
    daemon thread until :meth:`close`.

    ``health``, when given, is a zero-argument callable returning a
    JSON-serializable dict with at least a boolean ``ready`` key; it
    additionally enables ``GET /healthz`` (always 200 with the payload
    — liveness) and ``GET /readyz`` (200 when ready, 503 otherwise —
    readiness), the probe shape the service daemon exposes.
    """

    def __init__(self, registry: MetricsRegistry, port: int = 0,
                 host: str = "127.0.0.1",
                 health: Optional[Callable[[], Dict[str, object]]] = None,
                 ) -> None:
        self._server = http.server.ThreadingHTTPServer(
            (host, port), _MetricsHandler
        )
        self._server.registry = registry  # type: ignore[attr-defined]
        self._server.health = health  # type: ignore[attr-defined]
        self._server.daemon_threads = True
        self.host, self.port = self._server.server_address[:2]
        # Serves in-memory registry snapshots over HTTP; no file reads.
        self._thread = threading.Thread(  # repro: allow[SCAN001]
            target=self._server.serve_forever,
            name=f"repro-metrics-http:{self.port}",
            daemon=True,
        )
        self._thread.start()

    def close(self) -> None:
        """Shut the server down and join its thread."""
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "PrometheusEndpoint":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# loading and validation
# ----------------------------------------------------------------------

@dataclass
class MetricsData:
    """A parsed metrics file: header, samples in order, optional summary."""

    header: Dict[str, object]
    samples: List[Dict[str, object]]
    summary: Optional[Dict[str, object]]

    @property
    def schema_version(self) -> int:
        return int(self.header.get("schema_version", 0))  # type: ignore[arg-type]

    @property
    def metadata(self) -> Dict[str, object]:
        return dict(self.header.get("metadata", {}))  # type: ignore[arg-type]


def load_metrics(path: str) -> MetricsData:
    """Parse a JSONL metrics file written by :class:`MetricsWriter`.

    Unknown record types are skipped (forward compatibility); a missing
    or malformed header is a :class:`~repro.exceptions.ReproError`.
    """
    header: Optional[Dict[str, object]] = None
    samples: List[Dict[str, object]] = []
    summary: Optional[Dict[str, object]] = None
    # Metrics input is outside the counted I/O model (module docstring).
    with open(path, "r", encoding="utf-8") as handle:  # repro: allow[IO001]
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(f"{path}:{lineno}: not valid JSONL ({exc.msg})")
            if not isinstance(record, dict):
                raise ReproError(
                    f"{path}:{lineno}: metrics records must be objects"
                )
            kind = record.get("type")
            if kind == "header":
                if header is None:
                    header = record
            elif kind == "sample":
                samples.append(record)
            elif kind == "summary":
                summary = record
    if header is None:
        raise ReproError(f"{path}: not a metrics file (no header record)")
    return MetricsData(header=header, samples=samples, summary=summary)


def validate_metrics(data: MetricsData) -> List[str]:
    """Check a metrics file against the schema and its invariants.

    Returns human-readable problems (empty when valid).  Checked:

    * the header's schema version is supported;
    * ``seq`` is dense from 0 and ``elapsed_s`` never decreases;
    * every counter series is monotonically non-decreasing across
      samples (the counter/gauge distinction is schema, not convention);
    * histogram payloads are internally consistent (``count`` equals the
      ``+Inf`` cumulative bucket);
    * the summary, when present, declares the right sample count.
    """
    problems: List[str] = []
    if data.schema_version != METRICS_SCHEMA_VERSION:
        problems.append(
            f"unsupported schema_version {data.schema_version} "
            f"(expected {METRICS_SCHEMA_VERSION})"
        )
    last_elapsed = -1.0
    last_counters: Dict[str, float] = {}
    for position, sample in enumerate(data.samples):
        if sample.get("seq") != position:
            problems.append(
                f"sample {position}: seq {sample.get('seq')!r} is not dense"
            )
        elapsed = float(sample.get("elapsed_s", 0.0))  # type: ignore[arg-type]
        if elapsed < last_elapsed:
            problems.append(
                f"sample {position}: elapsed_s went backwards "
                f"({elapsed} < {last_elapsed})"
            )
        last_elapsed = elapsed
        values = sample.get("values")
        if not isinstance(values, dict):
            problems.append(f"sample {position}: no values payload")
            continue
        counters = values.get("counters", {})
        if isinstance(counters, dict):
            for series, value in counters.items():
                previous = last_counters.get(series)
                if previous is not None and float(value) < previous:  # type: ignore[arg-type]
                    problems.append(
                        f"sample {position}: counter {series} decreased "
                        f"({value} < {previous})"
                    )
                last_counters[series] = float(value)  # type: ignore[arg-type]
        histograms = values.get("histograms", {})
        if isinstance(histograms, dict):
            for series, payload in histograms.items():
                if not isinstance(payload, dict):
                    problems.append(
                        f"sample {position}: histogram {series} is not an object"
                    )
                    continue
                buckets = payload.get("buckets", {})
                inf = buckets.get("+Inf") if isinstance(buckets, dict) else None
                if inf != payload.get("count"):
                    problems.append(
                        f"sample {position}: histogram {series} count "
                        f"{payload.get('count')} != +Inf bucket {inf}"
                    )
    if data.summary is not None:
        declared = data.summary.get("samples")
        if declared != len(data.samples):
            problems.append(
                f"summary declares {declared} samples, file holds "
                f"{len(data.samples)}"
            )
    return problems
