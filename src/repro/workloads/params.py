"""The paper's Table 2 parameter grid, with a reproduction scale knob.

The paper sweeps 30M-70M node graphs; a pure-Python reproduction runs
the same sweeps at ``scale`` times the size (default 1/1000, i.e.
30K-70K nodes).  Scaling rules, chosen so every ratio the figures plot
is preserved:

* ``|V|``, the Massive-SCC size and the Large-SCC size scale linearly;
* the Small-SCC size (20-60 nodes) is already small and stays fixed,
  while the *number* of small SCCs scales;
* the number of Large-SCCs (30-70) and of Massive-SCCs (1) stay fixed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

#: Default reproduction scale relative to the paper's sizes.
DEFAULT_SCALE: float = 1e-3

#: Table 2 defaults (paper units, before scaling).
PAPER_DEFAULT_NODES: int = 30_000_000
PAPER_DEFAULT_DEGREE: int = 5
PAPER_DEFAULT_MASSIVE_SIZE: int = 400_000
PAPER_DEFAULT_LARGE_SIZE: int = 8_000
PAPER_DEFAULT_SMALL_SIZE: int = 40
PAPER_DEFAULT_NUM_LARGE: int = 50
PAPER_DEFAULT_NUM_SMALL: int = 10_000

#: The three synthetic families of Section 8.
SCC_CLASSES = ("massive", "large", "small")


@dataclass
class SyntheticParams:
    """One fully-resolved synthetic workload configuration."""

    scc_class: str
    num_nodes: int
    avg_degree: float
    massive_sccs: List[int] = field(default_factory=list)
    large_sccs: List[int] = field(default_factory=list)
    small_sccs: List[int] = field(default_factory=list)
    seed: int = 0

    def build(self):
        """Generate the graph (returns a PlantedGraph)."""
        from repro.workloads.synthetic import synthetic_graph

        return synthetic_graph(
            self.num_nodes,
            avg_degree=self.avg_degree,
            massive_sccs=self.massive_sccs,
            large_sccs=self.large_sccs,
            small_sccs=self.small_sccs,
            seed=self.seed,
        )


def _scaled(value: int, scale: float, minimum: int) -> int:
    return max(minimum, int(round(value * scale)))


def massive_scc_params(
    paper_nodes: int = PAPER_DEFAULT_NODES,
    degree: float = PAPER_DEFAULT_DEGREE,
    paper_scc_size: int = PAPER_DEFAULT_MASSIVE_SIZE,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
) -> SyntheticParams:
    """A Massive-SCC graph: one SCC of (scaled) 200K-600K nodes."""
    return SyntheticParams(
        scc_class="massive",
        num_nodes=_scaled(paper_nodes, scale, 1_000),
        avg_degree=degree,
        massive_sccs=[_scaled(paper_scc_size, scale, 16)],
        seed=seed,
    )


def large_scc_params(
    paper_nodes: int = PAPER_DEFAULT_NODES,
    degree: float = PAPER_DEFAULT_DEGREE,
    paper_scc_size: int = PAPER_DEFAULT_LARGE_SIZE,
    num_sccs: int = PAPER_DEFAULT_NUM_LARGE,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
) -> SyntheticParams:
    """A Large-SCC graph: ``num_sccs`` SCCs of (scaled) 4K-12K nodes."""
    return SyntheticParams(
        scc_class="large",
        num_nodes=_scaled(paper_nodes, scale, 1_000),
        avg_degree=degree,
        large_sccs=[_scaled(paper_scc_size, scale, 4)] * num_sccs,
        seed=seed,
    )


def small_scc_params(
    paper_nodes: int = PAPER_DEFAULT_NODES,
    degree: float = PAPER_DEFAULT_DEGREE,
    scc_size: int = PAPER_DEFAULT_SMALL_SIZE,
    paper_num_sccs: int = PAPER_DEFAULT_NUM_SMALL,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
) -> SyntheticParams:
    """A Small-SCC graph: (scaled) thousands of SCCs of 20-60 nodes."""
    return SyntheticParams(
        scc_class="small",
        num_nodes=_scaled(paper_nodes, scale, 1_000),
        avg_degree=degree,
        small_sccs=[scc_size] * _scaled(paper_num_sccs, scale, 2),
        seed=seed,
    )


def params_for_class(scc_class: str, **kwargs) -> SyntheticParams:
    """Dispatch to the right factory by class name."""
    factories = {
        "massive": massive_scc_params,
        "large": large_scc_params,
        "small": small_scc_params,
    }
    if scc_class not in factories:
        raise ValueError(f"unknown SCC class {scc_class!r}; use one of {SCC_CLASSES}")
    return factories[scc_class](**kwargs)
