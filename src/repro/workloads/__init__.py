"""Workload generators reproducing the paper's datasets.

* :mod:`~repro.workloads.synthetic` — the planted-SCC generator behind
  the paper's Massive-SCC / Large-SCC / Small-SCC graph families
  (Table 2), built so the planted component structure is *exact*:
  cross-component edges follow a hidden topological order and can never
  create unplanned SCCs.
* :mod:`~repro.workloads.realworld` — scaled synthetic stand-ins for
  cit-patents, go-uniprot, citeseerx and WEBSPAM-UK2007, matching the
  published node/edge counts (times ``scale``), average degrees and SCC
  profiles (see DESIGN.md for the substitution rationale).
* :mod:`~repro.workloads.params` — the Table 2 parameter grid.
"""

from repro.workloads.params import (
    SCC_CLASSES,
    SyntheticParams,
    massive_scc_params,
    large_scc_params,
    small_scc_params,
)
from repro.workloads.realworld import (
    cit_patents_like,
    citeseerx_like,
    go_uniprot_like,
    webspam_like,
)
from repro.workloads.streaming import planted_scc_graph_to_disk
from repro.workloads.synthetic import PlantedGraph, planted_scc_graph, synthetic_graph

__all__ = [
    "PlantedGraph",
    "planted_scc_graph",
    "planted_scc_graph_to_disk",
    "synthetic_graph",
    "SyntheticParams",
    "massive_scc_params",
    "large_scc_params",
    "small_scc_params",
    "SCC_CLASSES",
    "cit_patents_like",
    "go_uniprot_like",
    "citeseerx_like",
    "webspam_like",
]
