"""Scaled synthetic stand-ins for the paper's four real datasets.

The originals (SNAP cit-patents, go-uniprot, citeseerx, Yahoo
WEBSPAM-UK2007) are not redistributable inside this reproduction, so
each factory below generates a graph matching the published statistics
at ``scale`` times the size:

=================  ===========  =============  ======  =================
Dataset            nodes        edges          degree  SCC character
=================  ===========  =============  ======  =================
cit-patents        3,774,768    16,518,947     4.37    citation DAG
go-uniprot         6,967,956    34,770,235     4.99    ontology DAG
citeseerx          6,540,399    15,011,259     2.30    sparse citations
WEBSPAM-UK2007     105,895,908  3,738,733,568  35      giant SCC (65 %)
=================  ===========  =============  ======  =================

Following the paper, the three citation/ontology graphs get "+10 % more
edges" added uniformly at random, which is what creates their
non-trivial SCCs.  The webspam stand-in plants the published SCC
profile directly: one giant SCC holding ~64.8 % of all nodes, a second
SCC of ~0.22 %, and a long tail of small SCCs until ~80 % of the nodes
lie in some SCC.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.builders import add_random_edges
from repro.graph.digraph import Digraph
from repro.workloads.synthetic import PlantedGraph, planted_scc_graph

#: Published sizes of the real datasets (nodes, edges).
REAL_DATASET_STATS = {
    "cit-patents": (3_774_768, 16_518_947),
    "go-uniprot": (6_967_956, 34_770_235),
    "citeseerx": (6_540_399, 15_011_259),
    "webspam-uk2007": (105_895_908, 3_738_733_568),
}


def _scaled_counts(name: str, scale: float) -> tuple[int, float]:
    nodes, edges = REAL_DATASET_STATS[name]
    scaled_nodes = max(1_000, int(round(nodes * scale)))
    degree = edges / nodes
    return scaled_nodes, degree


def _citation_like(
    name: str,
    scale: float,
    extra_edge_fraction: float,
    seed: Optional[int],
) -> Digraph:
    """A citation-style DAG plus the paper's +10 % random edges.

    Citations point (mostly) backwards in time, so the base graph is a
    random DAG over a hidden arrival order with preferential attachment
    flavour; the added random edges create the SCCs the paper measures.
    """
    rng = np.random.default_rng(seed)
    num_nodes, degree = _scaled_counts(name, scale)
    num_edges = int(round(num_nodes * degree))

    # Sources arrive later than their targets: pick u uniformly, then a
    # target with a mild bias towards "old" (low-id) nodes.
    sources = rng.integers(1, num_nodes, size=num_edges, dtype=np.int64)
    fractions = rng.random(num_edges) ** 2.0  # bias towards older nodes
    targets = (fractions * sources).astype(np.int64)
    base = Digraph(num_nodes, np.column_stack((sources, targets)))
    return add_random_edges(base, extra_edge_fraction, rng=rng)


def cit_patents_like(scale: float = 1e-3, seed: Optional[int] = 0) -> Digraph:
    """Stand-in for SNAP cit-patents (+10 % random edges)."""
    return _citation_like("cit-patents", scale, 0.10, seed)


def go_uniprot_like(scale: float = 1e-3, seed: Optional[int] = 0) -> Digraph:
    """Stand-in for the go-uniprot ontology graph (+10 % random edges)."""
    return _citation_like("go-uniprot", scale, 0.10, seed)


def citeseerx_like(scale: float = 1e-3, seed: Optional[int] = 0) -> Digraph:
    """Stand-in for the citeseerx citation graph (+10 % random edges)."""
    return _citation_like("citeseerx", scale, 0.10, seed)


def webspam_like(
    scale: float = 1e-3,
    seed: Optional[int] = 0,
    avg_degree: Optional[float] = None,
) -> PlantedGraph:
    """Stand-in for WEBSPAM-UK2007 with the published SCC profile.

    The paper reports: 105,895,908 nodes; the biggest SCC has
    68,582,555 nodes (64.8 %), the second biggest 235,228 (0.22 %);
    193,670 SCCs in total covering 84,498,517 nodes (79.8 %); average
    degree 35.  ``avg_degree`` may be lowered for cheaper runs — the
    SCC profile is preserved.
    """
    rng = np.random.default_rng(seed)
    num_nodes, degree = _scaled_counts("webspam-uk2007", scale)
    if avg_degree is not None:
        degree = avg_degree

    giant = max(16, int(round(num_nodes * 0.648)))
    second = max(4, int(round(num_nodes * 0.00222)))
    target_covered = int(round(num_nodes * 0.798))

    sizes = [giant, second]
    covered = giant + second
    # Long tail of small SCCs (2-20 nodes) until ~80 % coverage.
    while covered < target_covered:
        size = int(rng.integers(2, 21))
        size = min(size, num_nodes - covered)
        if size < 2:
            break
        sizes.append(size)
        covered += size

    return planted_scc_graph(
        num_nodes,
        sizes,
        avg_degree=degree,
        intra_fraction=0.7,  # web cores are dense inside
        rng=rng,
    )
