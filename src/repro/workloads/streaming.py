"""Streamed graph generation: build huge planted-SCC graphs on disk.

The in-memory generator (:mod:`repro.workloads.synthetic`) holds the
whole edge array while building — fine at reproduction scale, but a
wall at the paper's scale.  This module writes the edge file in chunks
through an :class:`~repro.io.edgefile.EdgeFile`, holding only
``O(|V|)`` node-indexed arrays — the same semi-external budget the
algorithms themselves live under.

The construction mirrors :func:`~repro.workloads.synthetic.planted_scc_graph`
exactly (Hamiltonian cycles per planted component, extra intra edges,
cross edges oriented along a hidden topological order), so the SCC
ground truth is exact here too.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.constants import DEFAULT_BLOCK_SIZE
from repro.graph.diskgraph import DiskGraph
from repro.io.counter import IOCounter
from repro.io.edgefile import EdgeFile

#: Edges generated per chunk (bounded scratch memory).
DEFAULT_CHUNK_EDGES = 1 << 18


def planted_scc_graph_to_disk(
    num_nodes: int,
    component_sizes: Sequence[int],
    path: str,
    avg_degree: float = 5.0,
    intra_fraction: float = 0.5,
    seed: Optional[int] = None,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    counter: Optional[IOCounter] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Tuple[DiskGraph, np.ndarray]:
    """Generate a planted-SCC graph directly onto disk.

    Returns the :class:`DiskGraph` (edges at ``path``) and the exact
    ground-truth SCC labels.  Peak memory is a few ``|V|``-sized arrays
    plus one chunk of edges.
    """
    rng = np.random.default_rng(seed)
    sizes = np.asarray(list(component_sizes), dtype=np.int64)
    if (sizes < 2).any():
        raise ValueError("planted components must have at least 2 nodes")
    planted_total = int(sizes.sum())
    if planted_total > num_nodes:
        raise ValueError(
            f"component sizes sum to {planted_total} > num_nodes {num_nodes}"
        )
    if not 0 <= intra_fraction <= 1:
        raise ValueError("intra_fraction must be in [0, 1]")
    if chunk_edges <= 0:
        raise ValueError("chunk_edges must be positive")

    # --- O(|V|) bookkeeping: membership, labels, hidden rank.
    permutation = rng.permutation(num_nodes)
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    labels = np.empty(num_nodes, dtype=np.int64)
    for index in range(sizes.size):
        labels[permutation[offsets[index] : offsets[index + 1]]] = index
    singletons = permutation[planted_total:]
    labels[singletons] = np.arange(
        sizes.size, sizes.size + singletons.size, dtype=np.int64
    )
    num_components = sizes.size + singletons.size
    rank = rng.permutation(num_components)[labels]

    edge_file = EdgeFile.create(path, counter=counter, block_size=block_size)

    # --- mandatory Hamiltonian cycles, one component at a time.
    cycle_edges = 0
    for index in range(sizes.size):
        members = rng.permutation(
            permutation[offsets[index] : offsets[index + 1]]
        )
        edge_file.append(np.column_stack((members, np.roll(members, -1))))
        cycle_edges += int(sizes[index])

    target_edges = int(round(avg_degree * num_nodes))
    extra = max(0, target_edges - cycle_edges)
    intra_budget = int(round(extra * intra_fraction)) if sizes.size else 0
    cross_budget = extra - intra_budget

    # --- extra intra edges, proportional to component size, chunked.
    if intra_budget and planted_total:
        shares = np.floor(intra_budget * sizes / planted_total).astype(np.int64)
        for index, share in enumerate(shares.tolist()):
            members = permutation[offsets[index] : offsets[index + 1]]
            remaining = share
            while remaining > 0:
                take = min(remaining, chunk_edges)
                pairs = rng.integers(0, members.size, size=(take, 2))
                pairs = pairs[pairs[:, 0] != pairs[:, 1]]
                if pairs.size:
                    edge_file.append(members[pairs])
                remaining -= take

    # --- cross edges oriented along the hidden order, chunked.
    remaining = cross_budget
    while remaining > 0:
        take = min(remaining, chunk_edges)
        oversample = int(take * 1.3) + 16
        pairs = rng.integers(0, num_nodes, size=(oversample, 2), dtype=np.int64)
        a, b = pairs[:, 0], pairs[:, 1]
        distinct = labels[a] != labels[b]
        a, b = a[distinct], b[distinct]
        forward = rank[a] < rank[b]
        cross = np.where(
            forward[:, None], np.column_stack((a, b)), np.column_stack((b, a))
        )[:take]
        if cross.shape[0] == 0:
            break  # degenerate: everything in one component
        edge_file.append(cross)
        remaining -= cross.shape[0]

    edge_file.flush()
    return DiskGraph(num_nodes, edge_file), labels
