"""Planted-SCC graph generation (the paper's synthetic datasets).

The paper builds its synthetic graphs by "randomly selecting all nodes
in SCCs first, adding edges among the nodes in an SCC until all nodes
form an SCC, and finally adding additional random nodes and edges".

This generator implements that recipe with one refinement that makes
the planted structure *exact* and therefore testable: components are
placed on a hidden topological order, and every cross-component edge is
oriented along that order.  Cycles can then only exist inside planted
components, so the SCC decomposition of the generated graph is known by
construction:

* every planted component is strongly connected (it contains a random
  Hamiltonian cycle over its members plus extra random internal edges);
* every other node is a singleton SCC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.graph.digraph import Digraph


@dataclass
class PlantedGraph:
    """A generated graph together with its ground-truth SCC structure."""

    graph: Digraph
    #: Ground-truth SCC label of every node (singletons included).
    labels: np.ndarray
    #: Sizes of the planted (non-singleton) components.
    planted_sizes: np.ndarray

    @property
    def num_planted(self) -> int:
        """Number of planted multi-node SCCs."""
        return int(self.planted_sizes.size)


def _component_cycle_edges(members: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """A random Hamiltonian cycle making ``members`` strongly connected."""
    order = rng.permutation(members)
    return np.column_stack((order, np.roll(order, -1)))


def planted_scc_graph(
    num_nodes: int,
    component_sizes: Sequence[int],
    avg_degree: float = 5.0,
    intra_fraction: float = 0.5,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> PlantedGraph:
    """Generate a graph with exactly the given multi-node SCCs.

    Parameters
    ----------
    num_nodes:
        Total nodes; must cover ``sum(component_sizes)``.
    component_sizes:
        Sizes (each >= 2) of the SCCs to plant.
    avg_degree:
        Target ``|E| / |V|``.
    intra_fraction:
        Fraction of the *extra* edge budget (beyond the Hamiltonian
        cycles) spent inside planted components; the rest becomes
        order-respecting cross edges.
    rng / seed:
        Randomness source (``seed`` builds a fresh generator).
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    sizes = np.asarray(list(component_sizes), dtype=np.int64)
    if (sizes < 2).any():
        raise ValueError("planted components must have at least 2 nodes")
    planted_total = int(sizes.sum())
    if planted_total > num_nodes:
        raise ValueError(
            f"component sizes sum to {planted_total} > num_nodes {num_nodes}"
        )
    if not 0 <= intra_fraction <= 1:
        raise ValueError("intra_fraction must be in [0, 1]")

    # --- assign nodes to components; leftovers are singletons.
    permutation = rng.permutation(num_nodes)
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    members = [
        permutation[offsets[i] : offsets[i + 1]] for i in range(sizes.size)
    ]
    singletons = permutation[planted_total:]

    # --- ground-truth labels and the hidden topological rank.
    labels = np.empty(num_nodes, dtype=np.int64)
    for index, component in enumerate(members):
        labels[component] = index
    labels[singletons] = np.arange(
        sizes.size, sizes.size + singletons.size, dtype=np.int64
    )
    num_components = sizes.size + singletons.size
    rank_of_component = rng.permutation(num_components)
    rank = rank_of_component[labels]

    # --- mandatory cycles.
    edge_chunks = [
        _component_cycle_edges(component, rng) for component in members
    ]
    cycle_edges = int(sizes.sum())

    target_edges = int(round(avg_degree * num_nodes))
    extra = max(0, target_edges - cycle_edges)
    intra_budget = int(round(extra * intra_fraction)) if sizes.size else 0
    cross_budget = extra - intra_budget

    # --- extra intra-component edges, proportional to component size.
    if intra_budget and planted_total:
        shares = np.floor(intra_budget * sizes / planted_total).astype(np.int64)
        for component, share in zip(members, shares.tolist()):
            if share <= 0:
                continue
            pairs = rng.integers(0, component.size, size=(share, 2))
            pairs = pairs[pairs[:, 0] != pairs[:, 1]]
            if pairs.size:
                edge_chunks.append(component[pairs])

    # --- cross edges, oriented along the hidden topological order.
    if cross_budget:
        oversample = int(cross_budget * 1.3) + 16
        pairs = rng.integers(0, num_nodes, size=(oversample, 2), dtype=np.int64)
        a, b = pairs[:, 0], pairs[:, 1]
        distinct = labels[a] != labels[b]
        a, b = a[distinct], b[distinct]
        forward = rank[a] < rank[b]
        cross = np.where(forward[:, None], np.column_stack((a, b)),
                         np.column_stack((b, a)))
        edge_chunks.append(cross[:cross_budget])

    edges = (
        np.concatenate(edge_chunks)
        if edge_chunks
        else np.empty((0, 2), dtype=np.int64)
    )
    graph = Digraph(num_nodes, edges)
    return PlantedGraph(graph=graph, labels=labels, planted_sizes=sizes)


def synthetic_graph(
    num_nodes: int,
    avg_degree: float = 5.0,
    massive_sccs: Sequence[int] = (),
    large_sccs: Sequence[int] = (),
    small_sccs: Sequence[int] = (),
    intra_fraction: float = 0.5,
    seed: Optional[int] = None,
) -> PlantedGraph:
    """The paper's synthetic family: massive + large + small SCCs.

    Thin wrapper over :func:`planted_scc_graph` taking the three SCC
    classes of Table 2 as separate size lists.
    """
    component_sizes = list(massive_sccs) + list(large_sccs) + list(small_sccs)
    return planted_scc_graph(
        num_nodes,
        component_sizes,
        avg_degree=avg_degree,
        intra_fraction=intra_fraction,
        seed=seed,
    )
