"""Shared constants mirroring the paper's experimental setup (Section 8).

The paper stores a node id in ``b = 4`` bytes, uses a disk block size of
``B = 64`` KiB, and gives each algorithm a default memory budget of
``M = 4 * (3 |V|) + B`` bytes — enough for the three ``|V|``-sized arrays
of a BR+-Tree plus a single disk block.
"""

from __future__ import annotations

import numpy as np

#: Bytes used to store a single node id (paper Section 8: ``b = 4``).
NODE_BYTES: int = 4

#: Bytes used to store a single directed edge (two node ids).
EDGE_BYTES: int = 2 * NODE_BYTES

#: Default disk block size in bytes (paper Section 8: 64 KB).
DEFAULT_BLOCK_SIZE: int = 64 * 1024

#: Edge records that fit in one default block.
EDGES_PER_BLOCK: int = DEFAULT_BLOCK_SIZE // EDGE_BYTES

#: numpy dtype for a node id on disk.
NODE_DTYPE = np.uint32

#: numpy dtype for signed node indices in memory (parent arrays use -1
#: as the virtual-root sentinel, so they must be signed).
INDEX_DTYPE = np.int64

#: Sentinel parent value: the node hangs off the virtual root ``v0``.
VIRTUAL_ROOT: int = -1

#: Default early-acceptance threshold tau as a fraction of |V|
#: (paper Section 8: tau = 0.5% of |V(G)|).
DEFAULT_TAU_FRACTION: float = 0.005

#: Default early-rejection period in iterations (paper Section 8:
#: "early rejection is processed in every 5 iterations").
DEFAULT_REJECTION_PERIOD: int = 5

#: Default lookahead depth (in blocks) of the background prefetcher
#: when prefetching is enabled without an explicit depth.
DEFAULT_PREFETCH_DEPTH: int = 8

#: Default page-cache capacity in blocks.  Zero disables the cache, the
#: conservative default: a run then counts exactly the block reads the
#: paper's model predicts, with no resident-payload memory beyond the
#: scan buffer.
DEFAULT_CACHE_BLOCKS: int = 0
