"""repro — I/O-efficient semi-external SCC computation for massive graphs.

A production-style reproduction of *"I/O Efficient: Computing SCCs in
Massive Graphs"* (Zhang, Yu, Qin, Chang, Lin — SIGMOD 2013).

Quickstart::

    import numpy as np
    from repro import Digraph, compute_sccs

    edges = np.array([[0, 1], [1, 2], [2, 0], [2, 3]])
    graph = Digraph(4, edges)
    result = compute_sccs(graph, algorithm="1PB-SCC")
    print(result.num_sccs, result.stats.io.total)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from __future__ import annotations

import os
import tempfile
from typing import Optional, Union

import numpy as np

from repro.constants import DEFAULT_BLOCK_SIZE
from repro.core import (
    ALGORITHMS,
    certify_scc_partition,
    DFSSCC,
    EMSCC,
    OnePhaseBatchSCC,
    OnePhaseSCC,
    SCCAlgorithm,
    SCCResult,
    TwoPhaseSCC,
)
from repro.exceptions import (
    AlgorithmTimeout,
    ContractViolation,
    GraphFormatError,
    MemoryBudgetError,
    NonTermination,
    ReproError,
    ValidationError,
)
from repro.graph import Digraph, DiskGraph
from repro.inmemory import kosaraju_scc, tarjan_scc
from repro.io import EdgeFile, IOCounter, IOStats, MemoryModel
from repro.obs import NullTracer, Tracer, TraceWriter

__version__ = "1.0.0"

__all__ = [
    "Digraph",
    "DiskGraph",
    "EdgeFile",
    "IOCounter",
    "IOStats",
    "MemoryModel",
    "SCCAlgorithm",
    "SCCResult",
    "DFSSCC",
    "EMSCC",
    "TwoPhaseSCC",
    "OnePhaseSCC",
    "OnePhaseBatchSCC",
    "ALGORITHMS",
    "Tracer",
    "NullTracer",
    "TraceWriter",
    "compute_sccs",
    "certify_scc_partition",
    "tarjan_scc",
    "kosaraju_scc",
    "ReproError",
    "GraphFormatError",
    "MemoryBudgetError",
    "AlgorithmTimeout",
    "NonTermination",
    "ValidationError",
    "ContractViolation",
    "__version__",
]


def compute_sccs(
    graph: Union[Digraph, DiskGraph, np.ndarray],
    algorithm: Union[str, SCCAlgorithm] = "1PB-SCC",
    num_nodes: Optional[int] = None,
    memory: Optional[MemoryModel] = None,
    time_limit: Optional[float] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    workdir: Optional[str] = None,
    tracer: Optional[Tracer] = None,
    prefetch_depth: int = 0,
    cache_blocks: int = 0,
    kernels: Optional[str] = None,
    workers: int = 0,
) -> SCCResult:
    """Compute all SCCs with one of the paper's algorithms.

    Parameters
    ----------
    graph:
        A :class:`Digraph`, a :class:`DiskGraph`, or a raw ``(m, 2)``
        edge array (``num_nodes`` required in that case).  In-memory
        inputs are materialised into a temporary on-disk edge file so
        the semi-external access pattern — and the I/O counting — is
        real.
    algorithm:
        Paper name (``"1PB-SCC"``, ``"1P-SCC"``, ``"2P-SCC"``,
        ``"DFS-SCC"``, ``"EM-SCC"``) or a configured
        :class:`SCCAlgorithm` instance.
    memory / time_limit / block_size / workdir:
        Run configuration; the paper's defaults when omitted.
    tracer:
        Optional :class:`Tracer` for structured run tracing (phase
        spans, per-scan I/O deltas); untraced runs are unaffected.
    prefetch_depth / cache_blocks:
        Optional I/O policy: background block prefetch lookahead and a
        counted LRU page cache over decoded blocks (see
        :meth:`SCCAlgorithm.run`).  Both default to off, preserving the
        paper-faithful direct-read path.
    kernels:
        Scan-kernel backend: ``"vector"`` (default) classifies edge
        batches against an Euler-tour snapshot of the spanning tree;
        ``"scalar"`` runs the paper-literal per-edge loops.  The choice
        changes CPU time only — labels, iterations and counted I/O are
        identical either way (see :meth:`SCCAlgorithm.run`).
    workers:
        When positive, stripe edge-scan batches across this many forked
        worker processes (see :mod:`repro.parallel`).  Like ``kernels``
        this changes wall time only: partitions, iteration counts and
        counted I/O are byte-identical to a serial run.
    """
    if isinstance(algorithm, str):
        if algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
            )
        algorithm = ALGORITHMS[algorithm]()

    if isinstance(graph, DiskGraph):
        return algorithm.run(
            graph, memory=memory, time_limit=time_limit, tracer=tracer,
            prefetch_depth=prefetch_depth, cache_blocks=cache_blocks,
            kernels=kernels, workers=workers,
        )

    if isinstance(graph, np.ndarray):
        if num_nodes is None:
            raise ValueError("num_nodes is required for raw edge arrays")
        graph = Digraph(num_nodes, graph)

    cleanup_dir: Optional[tempfile.TemporaryDirectory] = None
    if workdir is None:
        cleanup_dir = tempfile.TemporaryDirectory(prefix="repro-scc-")
        workdir = cleanup_dir.name
    try:
        disk = DiskGraph.from_digraph(
            graph,
            os.path.join(workdir, "edges.bin"),
            block_size=block_size,
        )
        try:
            return algorithm.run(
                disk, memory=memory, time_limit=time_limit, tracer=tracer,
                prefetch_depth=prefetch_depth, cache_blocks=cache_blocks,
                kernels=kernels, workers=workers,
            )
        finally:
            disk.unlink()
    finally:
        if cleanup_dir is not None:
            cleanup_dir.cleanup()
