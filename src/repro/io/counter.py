"""Block-level I/O accounting.

Every disk transfer performed by the library flows through an
:class:`IOCounter`.  The counter distinguishes sequential from random
block accesses because the paper's central argument is that bounded
*sequential scans* beat the random accesses of externalized DFS.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOStats:
    """An immutable-ish snapshot of block-transfer counts.

    Attributes mirror the I/O model: each unit is one block of ``B``
    bytes moved between disk and memory.
    """

    seq_reads: int = 0
    seq_writes: int = 0
    rand_reads: int = 0
    rand_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def reads(self) -> int:
        """Total block reads (sequential + random)."""
        return self.seq_reads + self.rand_reads

    @property
    def writes(self) -> int:
        """Total block writes (sequential + random)."""
        return self.seq_writes + self.rand_writes

    @property
    def total(self) -> int:
        """Total block transfers — the paper's ``# of I/Os`` metric."""
        return self.reads + self.writes

    def __sub__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            seq_reads=self.seq_reads - other.seq_reads,
            seq_writes=self.seq_writes - other.seq_writes,
            rand_reads=self.rand_reads - other.rand_reads,
            rand_writes=self.rand_writes - other.rand_writes,
            bytes_read=self.bytes_read - other.bytes_read,
            bytes_written=self.bytes_written - other.bytes_written,
        )

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            seq_reads=self.seq_reads + other.seq_reads,
            seq_writes=self.seq_writes + other.seq_writes,
            rand_reads=self.rand_reads + other.rand_reads,
            rand_writes=self.rand_writes + other.rand_writes,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
        )

    def copy(self) -> "IOStats":
        """Return an independent copy of the current counts."""
        return IOStats(
            seq_reads=self.seq_reads,
            seq_writes=self.seq_writes,
            rand_reads=self.rand_reads,
            rand_writes=self.rand_writes,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
        )


@dataclass
class IOCounter:
    """Mutable accumulator of block transfers.

    One counter is shared by every :class:`~repro.io.blocks.BlockDevice`
    and :class:`~repro.io.edgefile.EdgeFile` participating in a run, so
    ``counter.stats.total`` is directly comparable to the ``# of I/Os``
    columns of the paper's Table 3 and figures.
    """

    stats: IOStats = field(default_factory=IOStats)

    def record_read(self, blocks: int, nbytes: int, sequential: bool = True) -> None:
        """Tally ``blocks`` block reads moving ``nbytes`` payload bytes."""
        if blocks < 0 or nbytes < 0:
            raise ValueError("I/O quantities must be non-negative")
        if sequential:
            self.stats.seq_reads += blocks
        else:
            self.stats.rand_reads += blocks
        self.stats.bytes_read += nbytes

    def record_write(self, blocks: int, nbytes: int, sequential: bool = True) -> None:
        """Tally ``blocks`` block writes moving ``nbytes`` payload bytes."""
        if blocks < 0 or nbytes < 0:
            raise ValueError("I/O quantities must be non-negative")
        if sequential:
            self.stats.seq_writes += blocks
        else:
            self.stats.rand_writes += blocks
        self.stats.bytes_written += nbytes

    def snapshot(self) -> IOStats:
        """Return a copy of the current counts for later diffing."""
        return self.stats.copy()

    def since(self, snapshot: IOStats) -> IOStats:
        """Return the counts accumulated since ``snapshot`` was taken."""
        return self.stats - snapshot

    def reset(self) -> None:
        """Zero all counters."""
        self.stats = IOStats()
