"""Block-level I/O accounting.

Every disk transfer performed by the library flows through an
:class:`IOCounter`.  The counter distinguishes sequential from random
block accesses because the paper's central argument is that bounded
*sequential scans* beat the random accesses of externalized DFS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.io.faults import FaultInjector

#: Signature of an :attr:`IOCounter.observer` callback:
#: ``(kind, blocks, nbytes, sequential, origin)`` where ``kind`` is
#: ``"read"``, ``"write"``, ``"cache_hit"``, ``"cache_miss"``,
#: ``"prefetch"``, ``"retry"`` or ``"fault"`` and ``origin`` is the
#: backing file's path (``None`` when the caller did not attribute the
#: transfer).  Only ``"read"`` and ``"write"`` carry charged block
#: transfers.
IOObserver = Callable[[str, int, int, bool, Optional[str]], None]


@dataclass
class IOStats:
    """An immutable-ish snapshot of block-transfer counts.

    Attributes mirror the I/O model: each unit is one block of ``B``
    bytes moved between disk and memory.
    """

    seq_reads: int = 0
    seq_writes: int = 0
    rand_reads: int = 0
    rand_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    #: Page-cache hits: block payloads served from memory.  Deliberately
    #: *not* part of :attr:`reads` — no bytes moved between disk and
    #: memory, so the model charges nothing.
    cache_hits: int = 0
    #: Page-cache misses: lookups that fell through to a (charged) disk
    #: read.  ``cache_hits + cache_misses`` is the lookup volume.
    cache_misses: int = 0
    #: Blocks delivered through the prefetch pipeline.  Each of these is
    #: *also* tallied as a normal block read at dequeue time; this field
    #: only measures how much of the read traffic was pipelined.
    prefetched: int = 0
    #: Prefetched dequeues where the consumer had to wait for the reader
    #: thread (the pipeline failed to hide that block's latency).
    prefetch_stalls: int = 0
    #: Re-attempts of block transfers after a transient failure.  Failed
    #: attempts are *never* charged as block reads — only the attempt
    #: that succeeds is — so a retried run's charged counts equal the
    #: fault-free run's plus exactly this tally.
    io_retries: int = 0
    #: Faults the injection harness actually fired (transient read
    #: errors, torn writes, simulated crashes).  Zero on any run without
    #: an active :class:`~repro.io.faults.FaultInjector`.
    faults_injected: int = 0

    @property
    def reads(self) -> int:
        """Total block reads (sequential + random)."""
        return self.seq_reads + self.rand_reads

    @property
    def writes(self) -> int:
        """Total block writes (sequential + random)."""
        return self.seq_writes + self.rand_writes

    @property
    def total(self) -> int:
        """Total block transfers — the paper's ``# of I/Os`` metric."""
        return self.reads + self.writes

    def __sub__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            seq_reads=self.seq_reads - other.seq_reads,
            seq_writes=self.seq_writes - other.seq_writes,
            rand_reads=self.rand_reads - other.rand_reads,
            rand_writes=self.rand_writes - other.rand_writes,
            bytes_read=self.bytes_read - other.bytes_read,
            bytes_written=self.bytes_written - other.bytes_written,
            cache_hits=self.cache_hits - other.cache_hits,
            cache_misses=self.cache_misses - other.cache_misses,
            prefetched=self.prefetched - other.prefetched,
            prefetch_stalls=self.prefetch_stalls - other.prefetch_stalls,
            io_retries=self.io_retries - other.io_retries,
            faults_injected=self.faults_injected - other.faults_injected,
        )

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            seq_reads=self.seq_reads + other.seq_reads,
            seq_writes=self.seq_writes + other.seq_writes,
            rand_reads=self.rand_reads + other.rand_reads,
            rand_writes=self.rand_writes + other.rand_writes,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
            prefetched=self.prefetched + other.prefetched,
            prefetch_stalls=self.prefetch_stalls + other.prefetch_stalls,
            io_retries=self.io_retries + other.io_retries,
            faults_injected=self.faults_injected + other.faults_injected,
        )

    def copy(self) -> "IOStats":
        """Return an independent copy of the current counts."""
        return IOStats(
            seq_reads=self.seq_reads,
            seq_writes=self.seq_writes,
            rand_reads=self.rand_reads,
            rand_writes=self.rand_writes,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            prefetched=self.prefetched,
            prefetch_stalls=self.prefetch_stalls,
            io_retries=self.io_retries,
            faults_injected=self.faults_injected,
        )

    def to_dict(self) -> Dict[str, int]:
        """Serialize the raw fields (trace schema / run reports).

        The six block-transfer fields are always present — they *are*
        the v1 trace schema.  The cache/prefetch tallies are additive
        schema: emitted only when nonzero, so traces from runs without
        caching or prefetching are byte-identical to pre-cache traces.
        """
        payload = {
            "seq_reads": self.seq_reads,
            "seq_writes": self.seq_writes,
            "rand_reads": self.rand_reads,
            "rand_writes": self.rand_writes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }
        if self.cache_hits:
            payload["cache_hits"] = self.cache_hits
        if self.cache_misses:
            payload["cache_misses"] = self.cache_misses
        if self.prefetched:
            payload["prefetched"] = self.prefetched
        if self.prefetch_stalls:
            payload["prefetch_stalls"] = self.prefetch_stalls
        if self.io_retries:
            payload["io_retries"] = self.io_retries
        if self.faults_injected:
            payload["faults_injected"] = self.faults_injected
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, int]) -> "IOStats":
        """Rebuild an :class:`IOStats` from :meth:`to_dict` output."""
        return cls(
            seq_reads=int(payload.get("seq_reads", 0)),
            seq_writes=int(payload.get("seq_writes", 0)),
            rand_reads=int(payload.get("rand_reads", 0)),
            rand_writes=int(payload.get("rand_writes", 0)),
            bytes_read=int(payload.get("bytes_read", 0)),
            bytes_written=int(payload.get("bytes_written", 0)),
            cache_hits=int(payload.get("cache_hits", 0)),
            cache_misses=int(payload.get("cache_misses", 0)),
            prefetched=int(payload.get("prefetched", 0)),
            prefetch_stalls=int(payload.get("prefetch_stalls", 0)),
            io_retries=int(payload.get("io_retries", 0)),
            faults_injected=int(payload.get("faults_injected", 0)),
        )


@dataclass
class IOCounter:
    """Mutable accumulator of block transfers.

    One counter is shared by every :class:`~repro.io.blocks.BlockDevice`
    and :class:`~repro.io.edgefile.EdgeFile` participating in a run, so
    ``counter.stats.total`` is directly comparable to the ``# of I/Os``
    columns of the paper's Table 3 and figures.
    """

    stats: IOStats = field(default_factory=IOStats)
    #: Optional tap notified after every tallied transfer.  The tracing
    #: layer (:mod:`repro.obs`) installs itself here to attribute I/O to
    #: spans and files; the default ``None`` keeps the counting hot path
    #: a single predictable branch.
    observer: Optional[IOObserver] = field(default=None, repr=False, compare=False)
    #: Optional :class:`~repro.io.faults.FaultInjector` consulted by
    #: every :class:`~repro.io.blocks.BlockDevice` sharing this counter.
    #: Run-scoped rather than global so concurrent runs fault
    #: independently; ``None`` (the default) costs one predictable
    #: branch on the hot path.
    fault_injector: Optional["FaultInjector"] = field(
        default=None, repr=False, compare=False
    )

    def record_read(
        self,
        blocks: int,
        nbytes: int,
        sequential: bool = True,
        origin: Optional[str] = None,
    ) -> None:
        """Tally ``blocks`` block reads moving ``nbytes`` payload bytes.

        ``origin`` names the backing file for per-file attribution by an
        installed :attr:`observer`; it does not affect the tallies.
        """
        if blocks < 0 or nbytes < 0:
            raise ValueError("I/O quantities must be non-negative")
        if sequential:
            self.stats.seq_reads += blocks
        else:
            self.stats.rand_reads += blocks
        self.stats.bytes_read += nbytes
        if self.observer is not None:
            self.observer("read", blocks, nbytes, sequential, origin)

    def record_write(
        self,
        blocks: int,
        nbytes: int,
        sequential: bool = True,
        origin: Optional[str] = None,
    ) -> None:
        """Tally ``blocks`` block writes moving ``nbytes`` payload bytes.

        ``origin`` names the backing file for per-file attribution by an
        installed :attr:`observer`; it does not affect the tallies.
        """
        if blocks < 0 or nbytes < 0:
            raise ValueError("I/O quantities must be non-negative")
        if sequential:
            self.stats.seq_writes += blocks
        else:
            self.stats.rand_writes += blocks
        self.stats.bytes_written += nbytes
        if self.observer is not None:
            self.observer("write", blocks, nbytes, sequential, origin)

    def record_cache_hit(
        self, blocks: int, nbytes: int, origin: Optional[str] = None
    ) -> None:
        """Tally ``blocks`` block lookups served from the page cache.

        Hits move no bytes between disk and memory, so they are *not*
        charged as block reads — the model's read tallies stay exactly
        what a cacheless run would count minus the skipped transfers.
        """
        if blocks < 0 or nbytes < 0:
            raise ValueError("I/O quantities must be non-negative")
        self.stats.cache_hits += blocks
        if self.observer is not None:
            self.observer("cache_hit", blocks, nbytes, True, origin)

    def record_cache_miss(self, blocks: int, origin: Optional[str] = None) -> None:
        """Tally ``blocks`` cache lookups that fell through to disk.

        The disk read that satisfies the miss is charged separately via
        :meth:`record_read`; this tally only sizes the lookup traffic.
        """
        if blocks < 0:
            raise ValueError("I/O quantities must be non-negative")
        self.stats.cache_misses += blocks
        if self.observer is not None:
            self.observer("cache_miss", blocks, 0, True, origin)

    def record_prefetch(
        self, blocks: int, stalled: bool = False, origin: Optional[str] = None
    ) -> None:
        """Tally ``blocks`` block reads delivered through the prefetcher.

        Pipelined blocks are *also* charged as ordinary reads when the
        consumer dequeues them; this tally measures pipeline coverage,
        and ``stalled`` marks dequeues where the pipeline was empty.
        """
        if blocks < 0:
            raise ValueError("I/O quantities must be non-negative")
        self.stats.prefetched += blocks
        if stalled:
            self.stats.prefetch_stalls += 1
        if self.observer is not None:
            # The ``sequential`` slot doubles as ``not stalled`` so the
            # observer can attribute stalls per-file without a wider API.
            self.observer("prefetch", blocks, 0, not stalled, origin)

    def record_retry(self, blocks: int, origin: Optional[str] = None) -> None:
        """Tally ``blocks`` transfer re-attempts after transient failures.

        The failed attempts moved no (trusted) data, so nothing is added
        to the read/write tallies — retried runs stay directly
        comparable to fault-free ones via this separate counter.
        """
        if blocks < 0:
            raise ValueError("I/O quantities must be non-negative")
        self.stats.io_retries += blocks
        if self.observer is not None:
            self.observer("retry", blocks, 0, True, origin)

    def record_fault(self, count: int, origin: Optional[str] = None) -> None:
        """Tally ``count`` injected faults fired by the chaos harness."""
        if count < 0:
            raise ValueError("I/O quantities must be non-negative")
        self.stats.faults_injected += count
        if self.observer is not None:
            self.observer("fault", count, 0, True, origin)

    def snapshot(self) -> IOStats:
        """Return a copy of the current counts for later diffing."""
        return self.stats.copy()

    def since(self, snapshot: IOStats) -> IOStats:
        """Return the counts accumulated since ``snapshot`` was taken."""
        return self.stats - snapshot

    def reset(self) -> None:
        """Zero all counters."""
        self.stats = IOStats()
