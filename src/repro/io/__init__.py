"""Simulated external-memory I/O substrate.

The paper evaluates algorithms in the classic I/O model of Aggarwal and
Vitter: memory of size ``M``, disk blocks of size ``B``, and the cost of
an algorithm is the number of blocks transferred.  This subpackage
provides that model as a library:

* :class:`~repro.io.counter.IOCounter` / :class:`~repro.io.counter.IOStats`
  — the single choke-point through which every block transfer is tallied.
* :class:`~repro.io.blocks.BlockDevice` — block-granular access to a real
  file on disk.
* :class:`~repro.io.edgefile.EdgeFile` — an on-disk binary edge list that
  can only be scanned sequentially (the access pattern every semi-external
  algorithm in the paper is built around).
* :class:`~repro.io.memory.MemoryModel` — the ``M``/``B`` budget and the
  semi-external invariant ``c|V| <= M << ||G||``.
* :mod:`~repro.io.extsort` — external k-way merge sort with I/O
  accounting, used to reverse and regroup edge files.
* :mod:`~repro.io.prefetch` — the background block prefetcher and the
  counted page cache (hits tallied, never charged as block reads).
* :mod:`~repro.io.atomic` — crash-consistent file replacement (stage,
  fsync, rename, directory fsync) behind every graph rewrite.
* :mod:`~repro.io.faults` — the deterministic fault-injection harness
  (transient read errors, torn writes, simulated crashes) and the
  bounded :class:`~repro.io.faults.RetryPolicy`.
* :mod:`~repro.io.checkpoint` — O(|V|) scan-boundary snapshots that
  let a killed run resume from its last completed scan.
"""

from repro.io.blocks import BlockDevice
from repro.io.counter import IOCounter, IOStats
from repro.io.edgefile import EdgeFile
from repro.io.extsort import external_sort_edges
from repro.io.faults import (
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    SimulatedCrash,
    TornWriteError,
    TransientIOError,
)
from repro.io.memory import MemoryModel
from repro.io.prefetch import BlockPrefetcher, PageCache

__all__ = [
    "BlockDevice",
    "BlockPrefetcher",
    "FaultInjector",
    "FaultPlan",
    "IOCounter",
    "IOStats",
    "EdgeFile",
    "MemoryModel",
    "PageCache",
    "RetryPolicy",
    "SimulatedCrash",
    "TornWriteError",
    "TransientIOError",
    "external_sort_edges",
]
