"""Scan-boundary checkpoints: O(|V|) snapshots that survive a crash.

The semi-external constraint is what makes resume cheap: between edge
scans, the *entire* live state of every algorithm in :mod:`repro.core`
is a handful of node-sized arrays (tree parents/depths/links, the
union-find, a few counters) — the edge data on disk is never mutated
in place thanks to the atomic-rewrite protocol.  A
:class:`CheckpointSession` snapshots those arrays to a single versioned
``checkpoint.npz`` after every completed scan, so a killed multi-hour
run restarts from its last boundary instead of from zero.

Layout: one ``.npz`` holding the algorithm's state arrays plus a
``__meta__`` JSON header::

    {"version": 1, "algorithm": "1P-SCC", "fingerprint": "sha256...",
     "boundary": 7, "io": {...IOStats...}, "meta": {...algorithm state...}}

* ``fingerprint`` binds the checkpoint to one (graph, algorithm,
  block-size) combination — resuming against a different input fails
  loudly with :class:`~repro.exceptions.CheckpointError` rather than
  silently producing a wrong partition.
* ``io`` is the counted I/O spent before the crash; the resumed run
  adds it back so the final tallies cover the whole logical run.
* The file itself is written through :func:`repro.io.atomic.replace_file`
  (stage → fsync → rename → directory fsync), so a crash mid-save
  leaves the previous checkpoint intact.

Checkpoint writes are *not* charged to the I/O counter: like the trace
sidecar, they are observability/durability metadata outside the block
model, and charging them would make checkpointed runs incomparable to
the paper's counts.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.exceptions import CheckpointError
from repro.io.atomic import abort_replace, recover_staging, replace_file
from repro.io.counter import IOStats

#: Bump when the on-disk checkpoint layout changes incompatibly.
CHECKPOINT_VERSION = 1

#: File name of the (single, most recent) checkpoint in a directory.
CHECKPOINT_NAME = "checkpoint.npz"


def graph_fingerprint(algorithm: str, num_nodes: int, num_edges: int,
                      block_size: int, path: str) -> str:
    """Identity of one (algorithm, input graph) run for resume validation.

    Derived from the quantities that must not change between the
    crashed and the resuming process: node/edge counts, block size,
    the algorithm name, and the input file's base name (not its full
    path, so a moved working directory still resumes).
    """
    key = "|".join(
        (
            str(CHECKPOINT_VERSION),
            algorithm,
            str(num_nodes),
            str(num_edges),
            str(block_size),
            os.path.basename(path),
        )
    )
    return hashlib.sha256(key.encode("utf-8")).hexdigest()


def _jsonify(value: object) -> object:
    """Coerce numpy scalars (and containers of them) to JSON-able types."""
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    return value


@dataclass
class LoadedCheckpoint:
    """A validated checkpoint read back from disk."""

    arrays: Dict[str, np.ndarray]
    meta: Dict[str, object]
    io: IOStats
    boundary: int


@dataclass
class CheckpointSession:
    """Manages the checkpoint file of one run inside ``directory``.

    One session is created by :meth:`SCCAlgorithm.run
    <repro.core.base.SCCAlgorithm.run>` when a checkpoint directory is
    given.  :meth:`save` is called at every scan boundary, :meth:`load`
    once when resuming, and :meth:`complete` on success (removing the
    checkpoint — a finished run needs no resume point).

    :meth:`retire` solves the scratch-file lifetime problem: the
    checkpoint references the current working edge file by path, so the
    file an *older* checkpoint referenced may only be deleted once a
    newer checkpoint is durable.  Algorithms hand replaced working
    files to ``retire`` instead of unlinking them; ``save`` deletes
    them after the new checkpoint has been renamed into place.
    """

    directory: str
    algorithm: str
    fingerprint: str
    #: Scan boundaries saved by *this* session (not counting the crashed
    #: process's — the crash-matrix test reads it off an uninterrupted run).
    boundaries_saved: int = 0
    #: Optional observer called after every durable save with
    #: ``(boundary, seconds)`` — the metrics plane points this at a save
    #: latency histogram.  Purely observational: exceptions are the
    #: caller's problem, the checkpoint itself is already durable.
    on_save: Optional[Callable[[int, float], None]] = field(
        default=None, repr=False, compare=False
    )
    _io_provider: Optional[Callable[[], IOStats]] = field(
        default=None, repr=False, compare=False
    )
    _retired: List[str] = field(default_factory=list, repr=False, compare=False)

    @classmethod
    def for_graph(cls, directory: str, algorithm: str, num_nodes: int,
                  num_edges: int, block_size: int,
                  path: str) -> "CheckpointSession":
        """Create a session bound to one (algorithm, graph) identity."""
        os.makedirs(directory, exist_ok=True)
        return cls(
            directory=directory,
            algorithm=algorithm,
            fingerprint=graph_fingerprint(
                algorithm, num_nodes, num_edges, block_size, path
            ),
        )

    @property
    def path(self) -> str:
        """Path of the checkpoint file this session reads and writes."""
        return os.path.join(self.directory, CHECKPOINT_NAME)

    def bind_io(self, provider: Callable[[], IOStats]) -> None:
        """Install the callable snapshotting the run's I/O delta so far."""
        self._io_provider = provider

    def retire(self, path: str) -> None:
        """Queue a replaced working file for deletion after the next save.

        The most recent durable checkpoint may still reference ``path``;
        deleting it now would make that checkpoint unusable after a
        mid-iteration kill.  It is removed once :meth:`save` has made a
        newer checkpoint durable (or at :meth:`complete`).
        """
        self._retired.append(path)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, arrays: Dict[str, np.ndarray],
             meta: Dict[str, object]) -> int:
        """Durably write the state for one completed scan boundary.

        Returns the boundary ordinal (0-based) this snapshot records.
        The write is staged and atomically renamed, so a crash during
        ``save`` preserves the previous checkpoint.
        """
        started = time.perf_counter()
        boundary = self.boundaries_saved
        io = self._io_provider() if self._io_provider is not None else IOStats()
        header = {
            "version": CHECKPOINT_VERSION,
            "algorithm": self.algorithm,
            "fingerprint": self.fingerprint,
            "boundary": boundary,
            "io": io.to_dict(),
            "meta": _jsonify(meta),
        }
        staging = os.path.join(self.directory, "checkpoint.staging.npz")
        payload = dict(arrays)
        payload["__meta__"] = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        )
        try:
            with open(staging, "wb") as handle:  # repro: allow[IO001]
                np.savez(handle, **payload)
            replace_file(staging, self.path)
        except BaseException:
            # A torn staging write must not outlive the failed save: the
            # previous durable checkpoint stays authoritative.
            abort_replace(staging, self.path)
            raise
        self.boundaries_saved = boundary + 1
        self._drain_retired(keep=str(meta.get("current_path", "")))
        if self.on_save is not None:
            self.on_save(boundary, time.perf_counter() - started)
        return boundary

    def load(self) -> Optional[LoadedCheckpoint]:
        """Read and validate the checkpoint; ``None`` when none exists.

        Raises :class:`~repro.exceptions.CheckpointError` when a
        checkpoint exists but belongs to a different graph, algorithm
        or layout version — resuming it would be silently wrong.  Any
        interrupted atomic replace of the checkpoint itself is cleaned
        up first.
        """
        recover_staging(self.path)
        if not os.path.exists(self.path):
            return None
        try:
            with np.load(self.path, allow_pickle=False) as bundle:
                arrays = {
                    name: bundle[name]
                    for name in bundle.files
                    if name != "__meta__"
                }
                header = json.loads(bundle["__meta__"].tobytes().decode("utf-8"))
        except (OSError, ValueError, KeyError) as exc:
            raise CheckpointError(f"unreadable checkpoint {self.path}: {exc}")
        if header.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} has layout version "
                f"{header.get('version')}, expected {CHECKPOINT_VERSION}"
            )
        if header.get("algorithm") != self.algorithm:
            raise CheckpointError(
                f"checkpoint {self.path} was written by "
                f"{header.get('algorithm')!r}, not {self.algorithm!r}"
            )
        if header.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                f"checkpoint {self.path} does not match this graph "
                "(fingerprint mismatch) — refusing to resume"
            )
        meta = dict(header.get("meta", {}))
        # A crash may also have interrupted an atomic rewrite of the
        # working edge file the checkpoint references; clean that up so
        # the resumed scan sees exactly the committed file.
        current_path = meta.get("current_path")
        if isinstance(current_path, str) and current_path:
            recover_staging(current_path)
        return LoadedCheckpoint(
            arrays=arrays,
            meta=meta,
            io=IOStats.from_dict(header.get("io", {})),
            boundary=int(header.get("boundary", 0)),
        )

    def complete(self) -> None:
        """Remove the checkpoint after a successful run (nothing to resume)."""
        if os.path.exists(self.path):
            os.remove(self.path)
        self._drain_retired(keep="")

    def _drain_retired(self, keep: str) -> None:
        """Delete queued working files, except the one still referenced."""
        survivors: List[str] = []
        for path in self._retired:
            if path and path == keep:
                survivors.append(path)
                continue
            if os.path.exists(path):
                os.remove(path)
        self._retired = survivors
