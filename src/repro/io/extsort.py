"""External merge sort over on-disk edge lists.

Sorting is the workhorse primitive of the I/O model (``sort(n)`` I/Os in
the paper's related-work bounds).  This module provides a run-formation
plus pairwise-merge external sort whose every block transfer flows
through the shared :class:`~repro.io.counter.IOCounter`:

* **Run formation** — scan the input in memory-sized batches, sort each
  batch in memory, write it back as a sorted run.
* **Merging** — repeatedly merge pairs of runs with block-buffered
  streaming two-way merges until a single run remains
  (``ceil(log2(#runs))`` passes over the data).

Edges are compared as packed 64-bit keys (``u << 32 | v`` for
source-major order, ``v << 32 | u`` for target-major), which keeps the
in-memory work fully vectorised.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.constants import EDGE_BYTES
from repro.io.atomic import replace_file
from repro.io.edgefile import EdgeFile
from repro.io.memory import MemoryModel

_SHIFT = np.uint64(32)
_MASK = np.uint64(0xFFFFFFFF)


def _pack(edges: np.ndarray, target_major: bool) -> np.ndarray:
    """Pack ``(m, 2)`` uint32 edges into sortable uint64 keys."""
    hi = edges[:, 1] if target_major else edges[:, 0]
    lo = edges[:, 0] if target_major else edges[:, 1]
    return (hi.astype(np.uint64) << _SHIFT) | lo.astype(np.uint64)


def _unpack(keys: np.ndarray, target_major: bool) -> np.ndarray:
    """Invert :func:`_pack` back to an ``(m, 2)`` uint32 edge array."""
    hi = (keys >> _SHIFT).astype(np.uint32)
    lo = (keys & _MASK).astype(np.uint32)
    if target_major:
        return np.column_stack((lo, hi))
    return np.column_stack((hi, lo))


class _RunReader:
    """Block-buffered reader of one sorted run, yielding packed keys."""

    def __init__(self, run: EdgeFile, target_major: bool, batch_blocks: int) -> None:
        self._scan: Iterator[np.ndarray] = run.scan(batch_blocks=batch_blocks)
        self._target_major = target_major
        self.buffer = np.empty(0, dtype=np.uint64)
        self.exhausted = False
        self.refill()

    def refill(self) -> None:
        """Load the next batch if the buffer ran dry."""
        while self.buffer.size == 0 and not self.exhausted:
            batch = next(self._scan, None)
            if batch is None:
                self.exhausted = True
            else:
                self.buffer = _pack(batch, self._target_major)

    def take_upto(self, bound: np.uint64) -> np.ndarray:
        """Remove and return all buffered keys ``<= bound``."""
        cut = int(np.searchsorted(self.buffer, bound, side="right"))
        head, self.buffer = self.buffer[:cut], self.buffer[cut:]
        self.refill()
        return head


def _merge_pair(
    run_a: EdgeFile,
    run_b: EdgeFile,
    out: EdgeFile,
    target_major: bool,
    batch_blocks: int,
) -> None:
    """Stream-merge two sorted runs into ``out``."""
    readers = [
        _RunReader(run_a, target_major, batch_blocks),
        _RunReader(run_b, target_major, batch_blocks),
    ]
    while True:
        live = [r for r in readers if r.buffer.size > 0]
        if not live:
            break
        if len(live) == 1:
            out.append(_unpack(live[0].take_upto(np.uint64(2**64 - 1)), target_major))
            continue
        # Safe emission bound: the smaller of the two buffered maxima.
        # Everything <= bound in either buffer can be emitted now because
        # the other run cannot produce smaller keys later.
        bound = min(live[0].buffer[-1], live[1].buffer[-1])
        pieces = [r.take_upto(bound) for r in live]
        merged = np.sort(np.concatenate(pieces), kind="stable")
        out.append(_unpack(merged, target_major))
    out.flush()


def _write_run(
    keys: np.ndarray,
    index: int,
    out_path: str,
    source: EdgeFile,
    target_major: bool,
) -> EdgeFile:
    """Materialise one sorted run; all writes flow through the counter."""
    run = EdgeFile.create(
        f"{out_path}.run{index}",
        counter=source.counter,
        block_size=source.block_size,
    )
    run.append(_unpack(keys, target_major))
    run.flush()
    return run


def _form_runs_parallel(
    source: EdgeFile,
    out_path: str,
    target_major: bool,
    run_blocks: int,
    workers: int,
) -> List[EdgeFile]:
    """Run formation with the pack-and-sort shipped to a worker pool.

    The main process keeps every counted transfer: it reads input
    batches (in scan order) and writes runs (in batch order); workers
    only ever see in-memory edge arrays and return sorted key arrays.
    Run *contents* are therefore byte-identical to the serial path, and
    so is the counted I/O total — only the interleaving of reads and
    writes differs (reads lead by the lookahead window).  A worker crash
    falls back to sorting that batch in-process.
    """
    from repro.parallel.pool import WorkerPool

    runs: List[EdgeFile] = []
    pool = WorkerPool(workers, arena_name=None, n=0)
    try:
        lookahead = max(2, 2 * workers)
        scan = source.scan(batch_blocks=run_blocks)
        batches: dict = {}  # seq -> batch, retained for crash fallback
        next_submit = 0
        next_write = 0
        exhausted = False
        while True:
            while not exhausted and next_submit - next_write < lookahead:
                batch = next(scan, None)
                if batch is None:
                    exhausted = True
                    break
                batches[next_submit] = batch
                pool.submit(
                    next_submit,
                    "sort",
                    {"batch": batch, "target_major": target_major},
                )
                next_submit += 1
            if next_write == next_submit:
                break
            bundle = pool.collect(next_write)
            batch = batches.pop(next_write)
            if bundle is None:
                keys = np.sort(_pack(batch, target_major), kind="stable")
            else:
                keys = bundle["keys"]
            runs.append(
                _write_run(keys, next_write, out_path, source, target_major)
            )
            next_write += 1
    finally:
        pool.close()
    return runs


def external_sort_edges(
    source: EdgeFile,
    order: str = "source",
    memory: Optional[MemoryModel] = None,
    out_path: Optional[str] = None,
    workers: int = 0,
) -> EdgeFile:
    """Sort an edge file externally; return a new sorted :class:`EdgeFile`.

    Parameters
    ----------
    source:
        Input edge file; left untouched.
    order:
        ``"source"`` sorts by ``(u, v)``; ``"target"`` by ``(v, u)`` —
        the grouping needed to build a reversed adjacency.
    memory:
        Memory model bounding run size and merge buffers; defaults to
        the paper's default budget for a graph with as many nodes as the
        file has edges would be meaningless, so the default here is a
        model with capacity for 64 blocks.
    out_path:
        Path of the sorted output (default: ``source.path + ".sorted"``).
    workers:
        When positive, run formation ships each batch's pack-and-sort to
        that many forked workers (see :mod:`repro.parallel`); the merge
        stays single-streamed so every block transfer remains counted in
        order.  Output bytes and counted I/O totals are identical to a
        serial sort.
    """
    if order not in ("source", "target"):
        raise ValueError("order must be 'source' or 'target'")
    target_major = order == "target"
    if memory is None:
        memory = MemoryModel(
            num_nodes=0,
            capacity=64 * source.block_size,
            block_size=source.block_size,
        )
    out_path = out_path or source.path + ".sorted"
    run_blocks = max(1, memory.capacity // source.block_size)
    buffer_blocks = max(1, run_blocks // 4)

    # ------------------------------------------------------------------
    # Phase 1: run formation.
    # ------------------------------------------------------------------
    if workers > 0:
        runs = _form_runs_parallel(
            source, out_path, target_major, run_blocks, workers
        )
    else:
        runs = []
        for index, batch in enumerate(source.scan(batch_blocks=run_blocks)):
            keys = np.sort(_pack(batch, target_major), kind="stable")
            runs.append(
                _write_run(keys, index, out_path, source, target_major)
            )

    if not runs:
        return EdgeFile.create(
            out_path, counter=source.counter, block_size=source.block_size
        )

    # ------------------------------------------------------------------
    # Phase 2: pairwise merge passes.
    # ------------------------------------------------------------------
    generation = 0
    while len(runs) > 1:
        next_runs: List[EdgeFile] = []
        for pair_index in range(0, len(runs), 2):
            if pair_index + 1 == len(runs):
                next_runs.append(runs[pair_index])
                continue
            merged = EdgeFile.create(
                f"{out_path}.gen{generation}.{pair_index // 2}",
                counter=source.counter,
                block_size=source.block_size,
            )
            _merge_pair(
                runs[pair_index],
                runs[pair_index + 1],
                merged,
                target_major,
                buffer_blocks,
            )
            runs[pair_index].unlink()
            runs[pair_index + 1].unlink()
            next_runs.append(merged)
        runs = next_runs
        generation += 1

    final = runs[0]
    final.close()
    # Durable swap into place (no-op when the final run already is the
    # output path): the sorted file survives a crash intact or not at all.
    replace_file(final.path, out_path)
    return EdgeFile(out_path, counter=source.counter, block_size=source.block_size)


def reverse_edges(source: EdgeFile, out_path: Optional[str] = None) -> EdgeFile:
    """Write the reversal of ``source`` (every ``(u, v)`` becomes ``(v, u)``).

    One sequential read plus one sequential write of the whole file —
    the cost DFS-SCC pays to build the transposed graph before its
    second DFS.
    """
    out_path = out_path or source.path + ".rev"
    reversed_file = EdgeFile.create(
        out_path,
        counter=source.counter,
        block_size=source.block_size,
        cache=source.cache,
        prefetch_depth=source.prefetch_depth,
    )
    for batch in source.scan():
        reversed_file.append(batch[:, ::-1])
    reversed_file.flush()
    return reversed_file


def estimate_sort_ios(num_edges: int, block_size: int, memory_bytes: int) -> int:
    """Analytic ``sort(n)`` block I/O estimate for documentation and tests."""
    if num_edges == 0:
        return 0
    blocks = -(-num_edges * EDGE_BYTES // block_size)
    run_blocks = max(1, memory_bytes // block_size)
    runs = -(-blocks // run_blocks)
    passes = 1 + max(0, int(np.ceil(np.log2(max(runs, 1)))))
    return 2 * blocks * passes
