"""Asynchronous block prefetching and the counted page cache.

Every algorithm in the paper is bounded by sequential edge scans
(``|E|/B`` block reads per pass), which makes the scan loop the one
place engineering can buy real wall-clock without touching the I/O
model: overlap the next block's disk read with the current block's CPU
work, and keep recently decoded blocks resident so the *shrinking*
graph of 1P/1PB-SCC never touches disk twice for the same bytes.

This module provides both halves:

* :class:`BlockPrefetcher` — a double-buffered background reader: one
  daemon thread issues strictly sequential raw reads ahead of the
  consuming scan into a bounded queue of ``depth`` blocks.  The thread
  never touches the shared :class:`~repro.io.counter.IOCounter`; every
  block is *accounted by the consumer* when it is dequeued (via
  :meth:`~repro.io.blocks.BlockDevice.account_prefetched_read`), so the
  counted block reads — order included — are byte-for-byte identical to
  a synchronous scan.  This thread is the repo's one sanctioned
  concurrent reader; the SCAN001 contract rule pins lookahead reads to
  this module.
* :class:`PageCache` — an LRU over *decoded* block payloads (the
  ``(m, 2)`` edge arrays a scan yields), shared across the edge files
  of a run and keyed by ``(path, block index)``.  Capacity is expressed
  in blocks so the memory charge is auditable against the model:
  a cache of ``k`` blocks holds at most ``k * B`` payload bytes on top
  of the algorithm's ``O(|V|)`` node arrays.  Hits are tallied as
  ``cache_hits`` — never as block reads — because no bytes moved
  between disk and memory.
"""

from __future__ import annotations

import queue
import threading
import time
import weakref
from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.constants import DEFAULT_BLOCK_SIZE, DEFAULT_PREFETCH_DEPTH

__all__ = [
    "BlockPrefetcher",
    "PageCache",
    "DEFAULT_PREFETCH_DEPTH",
    "cache_summary",
    "live_prefetch_queue_depth",
]

# Live-prefetcher registry for the metrics plane: gauges poll aggregate
# queue occupancy without holding references into the scan machinery.
# Weak so an abandoned prefetcher (consumer raised) can still be
# collected; the lock covers every access (THR001).
_live_lock = threading.Lock()
_live_prefetchers: "weakref.WeakSet[BlockPrefetcher]" = weakref.WeakSet()


def live_prefetch_queue_depth() -> int:
    """Blocks currently buffered across every live prefetcher's queue.

    The metrics plane polls this as a gauge: sustained values near the
    configured depth mean the reader is ahead (healthy pipelining),
    values pinned at zero under load mean the consumer is stalling.
    """
    with _live_lock:
        return sum(p.queue_depth for p in _live_prefetchers)


class PageCache:
    """A shared LRU cache of decoded block payloads, sized in blocks.

    Parameters
    ----------
    capacity_blocks:
        Maximum number of blocks kept resident.  The memory charge is
        at most ``capacity_blocks * block_size`` payload bytes, which is
        what keeps the semi-external ``O(|V|)`` contract auditable — the
        cache's footprint is a configuration constant, not a function of
        ``|E|``.
    block_size:
        Block size ``B`` the capacity is quoted against.

    Entries are keyed ``(path, block_index)`` so one cache can serve
    every edge file of a run (the input plus the shrinking scratch
    files); writers invalidate the affected keys.
    """

    def __init__(
        self, capacity_blocks: int, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> None:
        if capacity_blocks <= 0:
            raise ValueError("capacity_blocks must be positive")
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.capacity_blocks = capacity_blocks
        self.block_size = block_size
        # The cache is shared between the consuming scan and writer
        # invalidation while a BlockPrefetcher thread is in flight, and
        # the ROADMAP's multi-process sharding adds more concurrent
        # touchpoints — every access below holds this lock (enforced
        # statically by THR001/THR002).
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Tuple[str, int], np.ndarray]" = OrderedDict()

    # ------------------------------------------------------------------
    def get(self, path: str, index: int) -> Optional[np.ndarray]:
        """Return the cached payload for ``(path, index)``, or ``None``.

        A hit refreshes the entry's recency.
        """
        key = (path, index)
        with self._lock:
            array = self._entries.get(key)
            if array is not None:
                self._entries.move_to_end(key)
            return array

    def put(self, path: str, index: int, payload: np.ndarray) -> None:
        """Insert (or refresh) a decoded block, evicting LRU overflow."""
        key = (path, index)
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity_blocks:
                self._entries.popitem(last=False)

    def invalidate(self, path: str, index: Optional[int] = None) -> None:
        """Drop one block (or, with ``index=None``, a whole file)."""
        with self._lock:
            if index is not None:
                self._entries.pop((path, index), None)
                return
            stale = [key for key in self._entries if key[0] == path]
            for key in stale:
                del self._entries[key]

    def clear(self) -> None:
        """Drop every entry."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Resident payload bytes (auditable against ``capacity_blocks * B``)."""
        with self._lock:
            return sum(array.nbytes for array in self._entries.values())

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"PageCache(blocks={len(self._entries)}/"
                f"{self.capacity_blocks}, B={self.block_size})"
            )


class BlockPrefetcher:
    """Background reader pipelining sequential block reads ahead of a scan.

    Parameters
    ----------
    path:
        Backing file to read.  The prefetcher opens its own read-only
        handle so the consumer's :class:`~repro.io.blocks.BlockDevice`
        position is never disturbed.
    block_size:
        Block size ``B``; reads are issued one block at a time, strictly
        sequentially over ``[start, stop)``.
    start, stop:
        Half-open block range to prefetch.
    depth:
        Bounded-queue capacity: how many decoded-pending blocks may sit
        between the reader thread and the consumer.  ``depth=1`` is
        classic double buffering.
    seek_latency_s, transfer_latency_s:
        Simulated disk profile inherited from the consuming
        :class:`~repro.io.blocks.BlockDevice` (both 0 = off).  The
        *reader thread* pays the modeled per-block time — seek for the
        first block of the range, transfer for every block — so under a
        simulated disk the latency genuinely overlaps the consumer's
        CPU work instead of being charged serially at dequeue.

    Accounting contract: the reader thread performs raw reads only and
    never touches an :class:`~repro.io.counter.IOCounter`.  The consumer
    tallies each block *when it dequeues it* (in file order), so counted
    reads are identical — in count, order and sequential/random split —
    to a synchronous scan of the same range.
    """

    _SENTINEL: Tuple[int, bytes] = (-1, b"")

    def __init__(
        self,
        path: str,
        block_size: int,
        start: int,
        stop: int,
        depth: int = DEFAULT_PREFETCH_DEPTH,
        seek_latency_s: float = 0.0,
        transfer_latency_s: float = 0.0,
    ) -> None:
        if depth <= 0:
            raise ValueError("prefetch depth must be positive")
        if not 0 <= start <= stop:
            raise ValueError("invalid prefetch block range")
        self.path = path
        self.block_size = block_size
        self.start = start
        self.stop = stop
        self.depth = depth
        self.seek_latency_s = seek_latency_s
        self.transfer_latency_s = transfer_latency_s
        self._queue: "queue.Queue[Tuple[int, bytes]]" = queue.Queue(maxsize=depth)
        self._cancel = threading.Event()
        self._error: Optional[BaseException] = None
        # The sanctioned lookahead side channel: a private handle whose
        # reads are deferred-accounted by the consumer (module docstring).
        self._handle = open(path, "rb")  # repro: allow[IO001]
        if start:
            self._handle.seek(start * block_size)
        # The one sanctioned reader thread outside the concurrency homes:
        # its reads are deferred-accounted by the consuming scan.
        self._thread = threading.Thread(  # repro: allow[THR004]
            target=self._read_ahead,
            name=f"repro-prefetch:{path}",
            daemon=True,
        )
        with _live_lock:
            _live_prefetchers.add(self)
        self._thread.start()

    # ------------------------------------------------------------------
    # reader-thread side
    # ------------------------------------------------------------------
    def _read_ahead(self) -> None:
        try:
            for index in range(self.start, self.stop):
                if self._cancel.is_set():
                    return
                data = self._handle.read(self.block_size)
                if self.transfer_latency_s or self.seek_latency_s:
                    # Pay the modeled disk time on this thread: one seek
                    # to position on the range's first block, a transfer
                    # per block — overlapping the consumer's CPU work.
                    time.sleep(
                        self.transfer_latency_s
                        + (self.seek_latency_s if index == self.start else 0.0)
                    )
                self._offer((index, data))
        except BaseException as exc:  # surfaced on the consumer side
            self._error = exc
        finally:
            self._offer(self._SENTINEL)

    def _offer(self, item: Tuple[int, bytes]) -> None:
        """Enqueue ``item``, polling so :meth:`close` can always unblock."""
        while not self._cancel.is_set():
            try:
                self._queue.put(item, timeout=0.05)
                return
            except queue.Full:
                continue

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def next_block(self) -> Tuple[int, bytes, bool]:
        """Dequeue the next ``(index, data, stalled)`` triple in file order.

        ``stalled`` reports whether the consumer had to wait for the
        reader thread — the signal the ``prefetch_stalls`` counter
        aggregates.  Raises whatever the reader thread raised, or
        :class:`EOFError` past the end of the range.
        """
        stalled = False
        try:
            item = self._queue.get_nowait()
        except queue.Empty:
            stalled = True
            while True:
                try:
                    item = self._queue.get(timeout=0.05)
                    break
                except queue.Empty:
                    if self._error is not None:
                        raise self._error
        if item == self._SENTINEL:
            if self._error is not None:
                raise self._error
            raise EOFError(f"prefetcher for {self.path} is exhausted")
        index, data = item
        return index, data, stalled

    @property
    def queue_depth(self) -> int:
        """Blocks currently buffered between the reader and the consumer."""
        return self._queue.qsize()

    def close(self) -> None:
        """Cancel the reader, drain the queue, and join the thread."""
        with _live_lock:
            _live_prefetchers.discard(self)
        self._cancel.set()
        while True:
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break
        self._thread.join(timeout=2.0)
        self._handle.close()

    def __enter__(self) -> "BlockPrefetcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __iter__(self) -> Iterator[Tuple[int, bytes, bool]]:
        while True:
            try:
                yield self.next_block()
            except EOFError:
                return


def cache_summary(cache: Optional[PageCache]) -> Dict[str, int]:
    """Small JSON-able snapshot of a cache's occupancy (for run extras)."""
    if cache is None:
        return {}
    return {
        "capacity_blocks": cache.capacity_blocks,
        "resident_blocks": len(cache),
        "resident_bytes": cache.nbytes,
    }
