"""Deterministic fault injection for chaos-testing the I/O layer.

Multi-hour semi-external runs live or die by how they handle the disk
misbehaving.  This module makes the misbehaviour *reproducible*: a
:class:`FaultPlan` names, by global counted-transfer ordinal, exactly
which block reads fail transiently, which block writes are torn at a
byte offset, and at which scan boundaries the process "crashes"
(:class:`SimulatedCrash`).  A :class:`FaultInjector` executes the plan
from inside :class:`~repro.io.blocks.BlockDevice`, so faults strike the
same choke-point the I/O model counts through — no monkeypatching, and
two runs with the same plan fault identically.

Plans are parsed from a compact spec string (CLI ``--fault-plan`` or the
``REPRO_FAULT_PLAN`` environment variable)::

    seed=7;read-error@5;read-error@9x2;tear@3:100;crash@scan:2

* ``read-error@N[xK]`` — the ``N``-th counted block read (0-based,
  device-wide) raises a transient :class:`TransientIOError` ``K`` times
  (default 1) before succeeding.
* ``tear@N:OFF`` — the ``N``-th counted block write persists only its
  first ``OFF`` bytes, then raises :class:`TornWriteError`.  Torn
  writes are *not* retried: recovery is the job of the atomic-rewrite
  protocol (:mod:`repro.io.atomic`), not the retry loop.
* ``slow@N:MS`` — the ``N``-th counted block read completes normally
  but only after an injected ``MS``-millisecond delay.  No error is
  raised and no retry happens; the delay makes deadline/timeout paths
  (the service's per-request budgets, rebuild time limits)
  deterministically testable.  Counted I/O is unchanged; the fired
  delay is tallied in ``faults_injected``.
* ``crash@scan:K`` — the ``K``-th scan-boundary checkpoint (0-based)
  raises :class:`SimulatedCrash` after the checkpoint is durable.
* ``worker-crash@K`` — when scans run with ``--workers``, the scan
  worker assigned the ``K``-th shipped batch (0-based, run-wide) is
  killed before computing it; the affected stripes are classified
  in-process (tallied as ``parallel_fallbacks``), and the run's answer
  and counted I/O are unchanged.  Ignored by serial runs.
* ``seed=S`` — seeds the retry policy's backoff jitter.

Retries are governed by :class:`RetryPolicy` and surfaced in
:class:`~repro.io.counter.IOStats` as ``io_retries`` — the failed
attempts are never charged as block reads, so a retried run's counted
I/O equals the fault-free run's counts plus exactly the planned
retries (the invariant the bench-regression gate asserts).
"""

from __future__ import annotations

import random
import re
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import ReproError

#: Environment variable holding a fault-plan spec for the whole process.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


class SimulatedCrash(ReproError):
    """The fault plan terminated the run at a scan boundary.

    Raised *after* the boundary checkpoint (when one is being written)
    is durable, so a resumed run restarts from this very boundary.
    """

    def __init__(self, boundary: int) -> None:
        self.boundary = boundary
        super().__init__(f"simulated crash at scan boundary {boundary}")


class TransientIOError(OSError):
    """An injected, retryable read failure (models EIO that clears)."""


class TornWriteError(OSError):
    """An injected write that persisted only a prefix of its payload.

    Deliberately not retryable: a torn block means the file's contents
    can no longer be trusted, which only the atomic-rewrite protocol
    (stage, fsync, rename) recovers from.
    """


@dataclass
class RetryPolicy:
    """Bounded retries with seeded, jittered exponential backoff.

    ``max_retries`` bounds attempts *per faulting operation*; backoff
    sleeps ``base_delay_s * 2**attempt`` scaled by a jitter factor drawn
    from the policy's private seeded RNG, so chaos runs back off
    identically run-to-run.  The default ``base_delay_s`` is effectively
    zero to keep test suites fast; production callers raise it.
    """

    max_retries: int = 3
    base_delay_s: float = 0.0
    max_delay_s: float = 0.1
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self._rng = random.Random(self.seed)

    def backoff_s(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (0-based), jittered in [0.5, 1.0]x."""
        raw = self.base_delay_s * (2.0**attempt)
        jitter = 0.5 + 0.5 * self._rng.random()
        return min(raw * jitter, self.max_delay_s)

    def sleep(self, attempt: int) -> None:
        """Sleep out the backoff for ``attempt`` (no-op at zero delay)."""
        delay = self.backoff_s(attempt)
        if delay > 0:
            time.sleep(delay)


@dataclass(frozen=True)
class _TearSpec:
    """A planned torn write: ordinal + surviving byte prefix length."""

    ordinal: int
    offset: int


_TOKEN_RE = re.compile(
    r"""^(?:
        seed=(?P<seed>\d+)
      | read-error@(?P<read>\d+)(?:x(?P<times>\d+))?
      | slow@(?P<slow>\d+):(?P<delay>\d+)
      | tear@(?P<tear>\d+):(?P<offset>\d+)
      | crash@scan:(?P<crash>\d+)
      | worker-crash@(?P<worker>\d+)
    )$""",
    re.VERBOSE,
)


@dataclass
class FaultPlan:
    """A declarative, deterministic schedule of injected faults.

    ``read_errors`` maps a counted-read ordinal to how many consecutive
    transient failures it suffers; ``tears`` lists planned torn writes;
    ``crash_boundaries`` names scan-boundary ordinals that crash the
    run.  Ordinals count *attempted* charged transfers device-wide, in
    program order, starting at 0 — retries of the same read do not
    advance the ordinal, so ``read-error@5x2`` means "the 6th read
    fails twice, then succeeds".
    """

    read_errors: Dict[int, int] = field(default_factory=dict)
    slow_reads: Dict[int, int] = field(default_factory=dict)
    tears: List[_TearSpec] = field(default_factory=list)
    crash_boundaries: List[int] = field(default_factory=list)
    worker_crashes: List[int] = field(default_factory=list)
    seed: int = 0

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``;``-separated spec string (see module docstring)."""
        plan = cls()
        for token in filter(None, (part.strip() for part in spec.split(";"))):
            match = _TOKEN_RE.match(token)
            if match is None:
                raise ValueError(f"unrecognised fault-plan token: {token!r}")
            if match.group("seed") is not None:
                plan.seed = int(match.group("seed"))
            elif match.group("read") is not None:
                ordinal = int(match.group("read"))
                times = int(match.group("times") or 1)
                plan.read_errors[ordinal] = plan.read_errors.get(ordinal, 0) + times
            elif match.group("slow") is not None:
                ordinal = int(match.group("slow"))
                delay_ms = int(match.group("delay"))
                plan.slow_reads[ordinal] = (
                    plan.slow_reads.get(ordinal, 0) + delay_ms
                )
            elif match.group("tear") is not None:
                plan.tears.append(
                    _TearSpec(int(match.group("tear")), int(match.group("offset")))
                )
            elif match.group("worker") is not None:
                plan.worker_crashes.append(int(match.group("worker")))
            else:
                plan.crash_boundaries.append(int(match.group("crash")))
        plan.crash_boundaries.sort()
        plan.worker_crashes.sort()
        return plan

    @classmethod
    def from_env(cls, environ: Optional[Dict[str, str]] = None) -> Optional["FaultPlan"]:
        """Build a plan from ``REPRO_FAULT_PLAN``; ``None`` when unset."""
        import os

        env = environ if environ is not None else os.environ  # type: ignore[assignment]
        spec = env.get(FAULT_PLAN_ENV, "").strip()
        if not spec:
            return None
        return cls.parse(spec)

    def planned_retries(self, policy: Optional["RetryPolicy"] = None) -> int:
        """Total retries the plan will cause under ``policy``.

        Each planned transient failure costs one retry, capped by the
        policy's ``max_retries`` — a read planned to fail more times
        than the policy tolerates never succeeds, so its retry count is
        the cap (after which the error escapes).
        """
        cap = (policy or RetryPolicy()).max_retries
        return sum(min(times, cap) for times in self.read_errors.values())

    def to_spec(self) -> str:
        """Serialize back to the compact spec-string form."""
        parts: List[str] = []
        if self.seed:
            parts.append(f"seed={self.seed}")
        for ordinal in sorted(self.read_errors):
            times = self.read_errors[ordinal]
            suffix = f"x{times}" if times != 1 else ""
            parts.append(f"read-error@{ordinal}{suffix}")
        for ordinal in sorted(self.slow_reads):
            parts.append(f"slow@{ordinal}:{self.slow_reads[ordinal]}")
        for tear in self.tears:
            parts.append(f"tear@{tear.ordinal}:{tear.offset}")
        for boundary in self.crash_boundaries:
            parts.append(f"crash@scan:{boundary}")
        for stripe in self.worker_crashes:
            parts.append(f"worker-crash@{stripe}")
        return ";".join(parts)


class FaultInjector:
    """Executes a :class:`FaultPlan` against the block-device hot path.

    One injector is installed per run (see
    :meth:`repro.core.base.SCCAlgorithm.run`); every
    :class:`~repro.io.blocks.BlockDevice` sharing the run's counter
    consults it.  The injector owns three monotone cursors — counted
    reads, counted writes, and scan boundaries — which is what makes a
    plan deterministic across prefetch/cache configurations that do not
    change counted I/O.
    """

    def __init__(
        self, plan: FaultPlan, policy: Optional[RetryPolicy] = None
    ) -> None:
        self.plan = plan
        self.policy = policy if policy is not None else RetryPolicy(seed=plan.seed)
        self._reads_seen = 0
        self._writes_seen = 0
        self._boundaries_seen = 0
        self._pending_read_failures: Dict[int, int] = dict(plan.read_errors)
        self._pending_slow_reads: Dict[int, int] = dict(plan.slow_reads)
        self._tears: Dict[int, int] = {t.ordinal: t.offset for t in plan.tears}
        self._worker_crashes = set(plan.worker_crashes)
        #: Faults actually fired so far (for the ``faults_injected`` tally).
        self.faults_fired = 0

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def next_read_ordinal(self) -> int:
        """Claim the ordinal of the next counted read (advances cursor)."""
        ordinal = self._reads_seen
        self._reads_seen += 1
        return ordinal

    def check_read(self, ordinal: int, path: str) -> None:
        """Raise :class:`TransientIOError` while ``ordinal`` has planned failures."""
        remaining = self._pending_read_failures.get(ordinal, 0)
        if remaining > 0:
            self._pending_read_failures[ordinal] = remaining - 1
            self.faults_fired += 1
            raise TransientIOError(f"injected transient read error at {path}#{ordinal}")

    def take_slow(self, ordinal: int) -> Optional[float]:
        """Consume a planned ``slow@`` delay for ``ordinal``, in seconds.

        Returns ``None`` when the ordinal has no planned delay.
        Consume-once: the same ordinal never fires twice, so retried
        reads (which keep their ordinal) are not re-delayed.  Successive
        attempts of a *failing* read are unaffected — ``slow@`` delays
        the successful completion, not the retry loop.
        """
        delay_ms = self._pending_slow_reads.pop(ordinal, None)
        if delay_ms is None:
            return None
        self.faults_fired += 1
        return delay_ms / 1000.0

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def next_write_ordinal(self) -> int:
        """Claim the ordinal of the next counted write (advances cursor)."""
        ordinal = self._writes_seen
        self._writes_seen += 1
        return ordinal

    def torn_offset(self, ordinal: int) -> Optional[int]:
        """Byte prefix to persist for a planned torn write, else ``None``."""
        return self._tears.pop(ordinal, None)

    def record_torn_write(self) -> None:
        """Tally a fired tear (the device raises :class:`TornWriteError`)."""
        self.faults_fired += 1

    # ------------------------------------------------------------------
    # worker path
    # ------------------------------------------------------------------
    def take_worker_crash(self, stripe: int) -> bool:
        """Whether the scan worker shipping stripe ``stripe`` must die.

        ``worker-crash@K`` kills the worker assigned the ``K``-th
        shipped batch (0-based, run-wide) *before* it computes that
        batch — exercising the pool's real crash detection and
        in-process fallback, never a wrong answer.  Consume-once, like
        a planned read error.
        """
        if stripe in self._worker_crashes:
            self._worker_crashes.discard(stripe)
            self.faults_fired += 1
            return True
        return False

    # ------------------------------------------------------------------
    # crash path
    # ------------------------------------------------------------------
    def maybe_crash(self) -> None:
        """Fire :class:`SimulatedCrash` if this scan boundary is planned.

        Callers invoke this *after* persisting their boundary
        checkpoint, so the crash models power loss at the worst moment
        that still has a consistent on-disk state to resume from.
        """
        boundary = self._boundaries_seen
        self._boundaries_seen += 1
        if boundary in self.plan.crash_boundaries:
            self.faults_fired += 1
            raise SimulatedCrash(boundary)
