"""On-disk binary edge lists with sequential-scan access.

An :class:`EdgeFile` is the disk-resident half of a semi-external graph:
a flat file of ``(u, v)`` records, 4 bytes per endpoint, read strictly in
block-sized units through a :class:`~repro.io.blocks.BlockDevice`.  All
of the paper's algorithms interact with the edge set exclusively through
:meth:`EdgeFile.scan`, which makes the I/O tallies faithful to the
``|E|/B`` bounds quoted throughout the paper.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, List, Optional

import numpy as np

from repro.constants import DEFAULT_BLOCK_SIZE, EDGE_BYTES, NODE_DTYPE
from repro.exceptions import GraphFormatError
from repro.io.atomic import abort_replace, replace_file
from repro.io.blocks import BlockDevice
from repro.io.counter import IOCounter
from repro.io.prefetch import BlockPrefetcher, PageCache


class EdgeFile:
    """A sequentially scannable edge list stored on disk.

    Parameters
    ----------
    path:
        Backing file.  Created empty if it does not exist.
    counter:
        Shared I/O counter; a private one is created when omitted.
    block_size:
        Block size ``B``; must be a multiple of the 8-byte edge record.
    cache:
        Optional shared :class:`~repro.io.prefetch.PageCache`.  When
        set, scans look decoded blocks up before touching disk (hits
        tallied as ``cache_hits``, never as block reads) and populate
        the cache with the blocks they do read.
    prefetch_depth:
        When positive, scans pipeline their block reads through a
        background :class:`~repro.io.prefetch.BlockPrefetcher` of this
        depth; every delivered block is still charged as a normal read
        at dequeue time, so the counted I/O is identical to a
        synchronous scan.
    """

    def __init__(
        self,
        path: str,
        counter: Optional[IOCounter] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        cache: Optional[PageCache] = None,
        prefetch_depth: int = 0,
    ) -> None:
        if block_size % EDGE_BYTES != 0:
            raise ValueError("block_size must be a multiple of the edge record size")
        if prefetch_depth < 0:
            raise ValueError("prefetch_depth must be non-negative")
        self.device = BlockDevice(path, counter=counter, block_size=block_size)
        if self.device.size_bytes % EDGE_BYTES != 0:
            raise GraphFormatError(f"{path} is not a whole number of edge records")
        self._write_buffer = bytearray()
        self.cache = cache
        self.prefetch_depth = prefetch_depth

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str,
        counter: Optional[IOCounter] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        cache: Optional[PageCache] = None,
        prefetch_depth: int = 0,
    ) -> "EdgeFile":
        """Create an empty edge file, discarding any existing contents."""
        if os.path.exists(path):
            os.remove(path)
        if cache is not None:
            cache.invalidate(path)
        return cls(
            path,
            counter=counter,
            block_size=block_size,
            cache=cache,
            prefetch_depth=prefetch_depth,
        )

    @classmethod
    def from_array(
        cls,
        path: str,
        edges: np.ndarray,
        counter: Optional[IOCounter] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        cache: Optional[PageCache] = None,
        prefetch_depth: int = 0,
    ) -> "EdgeFile":
        """Create an edge file holding ``edges`` (an ``(m, 2)`` array)."""
        edge_file = cls.create(
            path,
            counter=counter,
            block_size=block_size,
            cache=cache,
            prefetch_depth=prefetch_depth,
        )
        edge_file.append(edges)
        edge_file.flush()
        return edge_file

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        """Path of the backing file."""
        return self.device.path

    @property
    def counter(self) -> IOCounter:
        """The I/O counter every transfer is tallied in."""
        return self.device.counter

    @property
    def block_size(self) -> int:
        """Block size ``B`` in bytes."""
        return self.device.block_size

    @property
    def edges_per_block(self) -> int:
        """Edge records per full block."""
        return self.device.block_size // EDGE_BYTES

    @property
    def num_edges(self) -> int:
        """Number of edge records currently stored (including unflushed)."""
        return (self.device.size_bytes + len(self._write_buffer)) // EDGE_BYTES

    @property
    def num_blocks(self) -> int:
        """Number of blocks a full sequential scan touches."""
        return self.device.num_blocks

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, edges: np.ndarray) -> None:
        """Buffer ``edges`` for writing; full blocks are flushed eagerly.

        ``edges`` must be an ``(m, 2)`` integer array; values are stored
        as little-endian ``uint32``.
        """
        edges = np.ascontiguousarray(edges, dtype=NODE_DTYPE)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise GraphFormatError("edges must have shape (m, 2)")
        self._write_buffer.extend(edges.tobytes())
        self._drain_full_blocks()

    def flush(self) -> None:
        """Write out any buffered partial block."""
        self._drain_full_blocks()
        if self._write_buffer:
            self.device.append_block(bytes(self._write_buffer))
            self._write_buffer.clear()

    def _drain_full_blocks(self) -> None:
        block = self.device.block_size
        self._reclaim_partial_tail()
        while len(self._write_buffer) >= block:
            self.device.append_block(bytes(self._write_buffer[:block]))
            del self._write_buffer[:block]

    def _reclaim_partial_tail(self) -> None:
        """Pull a partial tail block back into the buffer before appending.

        Costs one random read, exactly what a real system would pay to
        fill the last block of a file it resumes appending to.
        """
        tail = self.device.size_bytes % self.device.block_size
        if tail == 0 or not self._write_buffer:
            return
        last = self.device.num_blocks - 1
        data = self.device.read_block(last)
        self.device.truncate_to(last * self.device.block_size)
        self._write_buffer[:0] = data
        if self.cache is not None:
            # The tail block is about to be rewritten with more records.
            self.cache.invalidate(self.path, last)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @staticmethod
    def _decode_block(data: bytes) -> np.ndarray:
        """Decode one raw block into an ``(m, 2)`` edge array (zero-copy)."""
        return np.frombuffer(data, dtype=NODE_DTYPE).reshape(-1, 2)

    def _block_arrays(self, total: int) -> Iterator[np.ndarray]:
        """Yield one decoded ``(m, 2)`` array per block, in file order.

        Serves each block from the page cache when possible (tallying a
        ``cache_hit`` instead of a block read); on the first miss with
        prefetching enabled, hands the remaining range to a background
        :class:`BlockPrefetcher` — from that point the cache is no
        longer consulted for this scan (the pipeline has committed to
        reading ahead), but every block read is still pushed into the
        cache for the next scan.
        """
        cache = self.cache
        path = self.path
        index = 0
        while index < total:
            if cache is not None:
                payload = cache.get(path, index)
                if payload is not None:
                    self.counter.record_cache_hit(1, payload.nbytes, origin=path)
                    yield payload
                    index += 1
                    continue
                self.counter.record_cache_miss(1, origin=path)
            if self.prefetch_depth > 0:
                yield from self._prefetched_blocks(index, total)
                return
            array = self._decode_block(self.device.read_block(index))
            if cache is not None:
                cache.put(path, index, array)
            yield array
            index += 1

    def _prefetched_blocks(self, start: int, stop: int) -> Iterator[np.ndarray]:
        """Yield blocks ``[start, stop)`` through the background prefetcher.

        Each dequeued block is charged as a normal read (consumer-side
        accounting via
        :meth:`~repro.io.blocks.BlockDevice.account_prefetched_read`),
        so counted I/O matches a synchronous scan of the same range.
        """
        cache = self.cache
        path = self.path
        # Make buffered writes visible to the prefetcher's private handle.
        self.device.sync()
        with BlockPrefetcher(
            path,
            self.device.block_size,
            start,
            stop,
            depth=self.prefetch_depth,
            seek_latency_s=self.device.sim_seek_s,
            transfer_latency_s=self.device.sim_transfer_s,
        ) as prefetcher:
            for index, data, stalled in prefetcher:
                self.device.account_prefetched_read(index, len(data), stalled)
                array = self._decode_block(data)
                if cache is not None:
                    cache.put(path, index, array)
                yield array

    def scan(self, batch_blocks: int = 1) -> Iterator[np.ndarray]:
        """Yield edge batches in file order, charging one read per block.

        Parameters
        ----------
        batch_blocks:
            Number of blocks per yielded batch.  Algorithms that buffer
            many blocks at once (1PB-SCC's batch edge reduction) pass a
            larger value; the I/O tally is identical either way because
            every block is still read exactly once.

        Blocks are decoded one at a time (each a zero-copy ``frombuffer``
        view) and concatenated per batch, which is what lets the cache
        store — and the prefetcher hide the latency of — individual
        blocks while batch consumers still see one contiguous array.
        """
        if batch_blocks <= 0:
            raise ValueError("batch_blocks must be positive")
        self.flush()
        total = self.device.num_blocks
        blocks = self._block_arrays(total)
        if batch_blocks == 1:
            yield from blocks
            return
        batch: List[np.ndarray] = []
        for array in blocks:
            batch.append(array)
            if len(batch) == batch_blocks:
                yield batch[0] if len(batch) == 1 else np.concatenate(batch, axis=0)
                batch = []
        if batch:
            yield batch[0] if len(batch) == 1 else np.concatenate(batch, axis=0)

    def read_all(self) -> np.ndarray:
        """Read the whole file into one ``(m, 2)`` array (one full scan)."""
        batches = list(self.scan(batch_blocks=max(1, self.device.num_blocks)))
        if not batches:
            return np.empty((0, 2), dtype=NODE_DTYPE)
        return np.concatenate(batches, axis=0)

    # ------------------------------------------------------------------
    # rewriting
    # ------------------------------------------------------------------
    def rewrite(self, batches: Iterable[np.ndarray]) -> None:
        """Replace the file's contents with the concatenation of ``batches``.

        The new contents are staged in a sibling file (so ``batches`` may
        be produced by scanning this very file) and swapped in through
        the crash-consistent protocol of :mod:`repro.io.atomic` — fsync,
        rename, directory fsync, intent manifest — so a crash leaves
        either the old or the new edge list, never a torn one.  The
        writes are charged as they happen.

        On *any* failure while staging (a torn write, a full disk, an
        exception from the batch producer) the staging file and
        manifest are discarded, every cached block for both the staging
        and target paths is invalidated, and the original file is
        reopened untouched before the error propagates.
        """
        staging_path = self.path + ".staging"
        staging: Optional[EdgeFile] = None
        try:
            # Created inside the guarded region: EdgeFile.create makes
            # the file before writing its header, so a failure mid-create
            # must reach the same abort path as a failure mid-append.
            staging = EdgeFile.create(
                staging_path, counter=self.counter, block_size=self.block_size
            )
            for batch in batches:
                staging.append(batch)
            staging.flush()
            staging.device.close()
            self.device.close()
            replace_file(staging_path, self.path)
        except BaseException:
            # The staging file may hold torn blocks and the cache may
            # hold payloads for either path that no longer describe any
            # committed file — drop all of it before surfacing the error.
            # Closing the batch producer first drains and joins any
            # BlockPrefetcher a mid-scan generator still holds open.
            close = getattr(batches, "close", None)
            if callable(close):
                close()
            if staging is not None:
                staging.device.close()
            self.device.close()
            abort_replace(staging_path, self.path)
            if self.cache is not None:
                self.cache.invalidate(staging_path)
                self.cache.invalidate(self.path)
            self.device = BlockDevice(
                self.path, counter=self.counter, block_size=self.block_size
            )
            self._write_buffer.clear()
            raise
        if self.cache is not None:
            # Every cached payload for this path described the old file.
            self.cache.invalidate(self.path)
        self.device = BlockDevice(
            self.path, counter=self.counter, block_size=self.block_size
        )
        self._write_buffer.clear()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush buffered records and close the backing file."""
        if not self.device._closed:  # noqa: SLF001 - own subobject
            self.flush()
        self.device.close()

    def unlink(self) -> None:
        """Close and delete the backing file."""
        self.device.unlink()
        if self.cache is not None:
            self.cache.invalidate(self.path)

    def __enter__(self) -> "EdgeFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        return self.num_edges
