"""A block-granular disk abstraction backed by a real file.

:class:`BlockDevice` enforces the I/O model's core rule: the disk can
only be touched one ``B``-byte block at a time, and every touch is
tallied in an :class:`~repro.io.counter.IOCounter`.  Whether an access
counts as sequential or random is decided by comparing the block index
with the previously accessed one — exactly how a spinning disk would
experience it.
"""

from __future__ import annotations

import os
import time
from typing import Optional, Tuple

from repro.constants import DEFAULT_BLOCK_SIZE
from repro.io.counter import IOCounter
from repro.io.faults import FaultInjector, TornWriteError, TransientIOError


def simulated_disk_latencies() -> Tuple[float, float]:
    """The opt-in simulated disk profile ``(seek_s, transfer_s)``.

    ``REPRO_SIM_SEEK_MS`` / ``REPRO_SIM_TRANSFER_MS`` (both default 0 =
    off) add a per-block sleep to every counted transfer: ``transfer``
    always, plus ``seek`` when the access is random.  This restores the
    paper's operating point on hardware where real reads are served
    from the OS page cache: wall-clock becomes proportional to the
    *modeled* I/O cost instead of being swamped by Python CPU.  The
    tallies themselves are never affected.
    """
    seek = float(os.environ.get("REPRO_SIM_SEEK_MS", "0") or 0) / 1000.0
    transfer = float(os.environ.get("REPRO_SIM_TRANSFER_MS", "0") or 0) / 1000.0
    return seek, transfer


class BlockDevice:
    """Block-addressed access to a file with per-block I/O accounting.

    Parameters
    ----------
    path:
        File backing the device; created if missing.
    counter:
        Shared :class:`IOCounter` that tallies every transfer.
    block_size:
        Block size ``B`` in bytes (default 64 KiB, the paper's setting).
    """

    def __init__(
        self,
        path: str,
        counter: Optional[IOCounter] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.path = path
        self.counter = counter if counter is not None else IOCounter()
        self.block_size = block_size
        self._file = open(path, "a+b")
        self._file.seek(0, os.SEEK_END)
        self._size = self._file.tell()
        self._last_read_block = -2
        self._last_write_block = -2
        self._closed = False
        self.sim_seek_s, self.sim_transfer_s = simulated_disk_latencies()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush and close the backing file."""
        if not self._closed:
            self._file.close()
            self._closed = True

    def sync(self) -> None:
        """Flush Python-level write buffering to the OS file.

        No I/O is charged — the model's writes were tallied when the
        blocks were written; this only makes them visible to readers
        holding an independent handle (the background prefetcher).
        """
        self._file.flush()

    def unlink(self) -> None:
        """Close the device and delete the backing file."""
        self.close()
        if os.path.exists(self.path):
            os.remove(self.path)

    def __enter__(self) -> "BlockDevice":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Current size of the backing file in bytes."""
        return self._size

    @property
    def num_blocks(self) -> int:
        """Number of (possibly partial) blocks currently stored."""
        return -(-self._size // self.block_size)

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def read_block(self, index: int) -> bytes:
        """Read block ``index`` and tally one block read.

        The final block of the file may be shorter than ``block_size``.
        When a :class:`~repro.io.faults.FaultInjector` is installed on
        the counter, planned transient failures strike here and are
        retried under the injector's policy; failed attempts are
        tallied as ``io_retries``, never as block reads, so only the
        successful attempt is charged.
        """
        if index < 0 or index >= self.num_blocks:
            raise IndexError(f"block {index} out of range (have {self.num_blocks})")
        injector = self.counter.fault_injector
        if injector is not None:
            self._pass_read_faults(injector)
        sequential = index == self._last_read_block + 1
        self._file.seek(index * self.block_size)
        data = self._file.read(self.block_size)
        self._last_read_block = index
        self.counter.record_read(1, len(data), sequential=sequential, origin=self.path)
        self._simulate_latency(sequential)
        return data

    def _pass_read_faults(self, injector: FaultInjector) -> None:
        """Clear this counted read's planned faults, retrying as allowed.

        Claims the next device-wide read ordinal, then loops: each
        planned :class:`TransientIOError` is tallied as a fired fault
        and — while the :class:`~repro.io.faults.RetryPolicy` has
        budget — backed off and retried (one ``io_retries`` tick per
        re-attempt).  Exhausting the budget lets the error escape to
        the caller, exactly as a persistent ``EIO`` would.
        """
        ordinal = injector.next_read_ordinal()
        slow_s = injector.take_slow(ordinal)
        if slow_s is not None:
            # A slow@ delay models a read that completes, just late: the
            # sleep is real wall-clock (so deadlines fire), but nothing
            # is retried and counted I/O is unchanged.
            time.sleep(slow_s)
            self.counter.record_fault(1, origin=self.path)
        attempt = 0
        while True:
            try:
                injector.check_read(ordinal, self.path)
                return
            except TransientIOError:
                self.counter.record_fault(1, origin=self.path)
                if attempt >= injector.policy.max_retries:
                    raise
                injector.policy.sleep(attempt)
                self.counter.record_retry(1, origin=self.path)
                attempt += 1

    def account_prefetched_read(self, index: int, nbytes: int, stalled: bool) -> None:
        """Tally a block read whose bytes arrived via a prefetch thread.

        The :class:`~repro.io.prefetch.BlockPrefetcher` reads raw bytes
        on a private handle and never touches the counter; the consumer
        calls this at dequeue time, in file order, so the charged reads
        are identical — in count, order and sequential/random split —
        to a synchronous :meth:`read_block` loop over the same range.
        The device's read head is advanced exactly as if the device had
        performed the read itself.  Simulated disk latency is *not*
        charged here: the prefetch thread already paid it while the
        consumer computed — that overlap is the whole point.
        """
        injector = self.counter.fault_injector
        if injector is not None:
            # Faults strike at *counted*-read time so plans stay aligned
            # with ordinals regardless of the prefetch configuration; the
            # payload already arrived on the reader thread, so a "retry"
            # simply re-serves it after the same tallies and backoff.
            self._pass_read_faults(injector)
        sequential = index == self._last_read_block + 1
        self._last_read_block = index
        self.counter.record_read(1, nbytes, sequential=sequential, origin=self.path)
        self.counter.record_prefetch(1, stalled=stalled, origin=self.path)

    def write_block(self, index: int, data: bytes) -> None:
        """Write ``data`` at block ``index`` and tally one block write.

        A planned torn write persists only the planned byte prefix and
        raises :class:`~repro.io.faults.TornWriteError` — deliberately
        unretried, because a torn block is exactly the failure the
        atomic-rewrite protocol (:mod:`repro.io.atomic`) exists to
        contain.
        """
        if index < 0:
            raise IndexError("block index must be non-negative")
        if len(data) > self.block_size:
            raise ValueError("data does not fit in one block")
        offset = index * self.block_size
        injector = self.counter.fault_injector
        if injector is not None:
            ordinal = injector.next_write_ordinal()
            torn = injector.torn_offset(ordinal)
            if torn is not None:
                self._file.seek(offset)
                self._file.write(data[: torn])
                self._file.flush()
                self._size = max(self._size, offset + min(torn, len(data)))
                injector.record_torn_write()
                self.counter.record_fault(1, origin=self.path)
                raise TornWriteError(
                    f"injected torn write at {self.path}#{ordinal} (offset {torn})"
                )
        sequential = index == self._last_write_block + 1
        self._file.seek(offset)
        self._file.write(data)
        self._last_write_block = index
        self._size = max(self._size, offset + len(data))
        self.counter.record_write(1, len(data), sequential=sequential, origin=self.path)
        self._simulate_latency(sequential)

    def append_block(self, data: bytes) -> int:
        """Append ``data`` as the next block; return its index."""
        index = self.num_blocks
        # Appending right after the last full block is sequential even if
        # the previous block was partial; model it as such.
        self._last_write_block = index - 1
        self.write_block(index, data)
        return index

    def _simulate_latency(self, sequential: bool) -> None:
        """Sleep for one block's modeled disk time (no-op when off)."""
        if self.sim_transfer_s or self.sim_seek_s:
            time.sleep(
                self.sim_transfer_s + (0.0 if sequential else self.sim_seek_s)
            )

    def truncate(self) -> None:
        """Discard all contents (no I/O charged — metadata operation)."""
        self._file.truncate(0)
        self._size = 0
        self._last_read_block = -2
        self._last_write_block = -2

    def truncate_to(self, nbytes: int) -> None:
        """Shrink the file to ``nbytes`` (no I/O charged — metadata)."""
        if nbytes < 0 or nbytes > self._size:
            raise ValueError("truncate_to target out of range")
        self._file.truncate(nbytes)
        self._size = nbytes
