"""The semi-external memory model ``c|V| <= M << ||G||``.

The paper's problem statement gives every algorithm a memory budget
``M`` large enough for a small constant number of ``|V|``-sized node
arrays (the default in Section 8 is ``M = 4 * (3|V|) + B`` — three
4-byte arrays plus one disk block).  :class:`MemoryModel` captures that
budget and answers the two questions algorithms keep asking:

* *Can I afford this many node arrays?* (semi-external feasibility)
* *How many edges fit in the memory left over?* (1PB-SCC's batch size,
  which grows as early acceptance/rejection frees node slots —
  the Section 7.4 feedback loop)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import DEFAULT_BLOCK_SIZE, EDGE_BYTES, NODE_BYTES
from repro.exceptions import MemoryBudgetError


@dataclass
class MemoryModel:
    """Memory budget ``M`` and block size ``B`` for one algorithm run.

    Parameters
    ----------
    num_nodes:
        ``|V(G)|`` of the input graph.
    capacity:
        Total budget ``M`` in bytes.  Defaults to the paper's
        ``4 * (3 |V|) + B``.
    block_size:
        Disk block size ``B`` in bytes.
    node_bytes:
        Bytes per node id (paper: 4).
    """

    num_nodes: int
    capacity: int | None = None
    block_size: int = DEFAULT_BLOCK_SIZE
    node_bytes: int = NODE_BYTES
    _charged: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        if self.capacity is None:
            self.capacity = self.default_capacity(
                self.num_nodes, self.block_size, self.node_bytes
            )
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")

    @staticmethod
    def default_capacity(
        num_nodes: int,
        block_size: int = DEFAULT_BLOCK_SIZE,
        node_bytes: int = NODE_BYTES,
    ) -> int:
        """The paper's default ``M = node_bytes * (3 |V|) + B``."""
        return node_bytes * 3 * num_nodes + block_size

    # ------------------------------------------------------------------
    # feasibility checks
    # ------------------------------------------------------------------
    def node_array_bytes(self, arrays: int, live_nodes: int | None = None) -> int:
        """Bytes consumed by ``arrays`` node-indexed arrays."""
        nodes = self.num_nodes if live_nodes is None else live_nodes
        return arrays * nodes * self.node_bytes

    def require_node_arrays(self, arrays: int, live_nodes: int | None = None) -> None:
        """Raise :class:`MemoryBudgetError` if ``arrays`` arrays overflow ``M``.

        Semi-external algorithms call this once up front to assert their
        resident footprint (BR-Tree: 2 arrays, BR+-Tree: 3) fits.
        """
        needed = self.node_array_bytes(arrays, live_nodes)
        if needed > self.capacity:
            raise MemoryBudgetError(
                f"{arrays} node arrays over {live_nodes or self.num_nodes} nodes "
                f"need {needed} bytes but M = {self.capacity}"
            )

    # ------------------------------------------------------------------
    # edge-batch budgeting (1PB-SCC)
    # ------------------------------------------------------------------
    def edge_budget_bytes(self, resident_arrays: int, live_nodes: int | None = None) -> int:
        """Bytes left for edge batches after ``resident_arrays`` node arrays.

        Never less than one block: the problem statement guarantees room
        for at least one block of edges beyond the node arrays.
        """
        free = self.capacity - self.node_array_bytes(resident_arrays, live_nodes)
        return max(free, self.block_size)

    def edges_per_batch(self, resident_arrays: int, live_nodes: int | None = None) -> int:
        """Edge records that fit in the leftover memory (>= one block)."""
        per_block = self.block_size // EDGE_BYTES
        edges = self.edge_budget_bytes(resident_arrays, live_nodes) // EDGE_BYTES
        return max(edges, per_block)

    def blocks_per_batch(self, resident_arrays: int, live_nodes: int | None = None) -> int:
        """Whole blocks that fit in the leftover memory (>= 1)."""
        blocks = self.edge_budget_bytes(resident_arrays, live_nodes) // self.block_size
        return max(blocks, 1)

    # ------------------------------------------------------------------
    # explicit charge tracking (used by tests and the bench harness)
    # ------------------------------------------------------------------
    @property
    def charged(self) -> int:
        """Bytes currently charged via :meth:`charge`."""
        return self._charged

    def charge(self, nbytes: int) -> None:
        """Charge ``nbytes`` against the budget; raise if it overflows."""
        if nbytes < 0:
            raise ValueError("cannot charge a negative amount")
        if self._charged + nbytes > self.capacity:
            raise MemoryBudgetError(
                f"charging {nbytes} bytes exceeds M = {self.capacity} "
                f"(already charged {self._charged})"
            )
        self._charged += nbytes

    def release(self, nbytes: int) -> None:
        """Release a previous charge."""
        if nbytes < 0 or nbytes > self._charged:
            raise ValueError("release amount out of range")
        self._charged -= nbytes
