"""Crash-consistent file replacement for on-disk graph rewrites.

``os.replace`` alone is not durable: the staged bytes may still be in
the page cache when the rename lands, and the rename itself may not
have reached the directory's journal — a crash can then surface a
zero-length or torn "new" file.  Every graph rewrite in the library
(:meth:`EdgeFile.rewrite <repro.io.edgefile.EdgeFile.rewrite>`, the
external sort's final rename, the condensation writer) therefore goes
through :func:`replace_file`, which follows the classic protocol:

1. ``fsync`` the fully written staging file;
2. write and ``fsync`` a sidecar *manifest* recording the intent
   (``<target>.rewrite-manifest``), so recovery can tell a planned
   swap from stray files;
3. ``os.replace`` staging onto the target (atomic on POSIX);
4. ``fsync`` the parent directory, making the rename durable;
5. remove the manifest (its absence certifies the swap completed).

A crash at any step leaves either the old file or the new file intact —
never a torn one — and :func:`recover_staging` makes the cleanup
decision a resumed run needs.  Enforcement: static rule ``IO002`` flags
any bare ``os.replace``/``os.rename`` outside this module.

None of this touches the I/O counter: renames and fsyncs are metadata
operations in the block model, exactly like ``truncate``.
"""

from __future__ import annotations

import json
import os
from typing import Optional

#: Suffix of the intent manifest written next to the replace target.
MANIFEST_SUFFIX = ".rewrite-manifest"


def manifest_path(target_path: str) -> str:
    """Path of the intent manifest guarding a replace of ``target_path``."""
    return target_path + MANIFEST_SUFFIX


def fsync_file(path: str) -> None:
    """Flush a file's data and metadata to stable storage."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: str) -> None:
    """Make directory-entry changes (renames, unlinks) under ``path`` durable.

    Silently skipped on platforms whose directories cannot be opened
    for fsync (Windows); ``os.replace`` is still atomic there.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def replace_file(staging_path: str, target_path: str) -> None:
    """Durably replace ``target_path`` with the staged ``staging_path``.

    The staging file must be fully written and closed.  On return the
    target durably holds the staged bytes and the manifest is gone; on
    a crash mid-call, :func:`recover_staging` restores a clean state.
    """
    if os.path.abspath(staging_path) == os.path.abspath(target_path):
        return
    parent = os.path.dirname(os.path.abspath(target_path))
    fsync_file(staging_path)
    intent = manifest_path(target_path)
    with open(intent, "w", encoding="utf-8") as handle:  # repro: allow[IO001]
        json.dump({"staging": staging_path, "target": target_path}, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(staging_path, target_path)
    fsync_dir(parent)
    os.remove(intent)
    fsync_dir(parent)


def abort_replace(staging_path: str, target_path: str) -> None:
    """Discard a staged replacement that will not be committed.

    Safe to call whether or not the staging file or manifest exist;
    the target is never touched.
    """
    if os.path.exists(staging_path) and os.path.abspath(
        staging_path
    ) != os.path.abspath(target_path):
        os.remove(staging_path)
    intent = manifest_path(target_path)
    if os.path.exists(intent):
        os.remove(intent)
    fsync_dir(os.path.dirname(os.path.abspath(target_path)))


def recover_staging(target_path: str) -> Optional[str]:
    """Clean up after a crash that may have interrupted a replace.

    Reads the intent manifest (if any), removes any leftover staging
    file, and removes the manifest.  Because ``os.replace`` is atomic,
    the target is guaranteed to be entirely-old or entirely-new; the
    caller never needs to distinguish which.  Returns the staging path
    that was cleaned up, or ``None`` when there was nothing to recover.
    """
    intent = manifest_path(target_path)
    if not os.path.exists(intent):
        return None
    staging: Optional[str] = None
    try:
        with open(intent, "r", encoding="utf-8") as handle:  # repro: allow[IO001]
            staging = json.load(handle).get("staging")
    except (OSError, ValueError):
        staging = None
    if staging and os.path.exists(staging):
        os.remove(staging)
    os.remove(intent)
    fsync_dir(os.path.dirname(os.path.abspath(target_path)))
    return staging
