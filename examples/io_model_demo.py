"""The I/O model as a library: counting blocks and sweeping memory.

Demonstrates the substrate underneath the SCC algorithms — edge files
that can only be scanned block by block, the shared I/O counter, and
the effect of the memory budget ``M`` on 1PB-SCC's batch sizes (the
mechanism behind the paper's Fig. 13).

Run with::

    python examples/io_model_demo.py
"""

import os
import tempfile

import numpy as np

from repro import DiskGraph, MemoryModel, OnePhaseBatchSCC
from repro.constants import NODE_BYTES
from repro.workloads.synthetic import synthetic_graph


def main() -> None:
    planted = synthetic_graph(
        5000, avg_degree=6, massive_sccs=[2000], small_sccs=[10] * 20, seed=9
    )
    graph = planted.graph
    n = graph.num_nodes
    print(f"graph: {n:,} nodes, {graph.num_edges:,} edges")

    with tempfile.TemporaryDirectory() as workdir:
        disk = DiskGraph.from_digraph(graph, os.path.join(workdir, "g.bin"))
        print(f"on disk: {disk.edge_file.num_blocks} blocks of "
              f"{disk.block_size // 1024} KiB\n")

        # One sequential scan costs exactly |E|/B block reads.
        before = disk.counter.snapshot()
        for _ in disk.scan_edges():
            pass
        print(f"one full scan: {disk.counter.since(before).reads} block reads "
              "(= |E|/B, the unit all the paper's bounds are stated in)\n")

        # Fig. 13's mechanism: more memory -> bigger batches -> fewer
        # iterations and fewer I/Os for 1PB-SCC.
        print("memory sweep (1PB-SCC):")
        print("M (x default)   iterations   block I/Os   time")
        default_m = MemoryModel.default_capacity(n, disk.block_size)
        for factor in (1, 2, 4, 8):
            memory = MemoryModel(
                num_nodes=n,
                capacity=factor * default_m,
                block_size=disk.block_size,
            )
            result = OnePhaseBatchSCC().run(disk, memory=memory)
            print(
                f"{factor:>12}   {result.stats.iterations:>10}   "
                f"{result.stats.io.total:>10,}   "
                f"{result.stats.wall_seconds:>5.2f}s"
            )
        disk.unlink()

    print(f"\n(default M = 4 * 3|V| + B = {default_m:,} bytes: "
          f"three {NODE_BYTES}-byte node arrays plus one block,")
    print(" exactly the paper's Section 8 configuration.)")


if __name__ == "__main__":
    main()
