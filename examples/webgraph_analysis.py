"""Analyse the SCC structure of a WEBSPAM-UK2007-like web graph.

This reproduces the paper's Section 7.4 narrative at reproduction
scale: run 1PB-SCC on a web graph with a giant core SCC, watch early
acceptance and early rejection prune the graph iteration by iteration,
and report the SCC profile the paper quotes for the real dataset.

Run with::

    python examples/webgraph_analysis.py [scale]

``scale`` defaults to 2e-4 (about 21K nodes); the paper's real graph is
105.9M nodes.
"""

import sys

from repro import DiskGraph, OnePhaseBatchSCC
from repro.graph.properties import scc_profile
from repro.workloads.realworld import webspam_like

import tempfile
import os


def main(scale: float = 2e-4) -> None:
    print(f"generating WEBSPAM-UK2007 stand-in at scale {scale} ...")
    planted = webspam_like(scale=scale, seed=42, avg_degree=10)
    graph = planted.graph
    print(f"graph: {graph.num_nodes:,} nodes, {graph.num_edges:,} edges\n")

    with tempfile.TemporaryDirectory() as workdir:
        disk = DiskGraph.from_digraph(graph, os.path.join(workdir, "web.bin"))
        algorithm = OnePhaseBatchSCC()
        result = algorithm.run(disk)
        disk.unlink()

    print(f"1PB-SCC finished in {result.stats.iterations} iterations, "
          f"{result.stats.io.total:,} block I/Os, "
          f"{result.stats.wall_seconds:.2f}s\n")

    # --- the Table 1 view: per-iteration reduction.
    print("iteration  nodes-reduced  edges-reduced  %nodes  %edges")
    n0 = graph.num_nodes
    m0 = graph.num_edges
    for it in result.stats.per_iteration[:8]:
        print(
            f"{it.iteration:>9}  {it.nodes_reduced:>13,}  "
            f"{it.edges_reduced:>13,}  "
            f"{100 * it.nodes_reduced / n0:>5.2f}%  "
            f"{100 * it.edges_reduced / m0:>5.2f}%"
        )

    # --- the dataset profile the paper quotes.
    profile = scc_profile(result.scc_sizes)
    print(f"\nSCC profile:")
    print(f"  non-trivial SCCs:        {profile.num_sccs_nontrivial:,}")
    print(f"  nodes in SCCs:           {profile.nodes_in_nontrivial_sccs:,} "
          f"({100 * profile.nodes_in_nontrivial_sccs / n0:.1f}% of nodes)")
    print(f"  biggest SCC:             {profile.largest_scc_size:,} nodes "
          f"({100 * profile.largest_scc_size / n0:.1f}%)")
    print(f"  second biggest SCC:      {profile.second_largest_scc_size:,}")
    print(f"  smallest non-trivial:    {profile.smallest_nontrivial_scc_size}")
    print("\n(The real WEBSPAM-UK2007: 193,670 SCCs covering 79.8% of nodes;")
    print(" biggest SCC 64.8% of the graph — the same shape as above.)")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 2e-4)
