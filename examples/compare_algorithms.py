"""Head-to-head comparison of all five algorithms (a mini Table 3).

Generates the three citation-style real-dataset stand-ins at a small
scale and runs every algorithm on each, printing the paper's Table 3
layout: one grid for wall-clock time, one for block I/Os.  Timeouts
print as ``INF`` and EM-SCC's non-termination as ``DNF``, matching how
the paper reports them.

Run with::

    python examples/compare_algorithms.py [time_limit_seconds]
"""

import sys

from repro.bench.harness import run_matrix
from repro.bench.reporting import format_table
from repro.workloads.realworld import (
    cit_patents_like,
    citeseerx_like,
    go_uniprot_like,
)


def main(time_limit: float = 60.0) -> None:
    scale = 2e-4
    print(f"generating datasets at scale {scale} ...")
    graphs = {
        "cit-patents": cit_patents_like(scale=scale, seed=0),
        "go-uniprot": go_uniprot_like(scale=scale, seed=0),
        "citeseerx": citeseerx_like(scale=scale, seed=0),
    }
    for name, graph in graphs.items():
        print(f"  {name}: {graph.num_nodes:,} nodes, {graph.num_edges:,} edges")

    algorithms = ["1PB-SCC", "1P-SCC", "2P-SCC", "DFS-SCC", "EM-SCC"]
    print(f"\nrunning {len(algorithms)} algorithms "
          f"(time limit {time_limit:.0f}s each) ...\n")
    records = run_matrix(graphs, algorithms, time_limit=time_limit)

    print(format_table(records, metric="seconds", title="Time (Table 3 layout)"))
    print()
    print(format_table(records, metric="ios", title="# of block I/Os"))
    print("\nExpected shape (paper Table 3): 1P-SCC and 1PB-SCC fastest,")
    print("2P-SCC an order of magnitude behind, DFS-SCC slowest or INF.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 60.0)
