"""External-style bisimulation over a condensed graph.

The paper's introduction cites Hellings et al.'s external-memory
bisimulation, which assumes its input arrives as a DAG in reverse
topological order — "this needs to find all SCCs in a preprocessing
step".  This example runs the full pipeline:

1. generate a go-uniprot-like ontology graph (+10% random edges),
2. compute all SCCs with the semi-external 1P-SCC algorithm,
3. condense and partition the DAG by maximal bisimulation.

Run with::

    python examples/bisimulation_pipeline.py
"""

import numpy as np

from repro import compute_sccs
from repro.apps.bisimulation import bisimulation_partition
from repro.workloads.realworld import go_uniprot_like


def main() -> None:
    print("generating go-uniprot stand-in ...")
    graph = go_uniprot_like(scale=2e-4, seed=3)
    print(f"graph: {graph.num_nodes:,} nodes, {graph.num_edges:,} edges")

    print("\ncomputing SCCs with 1P-SCC (semi-external) ...")
    result = compute_sccs(graph, algorithm="1P-SCC")
    print(
        f"  {result.num_sccs:,} SCCs in {result.stats.iterations} iterations, "
        f"{result.stats.io.total:,} block I/Os"
    )

    print("\npartitioning the condensation by maximal bisimulation ...")
    classes, num_classes = bisimulation_partition(graph, labels=result.labels)
    sizes = np.bincount(classes)
    compression = graph.num_nodes / num_classes
    print(f"  {num_classes:,} bisimulation classes "
          f"({compression:.1f}x structural compression)")
    print(f"  largest class: {int(sizes.max()):,} nodes")
    print(f"  singleton classes: {int((sizes == 1).sum()):,}")

    # Every pair inside a class is structurally indistinguishable —
    # a pattern-matching engine only needs one representative per class.
    big = int(np.argmax(sizes))
    members = np.flatnonzero(classes == big)[:5]
    print(f"\nexample: nodes {members.tolist()} all behave identically "
          "(same reachable structure).")


if __name__ == "__main__":
    main()
