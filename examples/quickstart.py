"""Quickstart: compute the SCCs of a small graph with every algorithm.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import ALGORITHMS, Digraph, compute_sccs

# The paper's running example (Fig. 1): 12 nodes a..l mapped to 0..11,
# two non-trivial SCCs {b,c,d,e} and {g,h,i,j}.
names = "abcdefghijkl"
edges = np.array(
    [
        (0, 1), (0, 6), (0, 7),          # a -> b, g, h
        (1, 2), (1, 3),                  # b -> c, d
        (2, 4), (2, 1),                  # c -> e, b
        (3, 4),                          # d -> e
        (4, 1),                          # e -> b
        (5, 6),                          # f -> g
        (6, 9), (6, 8),                  # g -> j, i
        (7, 6), (7, 10),                 # h -> g, k
        (8, 7),                          # i -> h
        (9, 8), (9, 11),                 # j -> i, l
        (11, 10),                        # l -> k
    ]
)
graph = Digraph(12, edges)


def show(result, algorithm):
    groups = {}
    for node, label in enumerate(result.labels.tolist()):
        groups.setdefault(label, []).append(names[node])
    sccs = sorted(("".join(g) for g in groups.values()), key=len, reverse=True)
    print(
        f"{algorithm:>8}: {result.num_sccs} SCCs {sccs}  "
        f"[{result.stats.io.total} block I/Os, "
        f"{result.stats.iterations} iterations]"
    )


def main():
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges\n")
    for algorithm in ["1PB-SCC", "1P-SCC", "2P-SCC", "DFS-SCC", "EM-SCC"]:
        result = compute_sccs(graph, algorithm=algorithm, block_size=64)
        show(result, algorithm)
    print("\nAll five algorithms agree: the two 4-node SCCs are")
    print("{b,c,d,e} and {g,h,i,j}, exactly as the paper's Fig. 1 shows.")


if __name__ == "__main__":
    main()
