"""A fully out-of-core pipeline: SCCs -> condensation -> topo sort.

Everything in this example touches the edge set only through
block-accounted sequential scans and external sorts — the discipline a
truly massive graph would demand:

1. materialise a Large-SCC synthetic graph on disk,
2. compute all SCCs with 1PB-SCC (semi-external),
3. build the condensation *on disk* (map pass + external sort + dedup),
4. topologically sort the condensation with peeling scans,
5. report the total block I/O bill, itemised per stage.

Run with::

    python examples/external_pipeline.py
"""

import os
import tempfile

from repro import DiskGraph, OnePhaseBatchSCC
from repro.apps.condense_external import condense_to_disk
from repro.apps.toposort import semi_external_toposort
from repro.workloads.params import large_scc_params


def main() -> None:
    planted = large_scc_params(scale=2e-4, seed=5).build()
    graph = planted.graph
    print(f"graph: {graph.num_nodes:,} nodes, {graph.num_edges:,} edges, "
          f"{planted.num_planted} planted SCCs\n")

    with tempfile.TemporaryDirectory() as workdir:
        disk = DiskGraph.from_digraph(graph, os.path.join(workdir, "g.bin"))
        counter = disk.counter

        # --- stage 1: SCCs.
        mark = counter.snapshot()
        result = OnePhaseBatchSCC().run(disk)
        scc_ios = counter.since(mark).total
        print(f"[1] 1PB-SCC:        {result.num_sccs:,} SCCs   "
              f"({scc_ios:,} block I/Os, {result.stats.iterations} iterations)")

        # --- stage 2: condensation on disk.
        mark = counter.snapshot()
        condensed = condense_to_disk(disk, result.labels)
        cond_ios = counter.since(mark).total
        print(f"[2] condensation:   {condensed.num_nodes:,} DAG nodes, "
              f"{condensed.num_edges:,} DAG edges   "
              f"({cond_ios:,} block I/Os)")

        # --- stage 3: topological sort by peeling scans.
        mark = counter.snapshot()
        topo = semi_external_toposort(disk, labels=result.labels)
        topo_ios = counter.since(mark).total
        print(f"[3] topo sort:      {int(topo.scc_layers.max()) + 1} layers "
              f"in {topo.scans} peeling scans   ({topo_ios:,} block I/Os)")

        print(f"\ntotal block I/Os:   {scc_ios + cond_ios + topo_ios:,}")
        print("reverse topological order (first 10 nodes):",
              topo.reverse_order()[:10].tolist())

        condensed.unlink()
        disk.unlink()


if __name__ == "__main__":
    main()
