"""Reachability query processing over a citation graph.

The paper's flagship motivation: reachability indexes (GRAIL) must be
built on the DAG obtained by contracting SCCs, so computing all SCCs is
the mandatory preprocessing step.  This example runs that pipeline end
to end on a cit-patents-like graph:

1. generate the citation graph (+10% random edges, as in the paper),
2. compute all SCCs semi-externally with 1PB-SCC,
3. condense and build a GRAIL-style interval index,
4. answer reachability queries.

Run with::

    python examples/reachability_queries.py
"""

import numpy as np

from repro import compute_sccs
from repro.apps.reachability import ReachabilityIndex
from repro.workloads.realworld import cit_patents_like


def main() -> None:
    print("generating cit-patents stand-in (+10% random edges) ...")
    graph = cit_patents_like(scale=3e-4, seed=7)
    print(f"graph: {graph.num_nodes:,} nodes, {graph.num_edges:,} edges")

    print("\ncomputing SCCs with 1PB-SCC (semi-external) ...")
    result = compute_sccs(graph, algorithm="1PB-SCC")
    print(
        f"  {result.num_sccs:,} SCCs, largest = {int(result.scc_sizes.max())} "
        f"nodes, {result.stats.io.total:,} block I/Os"
    )

    print("\nbuilding GRAIL-style interval index on the condensation ...")
    index = ReachabilityIndex(graph, labels=result.labels, num_traversals=3)
    print(f"  index over {index.num_sccs:,} DAG nodes")

    rng = np.random.default_rng(0)
    queries = rng.integers(0, graph.num_nodes, size=(10, 2))
    print("\nsample queries:")
    for s, t in queries.tolist():
        answer = index.reaches(s, t)
        print(f"  reach({s:>6}, {t:>6}) = {answer}")

    # Mutual reachability inside one SCC, if a non-trivial one exists.
    sizes = result.scc_sizes
    big = int(np.argmax(sizes))
    if sizes[big] >= 2:
        members = result.members(big)[:2]
        a, b = int(members[0]), int(members[1])
        print(f"\nnodes {a} and {b} share SCC {big}: "
              f"reach both ways = {index.reaches(a, b)} / {index.reaches(b, a)}")


if __name__ == "__main__":
    main()
