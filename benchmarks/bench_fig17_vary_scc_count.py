"""Fig. 17 — synthetic graphs: vary the *number* of SCCs.

Paper result: for Large-SCC (30-70 SCCs of 8K nodes) and Small-SCC
(6K-14K SCCs of 40 nodes), both 1PB-SCC and 1P-SCC finish everywhere
with 1PB-SCC ahead; 2P-SCC cannot handle the Large-SCC graphs and takes
hours on Small-SCC; DFS-SCC cannot process any case.
"""

import pytest

from benchmarks.conftest import run_algorithm, synthetic_workload

SWEEPS = {
    "large": [30, 40, 50, 60, 70],
    "small": [6_000, 8_000, 10_000, 12_000, 14_000],
}


def _cases():
    for scc_class, counts in SWEEPS.items():
        for count in counts:
            yield scc_class, count


@pytest.mark.parametrize("scc_class,num_sccs", list(_cases()))
@pytest.mark.parametrize("algorithm", ["1PB-SCC", "1P-SCC"])
def test_fig17_vary_scc_count(benchmark, scc_class, num_sccs, algorithm):
    planted = synthetic_workload(
        scc_class, 30_000_000, degree=5, num_sccs=num_sccs
    )
    graph = planted.graph
    record = run_algorithm(
        benchmark,
        graph,
        algorithm,
        workload=f"{scc_class}-x{num_sccs}",
        params={
            "scc_class": scc_class,
            "paper_num_sccs": num_sccs,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "planted": planted.num_planted,
        },
    )
    assert record.ok  # paper: both single-phase algorithms always finish
