"""Fig. 17 — synthetic graphs: vary the *number* of SCCs.

Paper result: for Large-SCC (30-70 SCCs of 8K nodes) and Small-SCC
(6K-14K SCCs of 40 nodes), both 1PB-SCC and 1P-SCC finish everywhere
with 1PB-SCC ahead; 2P-SCC cannot handle the Large-SCC graphs and takes
hours on Small-SCC; DFS-SCC cannot process any case.  Cells come from
:func:`repro.artifact.cases.fig17_cases`.
"""

import pytest

from benchmarks.conftest import case_params, run_case

CASES = case_params("fig17")


@pytest.mark.parametrize("case", CASES)
def test_fig17_vary_scc_count(benchmark, case):
    record = run_case(benchmark, case)
    assert record.ok  # paper: both single-phase algorithms always finish
