"""The benchmark-regression gate: golden I/O counts and SCC partitions.

This runner executes small-scale, fully deterministic variants of the
two headline benchmarks (``bench_table1_reduction.py`` — 1PB-SCC's
reduction on the webspam stand-in — and ``bench_fig12_webspam_size.py``
— the induced-subgraph size sweep) and compares what the I/O model
*counted* against golden JSON checked into ``benchmarks/golden/``:

* the six counted :class:`~repro.io.counter.IOStats` fields per case
  (block reads are the paper's ``# of I/Os`` — any drift is a
  regression, and an *improvement* must be acknowledged by regenerating
  the golden with ``--write-golden``);
* the SCC partition, fingerprinted as a SHA-256 over the canonicalised
  label array (wrong answers can't hide behind matching I/O);
* iteration counts and SCC totals.

The same cases are then re-run with prefetching enabled (cache off) and
must count *identical* I/O — the transparency contract of
``repro.io.prefetch`` enforced in CI on every push.  Each case is also
re-run with the *other* scan-kernel backend (``--kernels`` picks the
primary; default vector) and must produce identical counted I/O,
iteration counts and partition fingerprints — the decision-equivalence
contract of ``repro.kernels``.  The goldens were generated with the
scalar (paper-literal) semantics, so a passing gate proves both
backends still reproduce the seed trajectories exactly.

Finally each case is re-run under a fixed fault plan of transient read
errors (``FAULT_PLAN``) and must count the *same* I/O as the clean run
— failed attempts are retried, never charged — with ``io_retries``
equal to exactly the plan's :meth:`FaultPlan.planned_retries` and an
unchanged partition fingerprint.  That is the retry-transparency
contract of ``repro.io.faults``: a disk that misbehaves transiently
costs retries, not correctness and not counted I/O.

Each case also gets a *metrics-transparency* re-run with a live
:class:`~repro.obs.metrics.MetricsRegistry` attached and the background
:class:`~repro.obs.sampler.MetricsSampler` running at its default
cadence.  The sampler only observes — so counted I/O, iteration counts
and the partition fingerprint must be byte-identical to the primary
run.  That is the accounting-transparency contract of the live metrics
plane: turning telemetry on never changes what the model counts.

With ``--workers N`` every case additionally gets a *parallel-
determinism* re-run that stripes its edge scans across ``N`` forked
worker processes (see :mod:`repro.parallel`) and must reproduce the
primary run byte-for-byte: identical counted I/O in all six fields,
identical iteration counts, identical partition fingerprint.  That is
the deterministic-merge contract of the parallel executor — workers
change wall time, never the trajectory.

Wall-clock is deliberately NOT gated here (CI machines are noisy); the
counted block transfers are exact and machine-independent, which is the
point of measuring I/O in-model.

Usage::

    python -m benchmarks.regression --write-golden       # refresh goldens
    python -m benchmarks.regression --check              # CI gate
    python -m benchmarks.regression --check --out results.json \
        --trace-dir traces/                              # keep artifacts
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.artifact.manifest import partition_fingerprint
from repro.bench.harness import run_one
from repro.io.faults import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampler import MetricsSampler, MetricsWriter
from repro.graph.builders import induced_subgraph
from repro.graph.digraph import Digraph
from repro.workloads.realworld import webspam_like

#: Reproduction scale for the gate, relative to the paper's webspam
#: graph.  Small enough for CI, big enough that every algorithm touches
#: multiple blocks per scan.  Overridable for local experimentation —
#: but goldens record the scale they were generated at, and --check
#: refuses to compare across scales.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "2.5e-4"))

#: Per-run wall-clock limit (a hang should fail the gate, not stall CI).
TIME_LIMIT = float(os.environ.get("REPRO_BENCH_TIME_LIMIT", "300"))

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")
GOLDEN_PATH = os.path.join(GOLDEN_DIR, "regression.json")

#: The six counted transfer fields every case is pinned on.
IO_FIELDS = (
    "seq_reads", "seq_writes", "rand_reads", "rand_writes",
    "bytes_read", "bytes_written",
)

#: Lookahead depth used for the prefetch-transparency re-runs.
PREFETCH_DEPTH = 8

#: Fault plan for the retry-transparency re-runs: the first three block
#: reads fail transiently (the first one twice).  The smallest gated
#: case performs exactly 3 block reads, so ordinals 0-2 are the largest
#: set guaranteed to fire everywhere — which keeps ``io_retries`` equal
#: to ``planned_retries()`` for every case.
FAULT_PLAN = "seed=1;read-error@0x2;read-error@1;read-error@2"

#: Fig. 12 sweep, mirroring bench_fig12_webspam_size.py (including its
#: skip rule: 2P-SCC and DFS-SCC only survive the small subgraphs).
FIG12_FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)
FIG12_ALGORITHMS = ("1PB-SCC", "1P-SCC", "2P-SCC", "DFS-SCC")


def _webspam() -> Digraph:
    """The deterministic webspam stand-in at gate scale (Table 1's graph)."""
    return webspam_like(scale=0.4 * SCALE, seed=0, avg_degree=12.0).graph


def _subgraph_at(fraction: float) -> Digraph:
    """Fig. 12's induced subgraph at ``fraction`` of the node set."""
    graph = _webspam()
    if fraction >= 1.0:
        return graph
    rng = np.random.default_rng(int(fraction * 100))
    nodes = rng.choice(
        graph.num_nodes,
        size=int(round(graph.num_nodes * fraction)),
        replace=False,
    )
    sub, _ = induced_subgraph(graph, nodes)
    return sub


def _cases() -> List[Tuple[str, str, Callable[[], Digraph]]]:
    """(case_id, algorithm, graph factory) for every gated run."""
    cases: List[Tuple[str, str, Callable[[], Digraph]]] = [
        ("table1/webspam/1PB-SCC", "1PB-SCC", _webspam),
    ]
    for fraction in FIG12_FRACTIONS:
        for algorithm in FIG12_ALGORITHMS:
            if algorithm == "2P-SCC" and fraction > 0.4:
                continue  # bench_fig12's skip rule
            if algorithm == "DFS-SCC" and fraction > 0.2:
                # Tighter than bench_fig12: at 40% DFS-SCC straddles the
                # time limit, and a timeout status is machine-dependent —
                # the gate pins only deterministic outcomes.
                continue
            cases.append(
                (
                    f"fig12/webspam-{int(fraction * 100)}pct/{algorithm}",
                    algorithm,
                    lambda fraction=fraction: _subgraph_at(fraction),
                )
            )
    return cases


def _run_case(
    case_id: str,
    algorithm: str,
    graph: Digraph,
    trace_dir: Optional[str],
    prefetch_depth: int = 0,
    kernels: str = "vector",
    trace_suffix: str = "",
    fault_plan: Optional[str] = None,
    metrics: Optional[MetricsRegistry] = None,
    workers: int = 0,
) -> Dict[str, object]:
    trace_path = None
    if trace_dir is not None:
        suffix = ("-prefetch" if prefetch_depth else "") + trace_suffix
        trace_path = os.path.join(
            trace_dir, case_id.replace("/", "_") + suffix + ".jsonl"
        )
    record = run_one(
        graph,
        algorithm,
        workload=case_id,
        time_limit=TIME_LIMIT,
        keep_result=True,
        trace_path=trace_path,
        prefetch_depth=prefetch_depth,
        kernels=kernels,
        fault_plan=fault_plan,
        metrics=metrics,
        workers=workers,
    )
    entry: Dict[str, object] = {
        "algorithm": algorithm,
        "status": record.status,
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
    }
    if record.ok:
        assert record.result is not None
        io = record.result.stats.io
        entry["io"] = {fld: getattr(io, fld) for fld in IO_FIELDS}
        entry["iterations"] = record.iterations
        entry["num_sccs"] = record.num_sccs
        entry["partition_sha256"] = partition_fingerprint(record.result.labels)
        if fault_plan is not None:
            entry["io_retries"] = io.io_retries
            entry["faults_injected"] = io.faults_injected
        if workers:
            extras = record.result.stats.extras
            entry["workers"] = workers
            entry["parallel_batches"] = extras.get("parallel_batches", 0)
            entry["parallel_fallbacks"] = extras.get("parallel_fallbacks", 0)
    if trace_path is not None:
        entry["trace"] = os.path.basename(trace_path)
    return entry


def _compare_case(case_id: str, golden: Dict, current: Dict) -> List[str]:
    """Human-readable mismatches between one golden and current entry."""
    problems: List[str] = []
    if golden.get("status") != current.get("status"):
        problems.append(
            f"{case_id}: status {current.get('status')!r} != "
            f"golden {golden.get('status')!r}"
        )
        return problems
    golden_io = golden.get("io", {})
    current_io = current.get("io", {})
    for fld in IO_FIELDS:
        if golden_io.get(fld) != current_io.get(fld):
            problems.append(
                f"{case_id}: I/O-count regression in {fld}: "
                f"{current_io.get(fld)} != golden {golden_io.get(fld)}"
            )
    for key in ("iterations", "num_sccs", "partition_sha256", "nodes", "edges"):
        if golden.get(key) != current.get(key):
            problems.append(
                f"{case_id}: {key} {current.get(key)!r} != "
                f"golden {golden.get(key)!r}"
            )
    return problems


def run_gate(
    write_golden: bool,
    out_path: Optional[str],
    trace_dir: Optional[str],
    skip_prefetch_check: bool = False,
    skip_kernel_check: bool = False,
    skip_fault_check: bool = False,
    skip_metrics_check: bool = False,
    kernels: str = "vector",
    workers: int = 0,
) -> int:
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
    results: Dict[str, Dict[str, object]] = {}
    problems: List[str] = []
    other_kernels = "scalar" if kernels == "vector" else "vector"

    for case_id, algorithm, factory in _cases():
        graph = factory()
        entry = _run_case(case_id, algorithm, graph, trace_dir, kernels=kernels)
        results[case_id] = entry
        io = entry.get("io", {})
        print(
            f"  {case_id}: status={entry['status']} "
            f"reads={io.get('seq_reads', 0) + io.get('rand_reads', 0)} "
            f"writes={io.get('seq_writes', 0) + io.get('rand_writes', 0)} "
            f"sccs={entry.get('num_sccs')}"
        )
        if not skip_prefetch_check and entry["status"] == "ok":
            pf_entry = _run_case(
                case_id, algorithm, graph, trace_dir,
                prefetch_depth=PREFETCH_DEPTH, kernels=kernels,
            )
            for fld in IO_FIELDS:
                base_value = entry.get("io", {}).get(fld)  # type: ignore[union-attr]
                pf_value = pf_entry.get("io", {}).get(fld)  # type: ignore[union-attr]
                if base_value != pf_value:
                    problems.append(
                        f"{case_id}: prefetching changed counted {fld}: "
                        f"{pf_value} != {base_value} (transparency broken)"
                    )
            if entry.get("partition_sha256") != pf_entry.get("partition_sha256"):
                problems.append(
                    f"{case_id}: prefetching changed the SCC partition"
                )
        if not skip_kernel_check and entry["status"] == "ok":
            # Kernel transparency: the other backend must retrace the
            # run exactly — same counted I/O, iterations and partition.
            ok_entry = _run_case(
                case_id, algorithm, graph, trace_dir,
                kernels=other_kernels, trace_suffix=f"-{other_kernels}",
            )
            for fld in IO_FIELDS:
                base_value = entry.get("io", {}).get(fld)  # type: ignore[union-attr]
                ok_value = ok_entry.get("io", {}).get(fld)  # type: ignore[union-attr]
                if base_value != ok_value:
                    problems.append(
                        f"{case_id}: {other_kernels} kernels changed counted "
                        f"{fld}: {ok_value} != {base_value} "
                        f"(decision equivalence broken)"
                    )
            for key in ("iterations", "partition_sha256"):
                if entry.get(key) != ok_entry.get(key):
                    problems.append(
                        f"{case_id}: {other_kernels} kernels changed {key}: "
                        f"{ok_entry.get(key)!r} != {entry.get(key)!r}"
                    )
        if not skip_fault_check and entry["status"] == "ok":
            # Retry transparency: transient read errors must cost
            # retries only — same counted I/O, same partition, and
            # io_retries equal to exactly the planned failure count.
            plan = FaultPlan.parse(FAULT_PLAN)
            fault_entry = _run_case(
                case_id, algorithm, graph, trace_dir,
                kernels=kernels, trace_suffix="-faulted",
                fault_plan=FAULT_PLAN,
            )
            if fault_entry["status"] != "ok":
                problems.append(
                    f"{case_id}: faulted re-run failed with status "
                    f"{fault_entry['status']!r} (retries should recover)"
                )
            else:
                for fld in IO_FIELDS:
                    base_value = entry.get("io", {}).get(fld)  # type: ignore[union-attr]
                    f_value = fault_entry.get("io", {}).get(fld)  # type: ignore[union-attr]
                    if base_value != f_value:
                        problems.append(
                            f"{case_id}: transient faults changed counted "
                            f"{fld}: {f_value} != {base_value} "
                            f"(retries must not be charged)"
                        )
                if fault_entry.get("io_retries") != plan.planned_retries():
                    problems.append(
                        f"{case_id}: io_retries "
                        f"{fault_entry.get('io_retries')} != planned "
                        f"{plan.planned_retries()}"
                    )
                if entry.get("partition_sha256") != fault_entry.get(
                    "partition_sha256"
                ):
                    problems.append(
                        f"{case_id}: transient faults changed the SCC "
                        f"partition"
                    )
        if workers > 0 and entry["status"] == "ok":
            # Parallel determinism: striping the scans across forked
            # workers must reproduce the serial trajectory byte-for-byte
            # — the deterministic-merge contract of repro.parallel.
            par_entry = _run_case(
                case_id, algorithm, graph, trace_dir,
                kernels=kernels, trace_suffix=f"-workers{workers}",
                workers=workers,
            )
            if par_entry["status"] != "ok":
                problems.append(
                    f"{case_id}: --workers {workers} re-run failed with "
                    f"status {par_entry['status']!r}"
                )
            else:
                for fld in IO_FIELDS:
                    base_value = entry.get("io", {}).get(fld)  # type: ignore[union-attr]
                    p_value = par_entry.get("io", {}).get(fld)  # type: ignore[union-attr]
                    if base_value != p_value:
                        problems.append(
                            f"{case_id}: {workers} workers changed counted "
                            f"{fld}: {p_value} != {base_value} "
                            f"(deterministic merge broken)"
                        )
                for key in ("iterations", "num_sccs", "partition_sha256"):
                    if entry.get(key) != par_entry.get(key):
                        problems.append(
                            f"{case_id}: {workers} workers changed {key}: "
                            f"{par_entry.get(key)!r} != {entry.get(key)!r}"
                        )
        if not skip_metrics_check and entry["status"] == "ok":
            # Accounting transparency: a live metrics registry plus the
            # background sampler at default cadence must not change one
            # counted transfer or one partition label.
            registry = MetricsRegistry()
            writer = None
            if trace_dir is not None:
                writer = MetricsWriter(
                    os.path.join(
                        trace_dir,
                        case_id.replace("/", "_") + ".metrics.jsonl",
                    ),
                    metadata={"case": case_id},
                )
            sampler = MetricsSampler(registry, writer=writer)
            try:
                m_entry = _run_case(
                    case_id, algorithm, graph, trace_dir,
                    kernels=kernels, trace_suffix="-metrics",
                    metrics=registry,
                )
            finally:
                sampler.close()
            for fld in IO_FIELDS:
                base_value = entry.get("io", {}).get(fld)  # type: ignore[union-attr]
                m_value = m_entry.get("io", {}).get(fld)  # type: ignore[union-attr]
                if base_value != m_value:
                    problems.append(
                        f"{case_id}: metrics sampling changed counted "
                        f"{fld}: {m_value} != {base_value} "
                        f"(accounting transparency broken)"
                    )
            for key in ("iterations", "partition_sha256"):
                if entry.get(key) != m_entry.get(key):
                    problems.append(
                        f"{case_id}: metrics sampling changed {key}: "
                        f"{m_entry.get(key)!r} != {entry.get(key)!r}"
                    )

    payload = {
        "schema": 1,
        "scale": SCALE,
        "cases": results,
    }

    if write_golden:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {GOLDEN_PATH} ({len(results)} cases)")
    else:
        if not os.path.exists(GOLDEN_PATH):
            problems.append(
                f"no golden file at {GOLDEN_PATH}; run --write-golden first"
            )
        else:
            with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
                golden = json.load(handle)
            if golden.get("scale") != SCALE:
                problems.append(
                    f"golden was generated at scale {golden.get('scale')}, "
                    f"this run used {SCALE}; set REPRO_BENCH_SCALE to match"
                )
            else:
                golden_cases = golden.get("cases", {})
                for case_id in sorted(set(golden_cases) | set(results)):
                    if case_id not in results:
                        problems.append(f"{case_id}: in golden but not run")
                        continue
                    if case_id not in golden_cases:
                        problems.append(
                            f"{case_id}: not in golden; run --write-golden"
                        )
                        continue
                    problems.extend(
                        _compare_case(
                            case_id, golden_cases[case_id], results[case_id]
                        )
                    )

    if out_path is not None:
        report = dict(payload)
        report["problems"] = problems
        report["golden"] = os.path.relpath(GOLDEN_PATH)
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {out_path}")

    if problems:
        print(f"\n{len(problems)} regression(s):", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print("\nbench-regression gate: all cases match golden" if not write_golden
          else "bench-regression goldens refreshed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.regression", description=__doc__.splitlines()[0]
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--check", action="store_true",
        help="compare against benchmarks/golden/regression.json (CI gate)",
    )
    mode.add_argument(
        "--write-golden", action="store_true",
        help="run all cases and (re)write the golden file",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the full result JSON here (CI artifact)",
    )
    parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="write a JSONL run trace per case here (CI artifact)",
    )
    parser.add_argument(
        "--skip-prefetch-check", action="store_true",
        help="skip the prefetch-transparency re-runs (halves runtime)",
    )
    parser.add_argument(
        "--skip-kernel-check", action="store_true",
        help="skip the other-kernel transparency re-runs",
    )
    parser.add_argument(
        "--skip-fault-check", action="store_true",
        help="skip the retry-transparency (fault-injection) re-runs",
    )
    parser.add_argument(
        "--skip-metrics-check", action="store_true",
        help="skip the metrics accounting-transparency re-runs",
    )
    parser.add_argument(
        "--kernels", choices=["vector", "scalar"], default="vector",
        help="scan-kernel backend for the primary runs; the transparency "
             "re-run uses the other backend unless --skip-kernel-check",
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="also re-run every case with N forked scan workers and "
             "demand byte-identical counted I/O, iterations and "
             "partition fingerprints (parallel-determinism check)",
    )
    args = parser.parse_args(argv)
    return run_gate(
        write_golden=args.write_golden,
        out_path=args.out,
        trace_dir=args.trace_dir,
        skip_prefetch_check=args.skip_prefetch_check,
        skip_kernel_check=args.skip_kernel_check,
        skip_fault_check=args.skip_fault_check,
        skip_metrics_check=args.skip_metrics_check,
        kernels=args.kernels,
        workers=args.workers,
    )


if __name__ == "__main__":
    raise SystemExit(main())
