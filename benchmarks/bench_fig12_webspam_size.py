"""Fig. 12 — WEBSPAM-UK2007: vary graph size (20 %–100 % induced subgraphs).

Paper result: only 1PB-SCC completes at every size; 1P-SCC survives up
to ~60 % of the graph; 2P-SCC and DFS-SCC fail everywhere.  Time and
I/O grow with graph size for the survivors.

The reproduction sweeps induced subgraphs of the webspam stand-in.  At
reproduction scale 1P-SCC tends to survive further than the paper's
(absolute size is what kills it there); the headline shape — 1PB-SCC
cheapest and always finishing, cost growing with size — holds.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_algorithm, webspam_workload

from repro.graph.builders import induced_subgraph

FRACTIONS = [0.2, 0.4, 0.6, 0.8, 1.0]
ALGORITHMS = ["1PB-SCC", "1P-SCC", "2P-SCC", "DFS-SCC"]


def subgraph_at(fraction: float):
    planted = webspam_workload()
    graph = planted.graph
    if fraction >= 1.0:
        return graph
    rng = np.random.default_rng(int(fraction * 100))
    nodes = rng.choice(
        graph.num_nodes,
        size=int(round(graph.num_nodes * fraction)),
        replace=False,
    )
    sub, _ = induced_subgraph(graph, nodes)
    return sub


@pytest.mark.parametrize("fraction", FRACTIONS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig12_vary_node_size(benchmark, fraction, algorithm):
    if algorithm in ("2P-SCC", "DFS-SCC") and fraction > 0.4:
        pytest.skip(
            "paper Fig. 12: 2P-SCC and DFS-SCC cannot complete on the "
            "larger webspam subgraphs; measured only on the small end"
        )
    graph = subgraph_at(fraction)
    run_algorithm(
        benchmark,
        graph,
        algorithm,
        workload=f"webspam-{int(fraction * 100)}pct",
        params={
            "fraction": fraction,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
        },
    )
