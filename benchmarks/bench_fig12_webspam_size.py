"""Fig. 12 — WEBSPAM-UK2007: vary graph size (20 %–100 % induced subgraphs).

Paper result: only 1PB-SCC completes at every size; 1P-SCC survives up
to ~60 % of the graph; 2P-SCC and DFS-SCC fail everywhere.  Time and
I/O grow with graph size for the survivors.

The reproduction sweeps induced subgraphs of the webspam stand-in.  At
reproduction scale 1P-SCC tends to survive further than the paper's
(absolute size is what kills it there); the headline shape — 1PB-SCC
cheapest and always finishing, cost growing with size — holds.  The
paper's skip rule (2P/DFS only measured on the small subgraphs) is
encoded in :func:`repro.artifact.cases.fig12_cases`.
"""

import pytest

from benchmarks.conftest import case_params, run_case

CASES = case_params("fig12")


@pytest.mark.parametrize("case", CASES)
def test_fig12_vary_node_size(benchmark, case):
    run_case(benchmark, case)
