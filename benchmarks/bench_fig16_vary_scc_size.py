"""Fig. 16 — synthetic graphs: vary the size of the planted SCCs.

Paper result: for Massive-SCC (200K-600K) and Large-SCC (4K-12K) only
1P-SCC and 1PB-SCC finish within the limit, with 1PB-SCC best; for
Small-SCC (20-60) 2P-SCC takes hours and DFS-SCC cannot process any
case.  Cost grows mildly with SCC size for the single-phase algorithms
(bigger SCCs mean longer contraction paths, but also more pruning).
"""

import pytest

from benchmarks.conftest import run_algorithm, synthetic_workload

SWEEPS = {
    "massive": [200_000, 300_000, 400_000, 500_000, 600_000],
    "large": [4_000, 6_000, 8_000, 10_000, 12_000],
    "small": [20, 30, 40, 50, 60],
}


def _cases():
    for scc_class, sizes in SWEEPS.items():
        for size in sizes:
            yield scc_class, size


@pytest.mark.parametrize("scc_class,scc_size", list(_cases()))
@pytest.mark.parametrize("algorithm", ["1PB-SCC", "1P-SCC"])
def test_fig16_vary_scc_size(benchmark, scc_class, scc_size, algorithm):
    planted = synthetic_workload(
        scc_class, 30_000_000, degree=5, scc_size=scc_size
    )
    graph = planted.graph
    record = run_algorithm(
        benchmark,
        graph,
        algorithm,
        workload=f"{scc_class}-s{scc_size}",
        params={
            "scc_class": scc_class,
            "paper_scc_size": scc_size,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
        },
    )
    # Paper: "Only 1P-SCC and 1PB-SCC can find all SCCs within the
    # time limit" — they must not fail here either.
    assert record.ok


@pytest.mark.parametrize("scc_size", SWEEPS["small"][:2])
def test_fig16_2p_on_small_sccs(benchmark, scc_size):
    """2P-SCC's only completed cells in the paper's Fig. 16 are the
    Small-SCC cases (3.5-4.2 hours); measured at the small end."""
    planted = synthetic_workload(
        "small", 30_000_000, degree=5, scc_size=scc_size
    )
    run_algorithm(
        benchmark,
        planted.graph,
        "2P-SCC",
        workload=f"small-s{scc_size}",
        params={"scc_class": "small", "paper_scc_size": scc_size},
    )
