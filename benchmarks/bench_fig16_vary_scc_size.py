"""Fig. 16 — synthetic graphs: vary the size of the planted SCCs.

Paper result: for Massive-SCC (200K-600K) and Large-SCC (4K-12K) only
1P-SCC and 1PB-SCC finish within the limit, with 1PB-SCC best; for
Small-SCC (20-60) 2P-SCC takes hours and DFS-SCC cannot process any
case.  Cost grows mildly with SCC size for the single-phase algorithms
(bigger SCCs mean longer contraction paths, but also more pruning).
Cells — the single-phase sweeps plus 2P-SCC's only-completed small-SCC
cases — come from :func:`repro.artifact.cases.fig16_cases`.
"""

import pytest

from benchmarks.conftest import case_params, run_case

CASES = case_params("fig16")


@pytest.mark.parametrize("case", CASES)
def test_fig16_vary_scc_size(benchmark, case):
    record = run_case(benchmark, case)
    if case.algorithm in ("1PB-SCC", "1P-SCC"):
        # Paper: "Only 1P-SCC and 1PB-SCC can find all SCCs within the
        # time limit" — they must not fail here either.
        assert record.ok
