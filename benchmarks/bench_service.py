"""Latency, shedding and rebuild-availability of the SCC query daemon.

Boots a real :class:`repro.service.SCCServer` over a generated workload
graph and measures the serving plane end to end, over the wire:

* **Steady-state latency** — p50/p99 of ``reach`` round-trips from
  concurrent clients against an idle daemon.
* **Rebuild-while-serving availability** — the same query load while a
  background rebuild runs (stretched to a measurable window); reports
  the fraction answered, how many were served stale, and how many were
  refused with a *typed* error.
* **Load shedding** — a deliberate overload of a one-worker daemon;
  reports the shed rate and verifies refusals are immediate.
* **Zero wrong answers** — the hard gate.  The ingested edges are
  duplicates of existing edges, so the condensation is provably
  unchanged; every answer before, during and after the rebuild must
  equal the pre-rebuild ground truth, and the post-rebuild fingerprint
  must equal the pre-rebuild one.  Degradation may change
  *availability*, never *answers*.

Run standalone (pytest-benchmark not required)::

    python -m benchmarks.bench_service
    python -m benchmarks.bench_service --out BENCH_service.json

Environment: ``REPRO_BENCH_SCALE`` scales the workload graph,
``REPRO_BENCH_QUERIES`` the per-phase query count.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional, Tuple

# Serving-plane benchmark: the simulated disk must be OFF so latency
# measures the daemon, not a per-block sleep.  Must precede repro.io use.
os.environ["REPRO_SIM_SEEK_MS"] = "0"
os.environ["REPRO_SIM_TRANSFER_MS"] = "0"

import numpy as np  # noqa: E402

from repro.graph.storage import save_graph  # noqa: E402
from repro.service import (  # noqa: E402
    SCCServer,
    ServiceClient,
    ServiceConfig,
    wait_until_ready,
)
from repro.workloads.realworld import webspam_like  # noqa: E402

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "2.5e-4"))
QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "400"))
CLIENTS = 4
SEED = 0

#: Seconds the background rebuild is stretched so the serving-while-
#: rebuilding window is measurable at bench scale (recorded in the JSON).
REBUILD_STRETCH_S = 1.5

#: The acceptance bars (loose enough for shared CI machines; the
#: wrong-answer and fingerprint bars are absolute).
GATE = {
    "max_wrong_answers": 0,
    "min_rebuild_availability": 0.95,
    "require_fingerprint_stable": True,
    "min_shed_fraction_under_overload": 0.05,
    "max_p99_ms": 250.0,
}

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_service.json",
)


def _percentile(samples: List[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples), q))


def _query_load(
    port: int,
    pairs: List[Tuple[int, int]],
    expected: Dict[Tuple[int, int], bool],
) -> Dict[str, object]:
    """Fire ``pairs`` from CLIENTS threads; tally outcomes and latency."""
    latencies: List[float] = []
    outcomes = {"ok": 0, "stale": 0, "refused": 0, "wrong": 0}
    lock = threading.Lock()
    chunks = [pairs[i::CLIENTS] for i in range(CLIENTS)]

    def run(chunk: List[Tuple[int, int]]) -> None:
        with ServiceClient("127.0.0.1", port, timeout=30.0) as client:
            for u, v in chunk:
                started = time.perf_counter()
                response = client.request(
                    "reach", u=u, v=v, deadline_ms=5000
                )
                elapsed = time.perf_counter() - started
                with lock:
                    latencies.append(elapsed)
                    if response.get("ok"):
                        outcomes["ok"] += 1
                        if response.get("stale"):
                            outcomes["stale"] += 1
                        if response["result"]["reachable"] != expected[(u, v)]:
                            outcomes["wrong"] += 1
                    else:
                        outcomes["refused"] += 1

    threads = [
        threading.Thread(target=run, args=(chunk,), daemon=True)
        for chunk in chunks
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    total = max(1, outcomes["ok"] + outcomes["refused"])
    return {
        "queries": len(pairs),
        "answered": outcomes["ok"],
        "served_stale": outcomes["stale"],
        "refused_typed": outcomes["refused"],
        "wrong_answers": outcomes["wrong"],
        "availability": outcomes["ok"] / total,
        "p50_ms": round(_percentile(latencies, 50) * 1000, 3),
        "p99_ms": round(_percentile(latencies, 99) * 1000, 3),
        "mean_ms": round(statistics.mean(latencies) * 1000, 3),
    }


def _overload_phase(graph_path: str, root: str) -> Dict[str, object]:
    """A one-worker daemon under a pipelined burst: refusals are typed."""
    config = ServiceConfig(
        graph_path=graph_path,
        service_root=root,
        query_workers=1,
        queue_max=8,
        high_water=2,
        default_deadline_ms=10_000,
        auto_rebuild=False,
    )
    server = SCCServer(config)
    server.start()
    try:
        wait_until_ready("127.0.0.1", server.port, timeout=120)
        burst = 40
        with ServiceClient("127.0.0.1", server.port, timeout=30.0) as hog:
            # Park the only worker, then flood past the high-water mark
            # without waiting for responses (a pipelined burst).
            hog._sock.sendall(
                json.dumps({"id": 0, "op": "sleep", "ms": 1500}).encode()
                + b"\n"
            )
            time.sleep(0.2)
            with ServiceClient("127.0.0.1", server.port, timeout=30.0) as c:
                frames = b"".join(
                    json.dumps(
                        {"id": i, "op": "reach", "u": 0, "v": 1,
                         "deadline_ms": 5000}
                    ).encode() + b"\n"
                    for i in range(1, burst + 1)
                )
                started = time.perf_counter()
                c._sock.sendall(frames)
                outcomes: Dict[str, int] = {}
                shed_deadline_s = None
                reader = c._sock.makefile("rb")
                for _ in range(burst):
                    response = json.loads(reader.readline())
                    if response.get("ok"):
                        outcomes["ok"] = outcomes.get("ok", 0) + 1
                    else:
                        code = response["error"]["code"]
                        assert code in ("shed", "deadline_exceeded"), response
                        outcomes[code] = outcomes.get(code, 0) + 1
                        if code == "shed" and shed_deadline_s is None:
                            # Sheds are written by the dispatch thread,
                            # so the first one bounds refusal latency.
                            shed_deadline_s = time.perf_counter() - started
        shed = outcomes.get("shed", 0)
        return {
            "burst_queries": burst,
            "answered": outcomes.get("ok", 0),
            "shed": shed,
            "deadline_exceeded": outcomes.get("deadline_exceeded", 0),
            "shed_fraction": shed / burst,
            "first_shed_ms": round(shed_deadline_s * 1000, 3)
            if shed_deadline_s is not None
            else None,
        }
    finally:
        server.stop()


def run_bench(out_path: str) -> int:
    workload = webspam_like(scale=SCALE, seed=SEED, avg_degree=8.0)
    graph = workload.graph
    rng = np.random.default_rng(SEED)

    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        graph_path = os.path.join(tmp, "graph.rgr")
        save_graph(graph, graph_path)

        server = SCCServer(
            ServiceConfig(
                graph_path=graph_path,
                service_root=os.path.join(tmp, "svc"),
                query_workers=4,
                default_deadline_ms=10_000,
            )
        )
        server.start()
        try:
            health = wait_until_ready("127.0.0.1", server.port, timeout=300)
            fingerprint_before = health["fingerprint"]

            pairs = [
                (int(u), int(v))
                for u, v in rng.integers(
                    0, graph.num_nodes, size=(QUERIES, 2)
                )
            ]
            # Ground truth = the daemon's own pre-rebuild answers; the
            # rebuild below provably cannot change them.
            expected: Dict[Tuple[int, int], bool] = {}
            with ServiceClient("127.0.0.1", server.port, timeout=30.0) as c:
                for u, v in pairs:
                    expected[(u, v)] = c.reach(u, v, deadline_ms=10_000)

            steady = _query_load(server.port, pairs, expected)

            # Stretch the rebuild so serving-during-rebuild is a real
            # measured window, then ingest condensation-neutral edges
            # (duplicates of existing ones) and query through the swap.
            original = server._build_generation

            def stretched(path: str, generation: int):
                time.sleep(REBUILD_STRETCH_S)
                return original(path, generation)

            server._build_generation = stretched
            duplicates = graph.edges[
                rng.integers(0, graph.num_edges, size=16)
            ].tolist()
            with ServiceClient("127.0.0.1", server.port, timeout=30.0) as c:
                ingest = c.ingest([tuple(e) for e in duplicates])
                assert ingest["rebuild"]["scheduled"], ingest
            during = _query_load(server.port, pairs, expected)
            deadline = time.monotonic() + 300
            with ServiceClient("127.0.0.1", server.port, timeout=30.0) as c:
                while time.monotonic() < deadline:
                    health = c.health()
                    if (
                        health["state"] == "serving"
                        and health["generation"] == 1
                    ):
                        break
                    time.sleep(0.1)
            after = _query_load(server.port, pairs, expected)
            fingerprint_after = health["fingerprint"]
        finally:
            server.stop()

        overload = _overload_phase(
            graph_path, os.path.join(tmp, "svc")
        )

    wrong = (
        steady["wrong_answers"]
        + during["wrong_answers"]
        + after["wrong_answers"]
    )
    checks = {
        "zero_wrong_answers": wrong <= GATE["max_wrong_answers"],
        "rebuild_availability": during["availability"]
        >= GATE["min_rebuild_availability"],
        "fingerprint_stable": fingerprint_after == fingerprint_before,
        "overload_sheds": overload["shed_fraction"]
        >= GATE["min_shed_fraction_under_overload"],
        "steady_p99": steady["p99_ms"] <= GATE["max_p99_ms"],
    }
    report = {
        "workload": {
            "kind": "webspam-like",
            "scale": SCALE,
            "seed": SEED,
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
        },
        "clients": CLIENTS,
        "queries_per_phase": QUERIES,
        "rebuild_stretch_s": REBUILD_STRETCH_S,
        "steady": steady,
        "during_rebuild": during,
        "after_rebuild": after,
        "overload": overload,
        "fingerprint_before": fingerprint_before,
        "fingerprint_after": fingerprint_after,
        "wrong_answers_total": wrong,
        "gate": GATE,
        "checks": checks,
        "pass": all(checks.values()),
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"workload: {graph.num_nodes:,} nodes / {graph.num_edges:,} edges")
    print(
        f"steady:   p50 {steady['p50_ms']}ms  p99 {steady['p99_ms']}ms"
    )
    print(
        f"rebuild:  availability {during['availability']:.3f}  "
        f"stale {during['served_stale']}  wrong {wrong}"
    )
    print(
        f"overload: shed {overload['shed']}/{overload['burst_queries']} "
        f"({overload['shed_fraction']:.2%})"
    )
    print(f"wrote {out_path}")
    for name, ok in checks.items():
        print(f"  {'PASS' if ok else 'FAIL'}  {name}")
    return 0 if report["pass"] else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    return run_bench(args.out)


if __name__ == "__main__":
    sys.exit(main())
