"""Edge-scan CPU throughput of the vector kernels versus the scalar loops.

This is the headline measurement for the ``repro.kernels`` layer: the
vector backend classifies each scanned batch against an Euler-tour
snapshot of the spanning structure (two array compares per ancestor
test) instead of boxing every edge into Python ints and walking parent
pointers.  The claim gated here: **at least 2x edge-scan throughput
(edges classified per second) for 1P-SCC** on the fig12-style webspam
stand-in, with identical SCC partitions.  1PB/2P/DFS throughputs are
recorded alongside for the full picture.

Measurement regime: the *simulated disk is off* (the inverse of
``bench_prefetch``'s regime) — this benchmark isolates the CPU side of
the scan loops, so counted transfers must cost only their real
microseconds.  Throughput is computed from the run's own trace: every
scan span carries an ``edges-classified`` counter and its wall time, so

    throughput = sum(edges-classified) / sum(scan-span wall seconds)

over the algorithm's scan spans ("edge-scan" for 1P, "batch-scan" for
1PB, "pushdown-scan"/"search-scan" for 2P, "dfs-scan" for DFS).  That
numerator is identical across backends by the transparency contract
(checked per run below and byte-for-byte by ``benchmarks/regression.py``),
so the ratio compares pure classification CPU.  Methodology details:
``benchmarks/README.md``.

Run standalone (pytest-benchmark not required)::

    python -m benchmarks.bench_kernels                # default output
    python -m benchmarks.bench_kernels --out BENCH_kernels.json

Environment: ``REPRO_BENCH_SCALE`` scales the webspam stand-in (same
knob as the regression gate), ``REPRO_BENCH_ROUNDS`` the timing rounds
(median is reported).
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
from typing import Dict, List, Optional, Tuple

# CPU benchmark: the simulated disk must be OFF no matter what the
# shell exports — a per-block sleep would drown the scan-loop CPU this
# benchmark exists to measure.  Must happen before repro.io is used
# (devices read the env at construction).
os.environ["REPRO_SIM_SEEK_MS"] = "0"
os.environ["REPRO_SIM_TRANSFER_MS"] = "0"

from repro import compute_sccs  # noqa: E402
from repro.core.validate import partitions_equal  # noqa: E402
from repro.graph.digraph import Digraph  # noqa: E402
from repro.obs import Tracer  # noqa: E402
from repro.workloads.realworld import webspam_like  # noqa: E402

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "2.5e-4"))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))

#: The spans that cover each algorithm's edge-classification work; all
#: carry the ``edges-classified`` counter.
SCAN_SPANS: Dict[str, Tuple[str, ...]] = {
    "1P-SCC": ("edge-scan",),
    "1PB-SCC": ("batch-scan",),
    "2P-SCC": ("pushdown-scan", "search-scan"),
    "DFS-SCC": ("dfs-scan",),
}

#: Workload scale per algorithm, as a fraction of the gate scale: the
#: per-edge algorithms handle the full stand-in, the heavier trees get
#: proportionally smaller graphs.  DFS-SCC gets the smallest slice —
#: its per-move preorder renumbering is superlinear in |V| (the paper's
#: Cost-3), which is why the paper itself measures DFS-SCC only at the
#: cheapest points (see benchmarks/README.md's conventions).
WORKLOAD_FRACTION: Dict[str, float] = {
    "1P-SCC": 1.0,
    "1PB-SCC": 1.0,
    "2P-SCC": 0.4,
    "DFS-SCC": 0.05,
}

#: 8 KiB blocks, as in bench_prefetch: hundreds of blocks per scan at
#: gate scale, so per-batch kernel dispatch dominates per-call overhead.
BLOCK_SIZE = 8192

#: The acceptance bar: 1P-SCC must classify edges at least this many
#: times faster with the vector backend.
MIN_SPEEDUP = 2.0
GATED_ALGORITHM = "1P-SCC"

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_kernels.json",
)


def _workload(fraction: float) -> Digraph:
    return webspam_like(scale=fraction * SCALE, seed=0, avg_degree=12.0).graph


def _scan_metrics(tracer: Tracer, algorithm: str) -> Tuple[int, float]:
    """(edges classified, scan wall seconds) summed over the scan spans."""
    names = SCAN_SPANS[algorithm]
    edges = 0
    seconds = 0.0
    for span in tracer.spans:
        if span.name in names:
            edges += int(span.counters.get("edges-classified", 0))
            seconds += span.wall_seconds
    return edges, seconds


def _time_backend(
    graph: Digraph, algorithm: str, kernels: str, rounds: int
) -> Dict[str, object]:
    """Median-of-``rounds`` scan throughput for one (algorithm, backend)."""
    throughputs: List[float] = []
    edges = 0
    scan_seconds = 0.0
    rebuilds = 0
    fallbacks = 0
    fast_path = 0
    labels = None
    iterations = None
    for _ in range(rounds):
        tracer = Tracer()
        result = compute_sccs(
            graph,
            algorithm=algorithm,
            block_size=BLOCK_SIZE,
            tracer=tracer,
            kernels=kernels,
        )
        edges, scan_seconds = _scan_metrics(tracer, algorithm)
        if scan_seconds <= 0 or edges == 0:
            raise RuntimeError(
                f"{algorithm}: no scan-span signal (edges={edges}, "
                f"seconds={scan_seconds})"
            )
        throughputs.append(edges / scan_seconds)
        totals: Dict[str, int] = {}
        for span in tracer.spans:
            for key, value in span.counters.items():
                totals[key] = totals.get(key, 0) + int(value)
        rebuilds = totals.get("oracle-rebuilds", 0)
        fallbacks = totals.get("kernel-fallbacks", 0)
        fast_path = totals.get("kernel-fast-path", 0)
        labels = result.labels
        iterations = result.stats.iterations
    return {
        "kernels": kernels,
        "rounds": rounds,
        "edges_classified": edges,
        "scan_seconds_last": scan_seconds,
        "throughput_median": statistics.median(throughputs),
        "throughput_best": max(throughputs),
        "throughput_all": throughputs,
        "oracle_rebuilds": rebuilds,
        "kernel_fallbacks": fallbacks,
        "kernel_fast_path": fast_path,
        "iterations": iterations,
        "_labels": labels,  # stripped before serialization
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.bench_kernels",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT, metavar="PATH",
        help=f"result JSON path (default: {os.path.relpath(DEFAULT_OUT)})",
    )
    parser.add_argument(
        "--rounds", type=int, default=ROUNDS,
        help="timing rounds per cell (median reported)",
    )
    parser.add_argument(
        "--no-assert", action="store_true",
        help="record results without enforcing the 2x bar",
    )
    args = parser.parse_args(argv)

    results: Dict[str, Dict[str, object]] = {}
    failures: List[str] = []
    workloads: Dict[str, Dict[str, object]] = {}
    for algorithm, spans in SCAN_SPANS.items():
        fraction = WORKLOAD_FRACTION[algorithm]
        graph = _workload(fraction)
        workloads[algorithm] = {
            "generator": "webspam_like",
            "scale": fraction * SCALE,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
        }
        print(
            f"{algorithm}: webspam-like scale={fraction * SCALE:g} "
            f"({graph.num_nodes:,} nodes, {graph.num_edges:,} edges), "
            f"scan spans {'/'.join(spans)}"
        )
        scalar = _time_backend(graph, algorithm, "scalar", args.rounds)
        vector = _time_backend(graph, algorithm, "vector", args.rounds)
        if not partitions_equal(scalar.pop("_labels"), vector.pop("_labels")):
            raise RuntimeError(f"{algorithm}: kernels changed the SCC partition")
        if scalar["iterations"] != vector["iterations"]:
            raise RuntimeError(f"{algorithm}: kernels changed the iteration count")
        scalar_tp = float(scalar["throughput_median"])  # type: ignore[arg-type]
        vector_tp = float(vector["throughput_median"])  # type: ignore[arg-type]
        speedup = vector_tp / scalar_tp if scalar_tp > 0 else 0.0
        results[algorithm] = {
            "scalar": scalar,
            "vector": vector,
            "speedup": speedup,
        }
        print(
            f"  scalar {scalar_tp:,.0f} edges/s -> vector {vector_tp:,.0f} "
            f"edges/s ({vector['kernel_fast_path']:,} fast-path, "
            f"{vector['kernel_fallbacks']:,} fallbacks, "
            f"{vector['oracle_rebuilds']} oracle rebuilds): {speedup:.2f}x"
        )
        if algorithm == GATED_ALGORITHM and speedup < MIN_SPEEDUP:
            failures.append(
                f"{algorithm}: {speedup:.2f}x < {MIN_SPEEDUP:.1f}x bar"
            )

    payload = {
        "schema": 1,
        "workloads": workloads,
        "block_size": BLOCK_SIZE,
        "simulated_disk": {
            "seek_ms": 0,
            "transfer_ms": 0,
            "note": (
                "forced off: this benchmark isolates scan-loop CPU; the "
                "I/O-side regime is bench_prefetch's job"
            ),
        },
        "metric": (
            "edges classified per second of scan-span wall time "
            "(sum of edges-classified counters / sum of scan-span seconds)"
        ),
        "gate": {"algorithm": GATED_ALGORITHM, "min_speedup": MIN_SPEEDUP},
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    if failures and not args.no_assert:
        print("\nbelow the speedup bar:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
