"""Table 3 — time and #I/Os on the three real large datasets.

Paper result (cit-patents / go-uniprot / citeseerx):

=========  ======  ======  ======  =======
metric     1PB     1P      2P      DFS
=========  ======  ======  ======  =======
time       24/22/10s  22/21/8s  701/301/517s  840/856/669s
# of I/Os  16K/26K/15K  13K/48K/13K  133K/472K/105K  668K/620K/393K
=========  ======  ======  ======  =======

Expected *shape* at reproduction scale: 1P-SCC and 1PB-SCC within a
small factor of each other (1P usually slightly ahead — these graphs
have only small SCCs), 2P-SCC an order of magnitude behind, DFS-SCC
slowest, and the same ordering for block I/Os.  Cells (including
DFS-SCC's 5-hour-budget headroom) come from
:func:`repro.artifact.cases.table3_cases`.
"""

import pytest

from benchmarks.conftest import case_params, run_case

CASES = case_params("table3")


@pytest.mark.parametrize("case", CASES)
def test_table3(benchmark, case):
    record = run_case(benchmark, case)
    # All four algorithms agree on the SCC count whenever they finish.
    if record.ok:
        assert record.num_sccs is not None
