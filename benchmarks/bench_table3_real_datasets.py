"""Table 3 — time and #I/Os on the three real large datasets.

Paper result (cit-patents / go-uniprot / citeseerx):

=========  ======  ======  ======  =======
metric     1PB     1P      2P      DFS
=========  ======  ======  ======  =======
time       24/22/10s  22/21/8s  701/301/517s  840/856/669s
# of I/Os  16K/26K/15K  13K/48K/13K  133K/472K/105K  668K/620K/393K
=========  ======  ======  ======  =======

Expected *shape* at reproduction scale: 1P-SCC and 1PB-SCC within a
small factor of each other (1P usually slightly ahead — these graphs
have only small SCCs), 2P-SCC an order of magnitude behind, DFS-SCC
slowest, and the same ordering for block I/Os.
"""

import pytest

from benchmarks.conftest import TIME_LIMIT, real_dataset, run_algorithm

DATASETS = ["cit-patents", "go-uniprot", "citeseerx"]
ALGORITHMS = ["1PB-SCC", "1P-SCC", "2P-SCC", "DFS-SCC"]


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_table3(benchmark, dataset, algorithm):
    graph = real_dataset(dataset)
    # DFS-SCC is the designated-slow baseline; give it the headroom the
    # paper's 5-hour budget represents so the table completes.
    time_limit = TIME_LIMIT * 4 if algorithm == "DFS-SCC" else TIME_LIMIT
    record = run_algorithm(
        benchmark,
        graph,
        algorithm,
        workload=dataset,
        time_limit=time_limit,
        params={"dataset": dataset, "nodes": graph.num_nodes,
                "edges": graph.num_edges},
    )
    # All four algorithms agree on the SCC count whenever they finish.
    if record.ok:
        assert record.num_sccs is not None
