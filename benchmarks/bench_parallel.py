"""Edge-scan throughput of the parallel scan executor versus one process.

This is the headline measurement for the ``repro.parallel`` layer: with
``workers=N`` the main process streams counted blocks and applies
decisions while N forked workers classify batches against the
shared-memory snapshot — so the scan loop's per-batch CPU drops to
validation plus apply.  The claim gated here: **at least 2x edge-scan
throughput (edges classified per second of scan-span wall time) for
1P-SCC at 4 workers** over the single-process vector baseline, with an
identical SCC partition, identical iteration count and identical
counted I/O (the byte-level identity is separately enforced by
``benchmarks/regression.py --workers``).

Measurement regime: the *simulated disk is off* (same regime as
``bench_kernels``) — workers parallelise classification CPU, not
counted transfers, so the benchmark isolates exactly the component
they accelerate.  Throughput comes from the run's own trace: every
``edge-scan`` span carries an ``edges-classified`` counter and its
wall time, and the counter is identical across worker counts by the
determinism contract, so the ratio compares pure scan-loop economics.

Run standalone (pytest-benchmark not required)::

    python -m benchmarks.bench_parallel                 # default output
    python -m benchmarks.bench_parallel --out BENCH_parallel.json

Environment: ``REPRO_BENCH_SCALE`` scales the webspam stand-in (same
knob as the regression gate), ``REPRO_BENCH_ROUNDS`` the timing rounds
(median is reported).
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
from typing import Dict, List, Optional, Tuple

# CPU benchmark: the simulated disk must be OFF no matter what the
# shell exports — a per-block sleep would drown the scan-loop CPU this
# benchmark exists to measure.  Must happen before repro.io is used
# (devices read the env at construction).
os.environ["REPRO_SIM_SEEK_MS"] = "0"
os.environ["REPRO_SIM_TRANSFER_MS"] = "0"

from repro import compute_sccs  # noqa: E402
from repro.core.validate import partitions_equal  # noqa: E402
from repro.graph.digraph import Digraph  # noqa: E402
from repro.obs import Tracer  # noqa: E402
from repro.workloads.realworld import webspam_like  # noqa: E402

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "2.5e-4"))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))

ALGORITHM = "1P-SCC"
SCAN_SPANS: Tuple[str, ...] = ("edge-scan",)

#: Worker counts measured; the gate applies to the last one.
WORKER_COUNTS: Tuple[int, ...] = (2, 4)

#: 8 KiB blocks, as in bench_kernels: hundreds of blocks per scan at
#: gate scale, so per-batch shipping amortises per-call overhead.
BLOCK_SIZE = 8192

#: The acceptance bar: 1P-SCC must classify edges at least this many
#: times faster at 4 workers than the single-process vector baseline.
MIN_SPEEDUP = 2.0
GATED_WORKERS = 4

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_parallel.json",
)


def _workload() -> Digraph:
    return webspam_like(scale=SCALE, seed=0, avg_degree=12.0).graph


def _scan_metrics(tracer: Tracer) -> Tuple[int, float]:
    """(edges classified, scan wall seconds) summed over the scan spans."""
    edges = 0
    seconds = 0.0
    for span in tracer.spans:
        if span.name in SCAN_SPANS:
            edges += int(span.counters.get("edges-classified", 0))
            seconds += span.wall_seconds
    return edges, seconds


def _time_workers(graph: Digraph, workers: int, rounds: int) -> Dict[str, object]:
    """Median-of-``rounds`` scan throughput for one worker count."""
    throughputs: List[float] = []
    wall: List[float] = []
    edges = 0
    scan_seconds = 0.0
    extras: Dict[str, object] = {}
    labels = None
    iterations = None
    for _ in range(rounds):
        tracer = Tracer()
        result = compute_sccs(
            graph,
            algorithm=ALGORITHM,
            block_size=BLOCK_SIZE,
            tracer=tracer,
            workers=workers,
        )
        edges, scan_seconds = _scan_metrics(tracer)
        if scan_seconds <= 0 or edges == 0:
            raise RuntimeError(
                f"workers={workers}: no scan-span signal (edges={edges}, "
                f"seconds={scan_seconds})"
            )
        throughputs.append(edges / scan_seconds)
        wall.append(result.stats.wall_seconds)
        extras = {
            key: value
            for key, value in result.stats.extras.items()
            if key.startswith("parallel_") or key == "workers"
        }
        labels = result.labels
        iterations = result.stats.iterations
    return {
        "workers": workers,
        "rounds": rounds,
        "edges_classified": edges,
        "scan_seconds_last": scan_seconds,
        "throughput_median": statistics.median(throughputs),
        "throughput_best": max(throughputs),
        "throughput_all": throughputs,
        "wall_seconds_median": statistics.median(wall),
        "extras": extras,
        "iterations": iterations,
        "_labels": labels,  # stripped before serialization
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.bench_parallel",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT, metavar="PATH",
        help=f"result JSON path (default: {os.path.relpath(DEFAULT_OUT)})",
    )
    parser.add_argument(
        "--rounds", type=int, default=ROUNDS,
        help="timing rounds per cell (median reported)",
    )
    parser.add_argument(
        "--no-assert", action="store_true",
        help="record results without enforcing the 2x bar",
    )
    args = parser.parse_args(argv)

    graph = _workload()
    print(
        f"{ALGORITHM}: webspam-like scale={SCALE:g} "
        f"({graph.num_nodes:,} nodes, {graph.num_edges:,} edges), "
        f"host cpus={os.cpu_count()}"
    )

    baseline = _time_workers(graph, 0, args.rounds)
    base_labels = baseline.pop("_labels")
    base_tp = float(baseline["throughput_median"])  # type: ignore[arg-type]
    print(f"  workers=0 (vector baseline): {base_tp:,.0f} edges/s")

    results: Dict[str, Dict[str, object]] = {"0": baseline}
    failures: List[str] = []
    for workers in WORKER_COUNTS:
        cell = _time_workers(graph, workers, args.rounds)
        if not partitions_equal(base_labels, cell.pop("_labels")):
            raise RuntimeError(
                f"workers={workers} changed the SCC partition"
            )
        if cell["iterations"] != baseline["iterations"]:
            raise RuntimeError(
                f"workers={workers} changed the iteration count"
            )
        tp = float(cell["throughput_median"])  # type: ignore[arg-type]
        speedup = tp / base_tp if base_tp > 0 else 0.0
        cell["speedup"] = speedup
        results[str(workers)] = cell
        extras = cell["extras"]
        print(
            f"  workers={workers}: {tp:,.0f} edges/s ({speedup:.2f}x, "
            f"{extras.get('parallel_batches', 0):,} batches, "
            f"{extras.get('parallel_fallbacks', 0)} fallbacks, "
            f"{extras.get('parallel_stale_bundles', 0)} stale)"
        )
        if workers == GATED_WORKERS and speedup < MIN_SPEEDUP:
            failures.append(
                f"workers={workers}: {speedup:.2f}x < {MIN_SPEEDUP:.1f}x bar"
            )

    payload = {
        "schema": 1,
        "algorithm": ALGORITHM,
        "workload": {
            "generator": "webspam_like",
            "scale": SCALE,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
        },
        "block_size": BLOCK_SIZE,
        "host_cpus": os.cpu_count(),
        "simulated_disk": {
            "seek_ms": 0,
            "transfer_ms": 0,
            "note": (
                "forced off: workers parallelise classification CPU, not "
                "counted transfers; the I/O-side regime is bench_prefetch's "
                "job"
            ),
        },
        "metric": (
            "edges classified per second of edge-scan span wall time "
            "(sum of edges-classified counters / sum of scan-span seconds)"
        ),
        "gate": {"workers": GATED_WORKERS, "min_speedup": MIN_SPEEDUP},
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    if failures and not args.no_assert:
        print("\nbelow the speedup bar:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
