"""Ablations of the paper's three optimization techniques.

Section 7.4 quantifies them indirectly (21 vs >50 iterations on
WEBSPAM-UK2007 with and without early acceptance + rejection; batch
processing motivated by the CPU cost model of Section 7.3).  These
benches measure each design choice in isolation:

* early acceptance on/off and early rejection on/off (2x2 grid),
* the early-acceptance threshold ``tau`` (paper default 0.5 % of |V|),
* the early-rejection period (paper default: every 5 iterations),
* 1PB-SCC's batch size (the memory knob batching converts into speed).

Cells — including the algorithm constructor kwargs each ablation
varies — come from :func:`repro.artifact.cases.ablation_cases`.
"""

import pytest

from benchmarks.conftest import case_params, run_case

CASES = case_params("ablation")


@pytest.mark.parametrize("case", CASES)
def test_ablation(benchmark, case):
    record = run_case(benchmark, case)
    assert record.ok
