"""Ablations of the paper's three optimization techniques.

Section 7.4 quantifies them indirectly (21 vs >50 iterations on
WEBSPAM-UK2007 with and without early acceptance + rejection; batch
processing motivated by the CPU cost model of Section 7.3).  These
benches measure each design choice in isolation:

* early acceptance on/off and early rejection on/off (2x2 grid),
* the early-acceptance threshold ``tau`` (paper default 0.5 % of |V|),
* the early-rejection period (paper default: every 5 iterations),
* 1PB-SCC's batch size (the memory knob batching converts into speed).
"""

import pytest

from benchmarks.conftest import run_algorithm, webspam_workload

from repro.core.one_phase import OnePhaseSCC
from repro.core.one_phase_batch import OnePhaseBatchSCC


@pytest.mark.parametrize("acceptance", [True, False])
@pytest.mark.parametrize("rejection", [True, False])
def test_ablation_acceptance_rejection(benchmark, acceptance, rejection):
    """Section 7.4: the two reductions cut iterations roughly in half."""
    planted = webspam_workload()
    algo = OnePhaseBatchSCC(
        enable_acceptance=acceptance, enable_rejection=rejection
    )
    record = run_algorithm(
        benchmark,
        planted.graph,
        algo,
        workload=f"acc={acceptance},rej={rejection}",
        time_limit=300,
        params={"acceptance": acceptance, "rejection": rejection},
    )
    assert record.ok


@pytest.mark.parametrize("tau_fraction", [0.001, 0.005, 0.02, 0.1])
def test_ablation_tau_threshold(benchmark, tau_fraction):
    """Sweep the early-acceptance threshold around the paper's 0.5 %."""
    planted = webspam_workload()
    record = run_algorithm(
        benchmark,
        planted.graph,
        OnePhaseBatchSCC(tau_fraction=tau_fraction),
        workload=f"tau={tau_fraction}",
        time_limit=300,
        params={"tau_fraction": tau_fraction},
    )
    assert record.ok


@pytest.mark.parametrize("period", [1, 5, 10])
def test_ablation_rejection_period(benchmark, period):
    """Sweep the early-rejection period around the paper's 5."""
    planted = webspam_workload()
    record = run_algorithm(
        benchmark,
        planted.graph,
        OnePhaseSCC(rejection_period=period),
        workload=f"period={period}",
        time_limit=300,
        params={"rejection_period": period},
    )
    assert record.ok


@pytest.mark.parametrize("batch_blocks", [1, 4, 16, 64])
def test_ablation_batch_size(benchmark, batch_blocks):
    """Section 7.3's beta: bigger batches, fewer passes, less CPU."""
    planted = webspam_workload()
    record = run_algorithm(
        benchmark,
        planted.graph,
        OnePhaseBatchSCC(batch_blocks=batch_blocks),
        workload=f"batch={batch_blocks}",
        time_limit=300,
        params={"batch_blocks": batch_blocks},
    )
    assert record.ok
